//! # `baseline-equivalence`
//!
//! A production-quality Rust reproduction of Bermond & Fourneau,
//! *"Independent Connections: An Easy Characterization of Baseline-Equivalent
//! Multistage Interconnection Networks"* (ICPP 1988; journal version
//! Theoretical Computer Science 64, 1989, 191–201).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`labels`] (`min-labels`) — GF(2) label algebra (word-packed
//!   elimination kernels plus a retained scalar oracle) and PIPID
//!   permutations;
//! * [`graph`] (`min-graph`) — the MI-digraph engine;
//! * [`core`] (`min-core`) — independent connections, the `P(i,j)`
//!   properties, the certified constructive Baseline isomorphism, buddy and
//!   delta properties, and the equivalence-classification campaign engine;
//! * [`networks`] (`min-networks`) — the six classical networks, builders,
//!   random generators and counterexamples;
//! * [`routing`] (`min-routing`) — destination-tag routing, permutation
//!   admissibility analysis, and link-disjoint-path fault-tolerant
//!   rerouting;
//! * [`sim`] (`min-sim`) — the cycle-synchronous switch-level simulator
//!   (arena-backed unbuffered / FIFO / wormhole switching cores), the
//!   fault-injection subsystem, and the plan/execute/assemble campaign
//!   engine with its multi-threaded in-process runner;
//! * [`serve`] (`min-serve`) — the distributed campaign service: a
//!   master/worker executor for the same campaign plans over a
//!   length-prefixed JSON TCP protocol, with heartbeat failover and a
//!   `submit`/`status`/`results` CLI.
//!
//! ## Quick start
//!
//! ```
//! use baseline_equivalence::prelude::*;
//!
//! // Build the 16-terminal Omega network and certify its equivalence to the
//! // Baseline network with an explicit, verified node mapping.
//! let omega = networks::omega(4);
//! let cert = core::baseline_isomorphism(&omega.to_digraph()).unwrap();
//! assert!(cert.verify(&omega.to_digraph()));
//!
//! // Every stage of the Omega network is an independent connection (§3)…
//! assert!(omega.connections().iter().all(core::is_independent));
//! // …and the network is destination-tag routable (§4).
//! assert!(core::is_delta(&omega));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use min_core as core;
pub use min_graph as graph;
pub use min_labels as labels;
pub use min_networks as networks;
pub use min_routing as routing;
pub use min_serve as serve;
pub use min_sim as sim;

/// Convenient single import for applications and examples.
pub mod prelude {
    pub use crate::{core, graph, labels, networks, routing, serve, sim};
    pub use min_core::{
        baseline_digraph, baseline_isomorphism, classify_subjects, equivalence_mapping,
        is_independent, satisfies_characterization, ClassificationReport, Connection,
        ConnectionNetwork, Subject, Witness,
    };
    pub use min_graph::MiDigraph;
    pub use min_labels::{BitMatrix, IndexPermutation};
    pub use min_networks::{
        benes, benes_variant, catalog_grid, ClassicalNetwork, ClassificationGrid, NetworkSpec,
        RandomFamily, Rewrite,
    };
    pub use min_routing::disjoint::{disjoint_paths, route_around, FaultDigest, FaultRoute};
    pub use min_routing::{loop_setup, LoopingSetting, Router};
    pub use min_serve::{Master, MasterConfig, WorkerConfig};
    pub use min_sim::{
        assemble, execute_shard, run_campaign, simulate, BufferMode, CampaignConfig, CampaignPlan,
        CampaignReport, FaultKind, FaultPlan, Shard, SimConfig, Simulator, SwitchCore, TraceData,
        TraceRecord, TrafficPattern,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn the_facade_re_exports_are_usable_together() {
        let net = ClassicalNetwork::Flip.build(3);
        let g: MiDigraph = net.to_digraph();
        assert!(satisfies_characterization(&g));
        let cert = baseline_isomorphism(&g).unwrap();
        assert!(cert.verify(&g));
        let theta = IndexPermutation::perfect_shuffle(3);
        assert_eq!(theta.width(), 3);
    }
}
