#!/usr/bin/env python3
"""Render a median-delta table between two bench-median artifacts.

Usage: bench_delta.py PREVIOUS CURRENT

PREVIOUS is a directory (searched recursively for ``BENCH_*.json``) or a
single file; CURRENT is the ``BENCH_*.json`` produced by this run. Both hold
the vendored criterion's JSON lines::

    {"name": "...", "median_ns": 123.4, "throughput_per_sec": 567.8}

The script writes a GitHub-flavoured markdown table to stdout (pipe it into
``$GITHUB_STEP_SUMMARY``) and emits a ``::warning`` workflow annotation for
every benchmark whose median regressed by more than REGRESSION_PCT.
Regression warnings are advisory and never fail the job (bench-smoke
machines are shared runners). **Malformed input is a hard error**, though:
a JSON line that does not parse, or parses without a usable ``name`` /
``median_ns``, exits nonzero instead of silently rendering an empty table —
an empty table caused by a corrupt artifact must not masquerade as "no
benchmarks ran". A missing PREVIOUS artifact stays fine (first run).
"""

import json
import math
import pathlib
import sys

REGRESSION_PCT = 25.0


class MalformedInput(Exception):
    """A benchmark-median file held a line the parser cannot use."""


def load_medians(path: pathlib.Path) -> dict:
    """name -> median_ns from one file or every BENCH_*.json under a dir.

    Raises MalformedInput on the first unparsable or key-incomplete line.
    A nonexistent path yields an empty dict (no artifact — not an error).
    """
    files = [path]
    if path.is_dir():
        files = sorted(path.rglob("BENCH_*.json"))
    medians = {}
    for f in files:
        try:
            lines = f.read_text().splitlines()
        except OSError:
            continue
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                name = row["name"]
                median = float(row["median_ns"])
            except (ValueError, KeyError, TypeError) as exc:
                raise MalformedInput(f"{f}:{lineno}: {exc}: {line[:120]!r}") from exc
            # Non-finite or non-positive medians cannot participate in a
            # delta; drop them here so no downstream division can blow up.
            if median > 0.0 and math.isfinite(median):
                medians[name] = median
    return medians


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("µs", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS CURRENT", file=sys.stderr)
        return 2
    try:
        previous = load_medians(pathlib.Path(sys.argv[1]))
        current = load_medians(pathlib.Path(sys.argv[2]))
    except MalformedInput as exc:
        print(f"error: malformed benchmark medians: {exc}", file=sys.stderr)
        return 1

    print("## Bench medians vs. previous run\n")
    if not current:
        print("_No benchmark medians were collected by this run._")
        return 0
    if not previous:
        print("_No previous-run artifact available; showing current medians only._\n")
        print("| benchmark | median |")
        print("|---|---:|")
        for name in sorted(current):
            print(f"| `{name}` | {fmt_ns(current[name])} |")
        return 0

    # Deltas are only defined for benchmarks present in BOTH files; names
    # present in just one are skipped in the table and reported by name
    # below, so a renamed or newly registered bench never crashes the diff.
    common = sorted(set(current) & set(previous))
    added = sorted(set(current) - set(previous))
    removed = sorted(set(previous) - set(current))

    print("| benchmark | previous | current | delta |")
    print("|---|---:|---:|---:|")
    regressions = []
    for name in common:
        cur = current[name]
        prev = previous[name]
        delta = (cur - prev) / prev * 100.0
        marker = ""
        if delta > REGRESSION_PCT:
            marker = " ⚠️"
            regressions.append((name, delta))
        print(f"| `{name}` | {fmt_ns(prev)} | {fmt_ns(cur)} | {delta:+.1f}%{marker} |")
    for name in added:
        print(f"| `{name}` | — | {fmt_ns(current[name])} | new |")

    if added:
        print(f"\n**Added benchmarks ({len(added)}):** "
              + ", ".join(f"`{n}`" for n in added))
    if removed:
        print(f"\n**Removed benchmarks ({len(removed)}):** "
              + ", ".join(f"`{n}`" for n in removed))

    # Annotate (never fail) on regressions past the threshold; shared-runner
    # noise makes these advisory.
    for name, delta in regressions:
        print(
            f"::warning title=Bench regression::{name} median regressed "
            f"{delta:+.1f}% vs. the previous run (threshold {REGRESSION_PCT:.0f}%)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
