#!/usr/bin/env python3
"""Render a median-delta table between two bench-median artifacts.

Usage: bench_delta.py PREVIOUS CURRENT

PREVIOUS is a directory (searched recursively for ``BENCH_*.json``) or a
single file; CURRENT is the ``BENCH_*.json`` produced by this run. Both hold
the vendored criterion's JSON lines::

    {"name": "...", "median_ns": 123.4, "throughput_per_sec": 567.8}

The script writes a GitHub-flavoured markdown table to stdout (pipe it into
``$GITHUB_STEP_SUMMARY``) and emits a ``::warning`` workflow annotation for
every benchmark whose median regressed by more than REGRESSION_PCT. It never
exits nonzero and never fails the job: bench-smoke machines are shared
runners, so deltas are advisory trend data, not gates.
"""

import json
import pathlib
import sys

REGRESSION_PCT = 25.0


def load_medians(path: pathlib.Path) -> dict:
    """name -> median_ns from one file or every BENCH_*.json under a dir."""
    files = [path]
    if path.is_dir():
        files = sorted(path.rglob("BENCH_*.json"))
    medians = {}
    for f in files:
        try:
            lines = f.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                medians[row["name"]] = float(row["median_ns"])
            except (ValueError, KeyError, TypeError):
                continue
    return medians


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("µs", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS CURRENT", file=sys.stderr)
        return 0
    previous = load_medians(pathlib.Path(sys.argv[1]))
    current = load_medians(pathlib.Path(sys.argv[2]))

    print("## Bench medians vs. previous run\n")
    if not current:
        print("_No benchmark medians were collected by this run._")
        return 0
    if not previous:
        print("_No previous-run artifact available; showing current medians only._\n")
        print("| benchmark | median |")
        print("|---|---:|")
        for name in sorted(current):
            print(f"| `{name}` | {fmt_ns(current[name])} |")
        return 0

    print("| benchmark | previous | current | delta |")
    print("|---|---:|---:|---:|")
    regressions = []
    for name in sorted(current):
        cur = current[name]
        prev = previous.get(name)
        if prev is None or prev <= 0.0:
            print(f"| `{name}` | — | {fmt_ns(cur)} | new |")
            continue
        delta = (cur - prev) / prev * 100.0
        marker = ""
        if delta > REGRESSION_PCT:
            marker = " ⚠️"
            regressions.append((name, delta))
        print(f"| `{name}` | {fmt_ns(prev)} | {fmt_ns(cur)} | {delta:+.1f}%{marker} |")
    removed = sorted(set(previous) - set(current))
    for name in removed:
        print(f"| `{name}` | {fmt_ns(previous[name])} | — | removed |")

    # Annotate (never fail) on regressions past the threshold; shared-runner
    # noise makes these advisory.
    for name, delta in regressions:
        print(
            f"::warning title=Bench regression::{name} median regressed "
            f"{delta:+.1f}% vs. the previous run (threshold {REGRESSION_PCT:.0f}%)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
