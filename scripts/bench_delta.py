#!/usr/bin/env python3
"""Render a median-delta table between two bench-median artifacts.

Usage: bench_delta.py [--fail-threshold PCT] PREVIOUS CURRENT

PREVIOUS is a directory (searched recursively for ``BENCH_*.json``) or a
single file; CURRENT is the ``BENCH_*.json`` produced by this run. Both hold
the vendored criterion's JSON lines::

    {"name": "...", "median_ns": 123.4, "throughput_per_sec": 567.8}

The script writes a GitHub-flavoured markdown table to stdout (pipe it into
``$GITHUB_STEP_SUMMARY``) and emits a workflow annotation for every
benchmark whose median regressed by more than REGRESSION_PCT.

Without ``--fail-threshold``, every regression is an advisory ``::warning``
and the job never fails (bench-smoke machines are shared runners). With
``--fail-threshold PCT``, benchmarks on the gated allowlist
(GATED_PREFIXES — the engine hot paths, whose seconds-long medians are
stable even on shared runners) escalate to ``::error`` and a nonzero exit
when they regress past PCT; everything else stays warn-only at
REGRESSION_PCT.

**Malformed input is a hard error** in both modes: a JSON line that does
not parse, or parses without a usable ``name`` / ``median_ns``, exits
nonzero instead of silently rendering an empty table — an empty table
caused by a corrupt artifact must not masquerade as "no benchmarks ran".
A missing PREVIOUS artifact stays fine (first run).
"""

import json
import math
import pathlib
import sys

REGRESSION_PCT = 25.0

# Benchmarks (by group-name prefix) that hard-fail under --fail-threshold:
# the simulation-engine hot paths this repository's perf work targets.
# Micro-benches over sub-microsecond kernels stay advisory — their medians
# jitter far more than any real regression on shared runners.
GATED_PREFIXES = (
    "lane_engine_",
    "simulator_",
)


def is_gated(name: str) -> bool:
    """Whether a benchmark participates in hard-fail regression gating."""
    return name.startswith(GATED_PREFIXES)


class MalformedInput(Exception):
    """A benchmark-median file held a line the parser cannot use."""


def load_medians(path: pathlib.Path) -> dict:
    """name -> median_ns from one file or every BENCH_*.json under a dir.

    Raises MalformedInput on the first unparsable or key-incomplete line.
    A nonexistent path yields an empty dict (no artifact — not an error).
    """
    files = [path]
    if path.is_dir():
        files = sorted(path.rglob("BENCH_*.json"))
    medians = {}
    for f in files:
        try:
            lines = f.read_text().splitlines()
        except OSError:
            continue
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                name = row["name"]
                median = float(row["median_ns"])
            except (ValueError, KeyError, TypeError) as exc:
                raise MalformedInput(f"{f}:{lineno}: {exc}: {line[:120]!r}") from exc
            # Non-finite or non-positive medians cannot participate in a
            # delta; drop them here so no downstream division can blow up.
            if median > 0.0 and math.isfinite(median):
                medians[name] = median
    return medians


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("µs", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def parse_args(argv: list) -> tuple:
    """(previous, current, fail_threshold or None); exits on bad usage."""
    fail_threshold = None
    positional = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--fail-threshold":
            if i + 1 >= len(argv):
                raise SystemExit(f"{argv[0]}: --fail-threshold needs a value")
            try:
                fail_threshold = float(argv[i + 1])
            except ValueError:
                raise SystemExit(
                    f"{argv[0]}: --fail-threshold must be a number, "
                    f"got {argv[i + 1]!r}"
                ) from None
            if fail_threshold <= 0:
                raise SystemExit(f"{argv[0]}: --fail-threshold must be positive")
            i += 2
        else:
            positional.append(arg)
            i += 1
    if len(positional) != 2:
        raise SystemExit(f"usage: {argv[0]} [--fail-threshold PCT] PREVIOUS CURRENT")
    return positional[0], positional[1], fail_threshold


def main() -> int:
    prev_path, cur_path, fail_threshold = parse_args(sys.argv)
    try:
        previous = load_medians(pathlib.Path(prev_path))
        current = load_medians(pathlib.Path(cur_path))
    except MalformedInput as exc:
        print(f"error: malformed benchmark medians: {exc}", file=sys.stderr)
        return 1

    print("## Bench medians vs. previous run\n")
    if not current:
        print("_No benchmark medians were collected by this run._")
        return 0
    if not previous:
        print("_No previous-run artifact available; showing current medians only._\n")
        print("| benchmark | median |")
        print("|---|---:|")
        for name in sorted(current):
            print(f"| `{name}` | {fmt_ns(current[name])} |")
        return 0

    # Deltas are only defined for benchmarks present in BOTH files; names
    # present in just one are skipped in the table and reported by name
    # below, so a renamed or newly registered bench never crashes the diff.
    common = sorted(set(current) & set(previous))
    added = sorted(set(current) - set(previous))
    removed = sorted(set(previous) - set(current))

    print("| benchmark | previous | current | delta |")
    print("|---|---:|---:|---:|")
    warnings = []
    failures = []
    for name in common:
        cur = current[name]
        prev = previous[name]
        delta = (cur - prev) / prev * 100.0
        marker = ""
        if fail_threshold is not None and is_gated(name) and delta > fail_threshold:
            marker = " ❌"
            failures.append((name, delta))
        elif delta > REGRESSION_PCT:
            marker = " ⚠️"
            warnings.append((name, delta))
        print(f"| `{name}` | {fmt_ns(prev)} | {fmt_ns(cur)} | {delta:+.1f}%{marker} |")
    for name in added:
        print(f"| `{name}` | — | {fmt_ns(current[name])} | new |")

    if added:
        print(f"\n**Added benchmarks ({len(added)}):** "
              + ", ".join(f"`{n}`" for n in added))
    if removed:
        print(f"\n**Removed benchmarks ({len(removed)}):** "
              + ", ".join(f"`{n}`" for n in removed))

    # Advisory annotations for regressions outside the gated set (or for
    # every regression when no fail threshold was requested) — shared-runner
    # noise makes these warn-only.
    for name, delta in warnings:
        print(
            f"::warning title=Bench regression::{name} median regressed "
            f"{delta:+.1f}% vs. the previous run (threshold {REGRESSION_PCT:.0f}%)",
            file=sys.stderr,
        )
    # Gated engine benches hard-fail: their multi-second medians are stable
    # enough that a regression past the threshold is a real one.
    for name, delta in failures:
        print(
            f"::error title=Bench regression::{name} median regressed "
            f"{delta:+.1f}% vs. the previous run "
            f"(gated fail threshold {fail_threshold:.0f}%)",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
