#!/usr/bin/env python3
"""Diff the equivalence-class partition between two classification reports.

Usage: classify_delta.py PREVIOUS CURRENT

PREVIOUS is a directory (searched recursively for ``classification*.json``)
or a single file; CURRENT is the ``classification.json`` produced by this
run (the output of the ``classify_sweep`` example). Both hold a
``ClassificationReport``: subjects with family/stages/replication and the
class partition keyed by ``"n=<stages> <verdict>"``.

The script writes a GitHub-flavoured markdown summary to stdout (pipe it
into ``$GITHUB_STEP_SUMMARY``) and emits ``::warning`` annotations when the
partition changed — classes appearing or disappearing, or members moving
between classes. Like ``bench_delta.py`` it is advisory: it never exits
nonzero and never fails the job, because a partition change may be an
intentional grid change rather than a regression.
"""

import json
import pathlib
import sys


def subject_name(subject: dict) -> str:
    return f"{subject['family']}/n={subject['stages']}#{subject['replication']}"


def load_partition(path: pathlib.Path) -> dict:
    """class key -> sorted member names, from one report file or the first
    classification*.json found under a directory."""
    files = [path]
    if path.is_dir():
        files = sorted(path.rglob("classification*.json"))
    for f in files:
        try:
            report = json.loads(f.read_text())
            subjects = report["subjects"]
            partition = {}
            for cls in report["classes"]:
                members = sorted(subject_name(subjects[i]) for i in cls["members"])
                partition[cls["key"]] = members
            return partition
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            continue
    return {}


def verdict_breakdown(path: pathlib.Path) -> None:
    """Per-family verdict summary of the current report — with Benes, its
    variant, and rewritten catalog members in the grid the raw partition
    mixes equivalent and non-equivalent classes, so a family-level rollup
    makes the enlarged partition readable at a glance."""
    try:
        report = json.loads(path.read_text())
        subjects = report["subjects"]
    except (OSError, ValueError, KeyError, TypeError):
        return
    families: dict = {}
    for s in subjects:
        eq, total = families.get(s["family"], (0, 0))
        families[s["family"]] = (eq + (1 if s["equivalent"] else 0), total + 1)
    print("### Verdicts by family\n")
    print("| family | equivalent | subjects | verdict |")
    print("|---|---:|---:|---|")
    for family in sorted(families):
        eq, total = families[family]
        if eq == total:
            verdict = "all Baseline-equivalent"
        elif eq == 0:
            verdict = "none Baseline-equivalent"
        else:
            verdict = "mixed"
        print(f"| `{family}` | {eq} | {total} | {verdict} |")
    print()


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS CURRENT", file=sys.stderr)
        return 0
    current_path = pathlib.Path(sys.argv[2])
    previous = load_partition(pathlib.Path(sys.argv[1]))
    current = load_partition(current_path)

    print("## Equivalence-class partition vs. previous run\n")
    if current:
        verdict_breakdown(current_path)
    if not current:
        print("_No classification report was produced by this run._")
        return 0
    if not previous:
        print("_No previous-run artifact available; showing current partition only._\n")
        print("| class | size |")
        print("|---|---:|")
        for key in sorted(current):
            print(f"| `{key}` | {len(current[key])} |")
        return 0

    changes = []
    added_classes = sorted(set(current) - set(previous))
    removed_classes = sorted(set(previous) - set(current))
    print("| class | previous size | current size | change |")
    print("|---|---:|---:|---|")
    for key in sorted(current):
        cur = current[key]
        prev = previous.get(key)
        if prev is None:
            print(f"| `{key}` | — | {len(cur)} | new class |")
            continue
        if prev == cur:
            print(f"| `{key}` | {len(prev)} | {len(cur)} | unchanged |")
            continue
        joined = sorted(set(cur) - set(prev))
        left = sorted(set(prev) - set(cur))
        detail = []
        if joined:
            detail.append("joined: " + ", ".join(f"`{m}`" for m in joined))
        if left:
            detail.append("left: " + ", ".join(f"`{m}`" for m in left))
        print(f"| `{key}` | {len(prev)} | {len(cur)} | {'; '.join(detail)} |")
        changes.append((key, joined, left))
    for key in removed_classes:
        print(f"| `{key}` | {len(previous[key])} | — | removed class |")

    if added_classes:
        print(f"\n**Added classes ({len(added_classes)}):** "
              + ", ".join(f"`{k}`" for k in added_classes))
    if removed_classes:
        print(f"\n**Removed classes ({len(removed_classes)}):** "
              + ", ".join(f"`{k}`" for k in removed_classes))
    if not added_classes and not removed_classes and not changes:
        print("\n_Partition unchanged._")

    # Annotate (never fail) on any partition movement; a changed grid is a
    # legitimate cause, so this is advisory — the same policy as the bench
    # median deltas.
    for key in added_classes:
        print(f"::warning title=Partition change::new equivalence class `{key}`",
              file=sys.stderr)
    for key in removed_classes:
        print(f"::warning title=Partition change::equivalence class `{key}` disappeared",
              file=sys.stderr)
    for key, joined, left in changes:
        print(
            f"::warning title=Partition change::membership of `{key}` changed "
            f"(+{len(joined)}/-{len(left)})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
