#!/usr/bin/env python3
"""Diff saturation points between two stability-sweep reports.

Usage: stability_delta.py PREVIOUS CURRENT

PREVIOUS is a directory (searched recursively for ``stability*.json``) or a
single file; CURRENT is the ``stability*.json`` produced by this run (the
output of the ``stability_sweep`` example). Both hold the curve list that
example emits: per (network, stages, traffic, buffer-mode) load ladders
with a detected ``saturation_load`` (the first load where delivered
throughput diverges from the open-loop offered rate).

The script writes a GitHub-flavoured markdown summary to stdout (pipe it
into ``$GITHUB_STEP_SUMMARY``) and emits ``::warning`` annotations when a
curve's saturation point moved, appeared, or disappeared. Like the other
delta scripts it is advisory: it never exits nonzero and never fails the
job, because a moved knee may be an intentional grid or parameter change
rather than a regression.
"""

import json
import pathlib
import sys


def curve_key(curve: dict) -> str:
    return (
        f"{curve['network']}/n={curve['stages']} "
        f"{curve['traffic']} {curve['buffers']}"
    )


def load_saturation(path: pathlib.Path) -> dict:
    """curve key -> saturation load (None = never saturated), from one
    report file or the first stability*.json found under a directory."""
    files = [path]
    if path.is_dir():
        files = sorted(path.rglob("stability*.json"))
    for f in files:
        try:
            report = json.loads(f.read_text())
            return {curve_key(c): c["saturation_load"] for c in report["curves"]}
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return {}


def show(load) -> str:
    return "never" if load is None else f"{load:.2f}"


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS CURRENT", file=sys.stderr)
        return 0
    previous = load_saturation(pathlib.Path(sys.argv[1]))
    current = load_saturation(pathlib.Path(sys.argv[2]))

    print("## Saturation points vs. previous run\n")
    if not current:
        print("_No stability report was produced by this run._")
        return 0
    if not previous:
        print("_No previous-run artifact available; showing current knees only._\n")
        print("| curve | saturation load |")
        print("|---|---:|")
        for key in sorted(current):
            print(f"| `{key}` | {show(current[key])} |")
        return 0

    moved = []
    print("| curve | previous | current | change |")
    print("|---|---:|---:|---|")
    for key in sorted(set(current) | set(previous)):
        cur = current.get(key)
        prev = previous.get(key)
        if key not in previous:
            print(f"| `{key}` | — | {show(cur)} | new curve |")
            continue
        if key not in current:
            print(f"| `{key}` | {show(prev)} | — | removed curve |")
            continue
        if prev == cur:
            print(f"| `{key}` | {show(prev)} | {show(cur)} | unchanged |")
            continue
        print(f"| `{key}` | {show(prev)} | {show(cur)} | moved |")
        moved.append((key, prev, cur))

    if not moved:
        print("\n_Saturation points unchanged._")

    # Annotate (never fail) on any knee movement; a retuned grid is a
    # legitimate cause, so this is advisory — the same policy as the bench
    # and classification deltas.
    for key, prev, cur in moved:
        print(
            f"::warning title=Saturation change::`{key}` saturation moved "
            f"{show(prev)} -> {show(cur)}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
