//! Permutations of the index digits (the generators of the PIPID family).
//!
//! Section 4 of the paper: *"we define a Permutation Induced by a
//! Permutation on the Index Digits (PIPID) as a permutation on the index of
//! the representation"*:
//!
//! ```text
//! A ∈ PIPID(2^n)  ⇔  ∃ θ ∈ S_n :  A(x_{n-1}, …, x_1, x_0) = (x_{θ(n-1)}, …, x_{θ(1)}, x_{θ(0)})
//! ```
//!
//! [`IndexPermutation`] stores θ itself; the induced permutation on labels
//! is available through [`IndexPermutation::apply`] (cheap, no table) or can
//! be expanded to a full [`crate::perm::Permutation`] table.
//!
//! The classical generators of the six networks of Wu & Feng are provided as
//! constructors: the perfect shuffle σ, the inverse shuffle σ⁻¹, the
//! k-sub-shuffles, the k-butterflies β_k and the bit reversal ρ.

use crate::gf2::{bit, mask, Label, Width};

/// A permutation θ of the digit positions `{0, …, width-1}`.
///
/// The induced PIPID permutation `A_θ` sends a label `x` to the label whose
/// digit `i` is digit `θ(i)` of `x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexPermutation {
    /// `map[i] = θ(i)`: result digit `i` is taken from source digit `θ(i)`.
    map: Vec<usize>,
}

impl IndexPermutation {
    /// The identity permutation on `width` digits.
    pub fn identity(width: Width) -> Self {
        crate::check_width(width);
        IndexPermutation {
            map: (0..width).collect(),
        }
    }

    /// Builds θ from an explicit table `map[i] = θ(i)`.
    ///
    /// Panics unless `map` is a permutation of `{0, …, map.len()-1}`.
    pub fn from_map(map: Vec<usize>) -> Self {
        crate::check_width(map.len());
        let mut seen = vec![false; map.len()];
        for &t in &map {
            assert!(
                t < map.len(),
                "index {t} out of range for width {}",
                map.len()
            );
            assert!(!seen[t], "index {t} appears twice: not a permutation");
            seen[t] = true;
        }
        IndexPermutation { map }
    }

    /// The perfect shuffle σ: a circular **left** shift of the digit string,
    /// `σ(x_{n-1}, x_{n-2}, …, x_0) = (x_{n-2}, …, x_0, x_{n-1})`
    /// (paper, §4; Lawrie's Omega network uses n of these).
    pub fn perfect_shuffle(width: Width) -> Self {
        crate::check_width(width);
        // Result digit i (for i >= 1) is source digit i-1; result digit 0 is
        // source digit width-1.
        let map = (0..width)
            .map(|i| {
                if i == 0 {
                    width.saturating_sub(1)
                } else {
                    i - 1
                }
            })
            .collect();
        IndexPermutation { map }
    }

    /// The inverse perfect shuffle σ⁻¹: a circular **right** shift of the
    /// digit string (the "unshuffle" used by the Flip network).
    pub fn inverse_shuffle(width: Width) -> Self {
        Self::perfect_shuffle(width).inverse()
    }

    /// The `k`-sub-shuffle σ_k: the perfect shuffle applied to the `k`
    /// low-order digits, leaving digits `k, …, width-1` fixed.
    ///
    /// `sub_shuffle(width, width)` is the full shuffle, `sub_shuffle(width, 0)`
    /// and `sub_shuffle(width, 1)` are the identity.
    pub fn sub_shuffle(width: Width, k: usize) -> Self {
        crate::check_width(width);
        assert!(k <= width, "sub-shuffle span {k} exceeds width {width}");
        let mut map: Vec<usize> = (0..width).collect();
        if k >= 2 {
            for (i, slot) in map.iter_mut().enumerate().take(k) {
                *slot = if i == 0 { k - 1 } else { i - 1 };
            }
        }
        IndexPermutation { map }
    }

    /// The `k`-sub-inverse-shuffle: circular right shift of the `k`
    /// low-order digits (used by the Baseline network's stages).
    pub fn sub_inverse_shuffle(width: Width, k: usize) -> Self {
        Self::sub_shuffle(width, k).inverse()
    }

    /// The `k`-butterfly β_k: exchanges digit `k` and digit `0`, leaving the
    /// others fixed (Pease's indirect binary n-cube is built from these).
    pub fn butterfly(width: Width, k: usize) -> Self {
        crate::check_width(width);
        assert!(
            k < width,
            "butterfly digit {k} out of range for width {width}"
        );
        let mut map: Vec<usize> = (0..width).collect();
        map.swap(0, k);
        IndexPermutation { map }
    }

    /// The bit reversal ρ: digit `i` of the result is digit `width-1-i` of
    /// the source.
    pub fn bit_reversal(width: Width) -> Self {
        crate::check_width(width);
        IndexPermutation {
            map: (0..width).map(|i| width - 1 - i).collect(),
        }
    }

    /// A general transposition of digits `a` and `b`.
    pub fn transposition(width: Width, a: usize, b: usize) -> Self {
        crate::check_width(width);
        assert!(a < width && b < width);
        let mut map: Vec<usize> = (0..width).collect();
        map.swap(a, b);
        IndexPermutation { map }
    }

    /// Samples a uniformly random digit permutation (Fisher–Yates).
    pub fn random<R: rand::Rng>(width: Width, rng: &mut R) -> Self {
        crate::check_width(width);
        let mut map: Vec<usize> = (0..width).collect();
        for i in (1..width).rev() {
            let j = rng.gen_range(0..=i);
            map.swap(i, j);
        }
        IndexPermutation { map }
    }

    /// Number of digits.
    pub fn width(&self) -> Width {
        self.map.len()
    }

    /// The underlying table `θ(i)`.
    pub fn map(&self) -> &[usize] {
        &self.map
    }

    /// `θ(i)`.
    #[inline]
    pub fn theta(&self, i: usize) -> usize {
        self.map[i]
    }

    /// `θ⁻¹(j)`: the result position that receives source digit `j`.
    ///
    /// §4 of the paper calls `k = θ⁻¹(0)` the *critical digit*: the result
    /// position receiving the "exit-port" digit of a link label. `k = 0`
    /// produces the degenerate parallel-link stage of Fig. 5.
    pub fn theta_inv(&self, j: usize) -> usize {
        self.map
            .iter()
            .position(|&t| t == j)
            .expect("theta is a permutation, every digit has a preimage")
    }

    /// Applies the induced PIPID permutation to a label.
    #[inline]
    pub fn apply(&self, x: Label) -> Label {
        let mut out = 0u64;
        for (i, &src) in self.map.iter().enumerate() {
            out |= bit(x, src) << i;
        }
        out & mask(self.width())
    }

    /// Inverse digit permutation (the induced label permutations are then
    /// mutually inverse as well).
    pub fn inverse(&self) -> IndexPermutation {
        let mut inv = vec![0usize; self.map.len()];
        for (i, &t) in self.map.iter().enumerate() {
            inv[t] = i;
        }
        IndexPermutation { map: inv }
    }

    /// Composition: `self.compose(other)` induces the label permutation
    /// `A_self ∘ A_other` (apply `other` first).
    pub fn compose(&self, other: &IndexPermutation) -> IndexPermutation {
        assert_eq!(self.width(), other.width(), "widths must match");
        // (A_self ∘ A_other)(x) digit i = A_other(x) digit self.map[i]
        //                              = x digit other.map[self.map[i]]
        IndexPermutation {
            map: self.map.iter().map(|&i| other.map[i]).collect(),
        }
    }

    /// `true` for the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &t)| i == t)
    }

    /// Order of θ in the symmetric group (smallest `k > 0` with `θ^k = id`).
    pub fn order(&self) -> usize {
        let mut acc = self.clone();
        let mut k = 1;
        while !acc.is_identity() {
            acc = acc.compose(self);
            k += 1;
        }
        k
    }

    /// Cycle decomposition of θ, each cycle listed starting from its
    /// smallest element, cycles sorted by that element. Fixed points are
    /// included as singleton cycles.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let w = self.width();
        let mut seen = vec![false; w];
        let mut cycles = Vec::new();
        for start in 0..w {
            if seen[start] {
                continue;
            }
            let mut cycle = vec![start];
            seen[start] = true;
            let mut cur = self.map[start];
            while cur != start {
                seen[cur] = true;
                cycle.push(cur);
                cur = self.map[cur];
            }
            cycles.push(cycle);
        }
        cycles
    }
}

impl std::fmt::Display for IndexPermutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "θ[")?;
        for (i, t) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{i}←{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_fixes_every_label() {
        let id = IndexPermutation::identity(5);
        for x in crate::all_labels(5) {
            assert_eq!(id.apply(x), x);
        }
        assert!(id.is_identity());
        assert_eq!(id.order(), 1);
    }

    #[test]
    fn perfect_shuffle_is_a_circular_left_shift() {
        // σ(x_{n-1}, …, x_0) = (x_{n-2}, …, x_0, x_{n-1})
        let sigma = IndexPermutation::perfect_shuffle(4);
        for x in crate::all_labels(4) {
            let expected = ((x << 1) | (x >> 3)) & 0b1111;
            assert_eq!(sigma.apply(x), expected);
        }
    }

    #[test]
    fn inverse_shuffle_undoes_the_shuffle() {
        let sigma = IndexPermutation::perfect_shuffle(6);
        let inv = IndexPermutation::inverse_shuffle(6);
        for x in crate::all_labels(6) {
            assert_eq!(inv.apply(sigma.apply(x)), x);
            assert_eq!(sigma.apply(inv.apply(x)), x);
        }
    }

    #[test]
    fn shuffle_order_equals_width() {
        for w in 1..=8 {
            let sigma = IndexPermutation::perfect_shuffle(w);
            assert_eq!(sigma.order(), w.max(1));
        }
    }

    #[test]
    fn sub_shuffle_leaves_high_digits_fixed() {
        let s = IndexPermutation::sub_shuffle(5, 3);
        for x in crate::all_labels(5) {
            let y = s.apply(x);
            assert_eq!(y >> 3, x >> 3, "high digits must be untouched");
            let low = x & 0b111;
            let expected_low = ((low << 1) | (low >> 2)) & 0b111;
            assert_eq!(y & 0b111, expected_low);
        }
    }

    #[test]
    fn sub_shuffle_degenerate_spans_are_identity() {
        assert!(IndexPermutation::sub_shuffle(4, 0).is_identity());
        assert!(IndexPermutation::sub_shuffle(4, 1).is_identity());
        assert_eq!(
            IndexPermutation::sub_shuffle(4, 4),
            IndexPermutation::perfect_shuffle(4)
        );
    }

    #[test]
    fn butterfly_swaps_digit_k_with_digit_zero() {
        let b = IndexPermutation::butterfly(4, 2);
        assert_eq!(b.apply(0b0001), 0b0100);
        assert_eq!(b.apply(0b0100), 0b0001);
        assert_eq!(b.apply(0b1010), 0b1010); // digits 1 and 3 untouched, 2<->0: 0b1010 has bit1,bit3 -> unchanged
        assert_eq!(b.apply(0b0101), 0b0101); // bits 0 and 2 both set: swap is a no-op
        assert_eq!(b.order(), 2);
    }

    #[test]
    fn bit_reversal_reverses() {
        let r = IndexPermutation::bit_reversal(4);
        assert_eq!(r.apply(0b0001), 0b1000);
        assert_eq!(r.apply(0b0011), 0b1100);
        assert_eq!(r.apply(0b1010), 0b0101);
        assert_eq!(r.order(), 2);
    }

    #[test]
    fn theta_inv_is_the_inverse_table() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let p = IndexPermutation::random(7, &mut rng);
        for j in 0..7 {
            assert_eq!(p.theta(p.theta_inv(j)), j);
            assert_eq!(p.inverse().theta(j), p.theta_inv(j));
        }
    }

    #[test]
    fn critical_digit_of_shuffle_is_one() {
        // For the perfect shuffle, θ(1) = 0, so θ^{-1}(0) = 1: the induced
        // connection is non-degenerate (paper §4: k must be non-zero).
        let sigma = IndexPermutation::perfect_shuffle(5);
        assert_eq!(sigma.theta_inv(0), 1);
    }

    #[test]
    fn critical_digit_zero_characterizes_fig5() {
        // Any θ fixing digit 0 gives the degenerate stage of Fig. 5.
        let theta = IndexPermutation::transposition(4, 1, 3);
        assert_eq!(theta.theta_inv(0), 0);
    }

    #[test]
    fn composition_matches_label_composition() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for _ in 0..20 {
            let a = IndexPermutation::random(6, &mut rng);
            let b = IndexPermutation::random(6, &mut rng);
            let c = a.compose(&b);
            for x in crate::all_labels(6) {
                assert_eq!(c.apply(x), a.apply(b.apply(x)));
            }
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        let p = IndexPermutation::random(8, &mut rng);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn cycles_partition_the_digits() {
        let p = IndexPermutation::perfect_shuffle(5);
        let cycles = p.cycles();
        let total: usize = cycles.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(cycles.len(), 1, "a width-5 circular shift is a 5-cycle");
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_map_rejects_duplicates() {
        IndexPermutation::from_map(vec![0, 1, 1]);
    }

    #[test]
    fn display_is_reasonable() {
        let s = IndexPermutation::perfect_shuffle(3).to_string();
        assert!(s.starts_with("θ["));
    }
}
