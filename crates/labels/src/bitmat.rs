//! Word-packed GF(2) matrices and the elimination kernels built on them.
//!
//! Every row of a [`BitMatrix`] is one `u64` word, so XOR-row elimination,
//! rank, kernel/image bases, solving and inversion all run on whole rows at
//! once instead of digit by digit. These are the hot kernels behind
//! [`crate::LinearMap`], [`crate::Subspace`] and [`crate::AffineMap`], and —
//! through them — behind the independence checkers and the
//! equivalence-classification campaigns in `min-core`.
//!
//! ## Orientation
//!
//! A [`BitMatrix`] is a plain `nrows × ncols` matrix over GF(2), row-major.
//! [`crate::LinearMap`] stores a map by its *columns* (`columns[j] = L(e_j)`),
//! which is exactly the row list of the **transpose**, so the bridge is
//! `BitMatrix::from_rows(width_out, columns)`. All the shim code in
//! `linear.rs` works in this transposed view:
//!
//! * `rank(L) = rank(Lᵀ)` — [`BitMatrix::rank`];
//! * `ker L` = the linear relations among the columns —
//!   [`BitMatrix::row_relations`];
//! * `L x = y` ⇔ `y` is the XOR of the columns selected by `x` —
//!   [`BitMatrix::solve_combination`];
//! * columns of `L⁻¹` = the column combinations producing each `e_j` —
//!   [`BitMatrix::combination_inverse`].
//!
//! The pre-refactor digit-at-a-time implementations are retained verbatim in
//! [`crate::scalar`] as the reference oracle; the property tests in
//! `tests/packed_oracle.rs` pin the two against each other, and the
//! `classification` benchmark measures the packed-vs-scalar gap.

use crate::gf2::{mask, parity, Label};

/// A dense GF(2) matrix with up to 64 columns, one `u64` word per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    ncols: usize,
    rows: Vec<u64>,
}

/// Incremental reduced-row-echelon eliminator with pivot rows indexed by
/// their leading bit, so reduction never searches or sorts.
///
/// Each pivot carries a *combination* word remembering which original rows
/// were XORed into it; relations, solutions and inverses all fall out of the
/// same single elimination pass.
#[derive(Debug, Clone)]
struct Eliminator {
    values: [u64; 64],
    combos: [u64; 64],
    /// Bit `b` set ⇔ a pivot row with leading bit `b` exists.
    occupied: u64,
}

impl Eliminator {
    fn new() -> Self {
        Eliminator {
            values: [0; 64],
            combos: [0; 64],
            occupied: 0,
        }
    }

    /// Fully reduces `(value, combo)` against the pivot rows: the residue
    /// has no pivoted bit left (zero residue ⇔ `value` was in the row
    /// space).
    ///
    /// The loop touches only *pivoted* bits of the running value
    /// (`value & occupied`), one word-AND per step, so a reduction costs one
    /// XOR per pivot actually hit — never a scan over every digit.
    fn reduce(&self, mut value: u64, mut combo: u64) -> (u64, u64) {
        loop {
            let hits = value & self.occupied;
            if hits == 0 {
                return (value, combo);
            }
            // The highest pivoted bit strictly decreases every iteration:
            // XORing the pivot clears bit b and only perturbs lower bits.
            let b = 63 - hits.leading_zeros() as usize;
            value ^= self.values[b];
            combo ^= self.combos[b];
        }
    }

    /// Inserts a fully reduced, non-zero row as a new pivot. The basis is
    /// kept in *echelon* form only — [`Eliminator::reduce`] stays complete
    /// without back-substitution, and the rank / relation / solve / inverse
    /// paths never pay for it. [`Eliminator::rref_basis`] normalizes on
    /// demand.
    fn insert(&mut self, value: u64, combo: u64) {
        debug_assert_ne!(value, 0, "only non-zero residues become pivots");
        let b = 63 - value.leading_zeros() as usize;
        debug_assert_eq!((self.occupied >> b) & 1, 0, "pivot slot must be free");
        self.values[b] = value;
        self.combos[b] = combo;
        self.occupied |= 1u64 << b;
    }

    /// Feeds `(value, combo)` through the eliminator; returns the relation
    /// combo when the value was dependent, `None` when it became a pivot.
    fn absorb(&mut self, value: u64, combo: u64) -> Option<u64> {
        let (residue, combo) = self.reduce(value, combo);
        if residue == 0 {
            Some(combo)
        } else {
            self.insert(residue, combo);
            None
        }
    }

    fn rank(&self) -> usize {
        self.occupied.count_ones() as usize
    }

    /// Normalizes the echelon pivots to the unique **reduced** row-echelon
    /// basis and returns it by decreasing leading bit.
    ///
    /// Pivot bits are processed in ascending order, so every pivot a row is
    /// reduced against is already normalized and each cross-pivot bit is
    /// cleared exactly once.
    fn rref_basis(&mut self) -> Vec<u64> {
        let mut occ = self.occupied;
        while occ != 0 {
            let b = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let mut v = self.values[b];
            loop {
                // Other pivoted bits of v are all strictly below b.
                let hits = v & self.occupied & !(1u64 << b);
                if hits == 0 {
                    break;
                }
                let p = 63 - hits.leading_zeros() as usize;
                v ^= self.values[p];
            }
            self.values[b] = v;
        }
        let mut out = Vec::with_capacity(self.rank());
        let mut occ = self.occupied;
        while occ != 0 {
            let b = 63 - occ.leading_zeros() as usize;
            occ &= !(1u64 << b);
            out.push(self.values[b]);
        }
        out
    }
}

impl BitMatrix {
    /// Builds a matrix from its rows (each masked to `ncols` bits).
    pub fn from_rows(ncols: usize, rows: Vec<u64>) -> Self {
        assert!(ncols <= 64, "a packed row holds at most 64 digits");
        let m = mask(ncols);
        BitMatrix {
            ncols,
            rows: rows.into_iter().map(|r| r & m).collect(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        assert!(n <= 64, "a packed row holds at most 64 digits");
        BitMatrix {
            ncols: n,
            rows: (0..n).map(|i| 1u64 << i).collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The packed rows.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Row `i` as a packed word.
    pub fn row(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// The transposed matrix (digit-level; used only off the hot paths).
    pub fn transpose(&self) -> BitMatrix {
        assert!(self.nrows() <= 64, "the transpose needs packable rows");
        let rows = (0..self.ncols)
            .map(|j| {
                let mut r = 0u64;
                for (i, &row) in self.rows.iter().enumerate() {
                    r |= ((row >> j) & 1) << i;
                }
                r
            })
            .collect();
        BitMatrix {
            ncols: self.nrows(),
            rows,
        }
    }

    /// Applies the matrix to a column vector: `y_i = ⟨row_i, x⟩`.
    pub fn apply(&self, x: u64) -> u64 {
        let x = x & mask(self.ncols);
        let mut y = 0u64;
        for (i, &row) in self.rows.iter().enumerate() {
            y |= parity(row & x) << i;
        }
        y
    }

    /// Matrix product `self · other` over GF(2): row `i` of the result is
    /// the XOR of the rows of `other` selected by row `i` of `self`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.ncols,
            other.nrows(),
            "inner dimensions must agree for a product"
        );
        let rows = self
            .rows
            .iter()
            .map(|&row| {
                let mut acc = 0u64;
                let mut rest = row;
                while rest != 0 {
                    let j = rest.trailing_zeros() as usize;
                    acc ^= other.rows[j];
                    rest &= rest - 1;
                }
                acc
            })
            .collect();
        BitMatrix {
            ncols: other.ncols,
            rows,
        }
    }

    /// Rank over GF(2) (word-packed elimination, no sorting, no transposes).
    pub fn rank(&self) -> usize {
        let mut e = Eliminator::new();
        for &row in &self.rows {
            let (residue, _) = e.reduce(row, 0);
            if residue != 0 {
                e.insert(residue, 0);
            }
        }
        e.rank()
    }

    /// The unique reduced row-echelon basis of the row space, ordered by
    /// decreasing leading bit.
    pub fn row_space_basis(&self) -> Vec<u64> {
        let mut e = Eliminator::new();
        for &row in &self.rows {
            let (residue, _) = e.reduce(row, 0);
            if residue != 0 {
                e.insert(residue, 0);
            }
        }
        e.rref_basis()
    }

    /// A basis of the linear relations among the rows: each returned word
    /// selects a set of rows whose XOR is zero.
    ///
    /// In the transposed [`crate::LinearMap`] view, where the rows are the
    /// map's columns, this is exactly a kernel basis of the map.
    pub fn row_relations(&self) -> Vec<u64> {
        assert!(
            self.nrows() <= 64,
            "relation combinations are packed into one word"
        );
        let mut e = Eliminator::new();
        let mut relations = Vec::new();
        for (i, &row) in self.rows.iter().enumerate() {
            if let Some(combo) = e.absorb(row, 1u64 << i) {
                relations.push(combo);
            }
        }
        relations
    }

    /// Finds a set of rows whose XOR equals `target`, as a packed selector
    /// word, or `None` when `target` is outside the row space.
    ///
    /// In the transposed [`crate::LinearMap`] view this solves `L x = y`.
    pub fn solve_combination(&self, target: u64) -> Option<u64> {
        assert!(
            self.nrows() <= 64,
            "solution combinations are packed into one word"
        );
        let mut e = Eliminator::new();
        for (i, &row) in self.rows.iter().enumerate() {
            let (residue, combo) = e.reduce(row, 1u64 << i);
            if residue != 0 {
                e.insert(residue, combo);
            }
        }
        let (residue, combo) = e.reduce(target & mask(self.ncols), 0);
        (residue == 0).then_some(combo)
    }

    /// For a square full-rank matrix, returns for every unit vector `e_j`
    /// the row combination producing it (`out[j]`); `None` when singular.
    ///
    /// In the transposed [`crate::LinearMap`] view, `out[j]` is column `j`
    /// of the inverse map.
    pub fn combination_inverse(&self) -> Option<Vec<u64>> {
        assert_eq!(
            self.nrows(),
            self.ncols,
            "only square matrices can be inverted"
        );
        let mut e = Eliminator::new();
        for (i, &row) in self.rows.iter().enumerate() {
            let (residue, combo) = e.reduce(row, 1u64 << i);
            if residue != 0 {
                e.insert(residue, combo);
            }
        }
        if e.rank() < self.ncols {
            return None;
        }
        let columns = (0..self.ncols)
            .map(|j| {
                let (residue, combo) = e.reduce(1u64 << j, 0);
                debug_assert_eq!(residue, 0, "full rank spans every unit vector");
                combo
            })
            .collect();
        Some(columns)
    }
}

/// Evaluates the linear map given by `columns` on **every** input of
/// `width_in` bits in one Gray-code pass: `out[x] = ⊕_{j ∈ x} columns[j]`.
///
/// One XOR per table entry instead of one per set input digit — this is the
/// packed kernel behind [`crate::LinearMap::table`] and
/// [`crate::AffineMap::table`], and through them behind building connection
/// tables from affine certificates.
pub fn gray_code_table(width_in: usize, columns: &[Label], offset: Label) -> Vec<Label> {
    assert_eq!(columns.len(), width_in, "one column per input digit");
    assert!(width_in < 48, "a 2^{width_in}-entry table would not fit");
    let n = 1usize << width_in;
    let mut out = vec![offset; n];
    let mut acc = offset;
    for i in 1..n {
        acc ^= columns[i.trailing_zeros() as usize];
        // gray(i) and gray(i-1) differ exactly in bit trailing_zeros(i).
        out[i ^ (i >> 1)] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(nrows: usize, ncols: usize, rng: &mut ChaCha8Rng) -> BitMatrix {
        BitMatrix::from_rows(ncols, (0..nrows).map(|_| rng.gen::<u64>()).collect())
    }

    #[test]
    fn identity_has_full_rank_and_fixed_points() {
        let id = BitMatrix::identity(7);
        assert_eq!(id.rank(), 7);
        for x in 0..128u64 {
            assert_eq!(id.apply(x), x);
        }
        assert_eq!(id.combination_inverse().unwrap(), id.rows().to_vec());
    }

    #[test]
    fn rank_plus_relations_is_the_row_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        for _ in 0..50 {
            let m = random_matrix(9, 6, &mut rng);
            assert_eq!(m.rank() + m.row_relations().len(), m.nrows());
        }
    }

    #[test]
    fn relations_select_rows_that_cancel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2025);
        for _ in 0..50 {
            let m = random_matrix(10, 5, &mut rng);
            for combo in m.row_relations() {
                assert_ne!(combo, 0, "a relation involves at least one row");
                let mut acc = 0u64;
                let mut rest = combo;
                while rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    acc ^= m.row(i);
                    rest &= rest - 1;
                }
                assert_eq!(acc, 0);
            }
        }
    }

    #[test]
    fn row_space_basis_is_reduced_and_spans() {
        let m = BitMatrix::from_rows(4, vec![0b0011, 0b0101, 0b0110, 0b1111]);
        let basis = m.row_space_basis();
        assert_eq!(basis.len(), m.rank());
        // Reduced: every leading bit appears in exactly one basis row.
        for (i, &b) in basis.iter().enumerate() {
            let lead = 63 - b.leading_zeros() as usize;
            for (j, &other) in basis.iter().enumerate() {
                if i != j {
                    assert_eq!((other >> lead) & 1, 0, "pivot bit leaks into row {j}");
                }
            }
        }
        // Ordered by decreasing value (equivalently, decreasing leading bit).
        assert!(basis.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn solve_combination_finds_witnesses_exactly_on_the_row_space() {
        let mut rng = ChaCha8Rng::seed_from_u64(2026);
        for _ in 0..50 {
            let m = random_matrix(5, 8, &mut rng);
            let basis = m.row_space_basis();
            let span = crate::Subspace::from_generators(8, basis.iter().copied());
            for target in 0..256u64 {
                match m.solve_combination(target) {
                    Some(combo) => {
                        let mut acc = 0u64;
                        let mut rest = combo;
                        while rest != 0 {
                            let i = rest.trailing_zeros() as usize;
                            acc ^= m.row(i);
                            rest &= rest - 1;
                        }
                        assert_eq!(acc, target);
                    }
                    None => assert!(!span.contains(target)),
                }
            }
        }
    }

    #[test]
    fn combination_inverse_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(2027);
        let mut inverted = 0;
        for _ in 0..60 {
            let m = random_matrix(6, 6, &mut rng);
            let Some(inv) = m.combination_inverse() else {
                assert!(m.rank() < 6);
                continue;
            };
            inverted += 1;
            for (j, &combo) in inv.iter().enumerate() {
                let mut acc = 0u64;
                let mut rest = combo;
                while rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    acc ^= m.row(i);
                    rest &= rest - 1;
                }
                assert_eq!(acc, 1u64 << j);
            }
        }
        assert!(inverted >= 10, "random 6x6 matrices are often invertible");
    }

    #[test]
    fn mul_matches_composed_application() {
        let mut rng = ChaCha8Rng::seed_from_u64(2028);
        for _ in 0..30 {
            let a = random_matrix(5, 6, &mut rng);
            let b = random_matrix(6, 4, &mut rng);
            let ab = a.mul(&b);
            assert_eq!(ab.nrows(), 5);
            assert_eq!(ab.ncols(), 4);
            // In the row-combination reading, row i of ab selects columns of
            // b the way row i of a selects rows of b; check via transpose
            // application: (a·b)ᵀ x = bᵀ (aᵀ x).
            for x in 0..32u64 {
                assert_eq!(
                    ab.transpose().apply(x),
                    b.transpose().apply(a.transpose().apply(x))
                );
            }
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut rng = ChaCha8Rng::seed_from_u64(2029);
        let m = random_matrix(7, 5, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rank(), m.rank());
    }

    #[test]
    fn gray_code_table_matches_bitwise_evaluation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2030);
        for _ in 0..20 {
            let width = 6;
            let columns: Vec<u64> = (0..width).map(|_| rng.gen::<u64>() & 0xFF).collect();
            let offset = rng.gen::<u64>() & 0xFF;
            let table = gray_code_table(width, &columns, offset);
            for x in 0..(1u64 << width) {
                let mut expect = offset;
                for (j, &c) in columns.iter().enumerate() {
                    if (x >> j) & 1 == 1 {
                        expect ^= c;
                    }
                }
                assert_eq!(table[x as usize], expect, "x = {x}");
            }
        }
    }
}
