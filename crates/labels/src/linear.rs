//! Linear maps over GF(2).
//!
//! A map `L : Z_2^{w_in} -> Z_2^{w_out}` is linear when
//! `L(x ⊕ y) = L(x) ⊕ L(y)`. We store it by its images of the canonical
//! basis vectors (`columns[j] = L(e_j)`), which makes application a handful
//! of XORs and composition a matrix product over GF(2).
//!
//! Independent connections (paper, §3) are precisely the connections whose
//! `f` is *affine* with linear part shared by `g` (see
//! `min-core::affine_form`), so [`LinearMap`] is the certificate type
//! produced by the fast independence checker.
//!
//! Since the bitset-packing refactor this type is a thin shim: rank,
//! kernel, inversion, solving and composition all delegate to the
//! word-packed elimination kernels of [`crate::bitmat`] (the column list is
//! handed to [`BitMatrix`] as the rows of the transpose), and full-domain
//! evaluation uses the Gray-code table builder. The historical
//! digit-at-a-time implementations are retained in [`crate::scalar`] as the
//! reference oracle and benchmark baseline.

use crate::bitmat::{gray_code_table, BitMatrix};
use crate::gf2::{mask, Label, Width};
use crate::subspace::Subspace;

/// A GF(2) linear map stored column-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearMap {
    width_in: Width,
    width_out: Width,
    /// `columns[j]` is the image of the canonical basis vector `e_j`.
    columns: Vec<Label>,
}

impl LinearMap {
    /// The identity map on `Z_2^width`.
    pub fn identity(width: Width) -> Self {
        crate::check_width(width);
        LinearMap {
            width_in: width,
            width_out: width,
            columns: (0..width).map(|j| 1u64 << j).collect(),
        }
    }

    /// The zero map `Z_2^{width_in} -> Z_2^{width_out}`.
    pub fn zero(width_in: Width, width_out: Width) -> Self {
        crate::check_width(width_in);
        crate::check_width(width_out);
        LinearMap {
            width_in,
            width_out,
            columns: vec![0; width_in],
        }
    }

    /// Builds a map from explicit columns (`columns[j] = L(e_j)`).
    pub fn from_columns(width_in: Width, width_out: Width, columns: Vec<Label>) -> Self {
        crate::check_width(width_in);
        crate::check_width(width_out);
        assert_eq!(
            columns.len(),
            width_in,
            "a map on Z_2^{width_in} needs exactly {width_in} columns"
        );
        let m = mask(width_out);
        LinearMap {
            width_in,
            width_out,
            columns: columns.into_iter().map(|c| c & m).collect(),
        }
    }

    /// Builds the unique linear map agreeing with `func` on the canonical
    /// basis. (Whether `func` itself is linear is a separate question —
    /// see [`LinearMap::agrees_with`].)
    pub fn interpolate<F: Fn(Label) -> Label>(width_in: Width, width_out: Width, func: F) -> Self {
        let f0 = func(0);
        let columns = (0..width_in)
            .map(|j| (func(1u64 << j) ^ f0) & mask(width_out))
            .collect();
        LinearMap {
            width_in,
            width_out,
            columns,
        }
    }

    /// Input width.
    pub fn width_in(&self) -> Width {
        self.width_in
    }

    /// Output width.
    pub fn width_out(&self) -> Width {
        self.width_out
    }

    /// Column access (`L(e_j)`).
    pub fn columns(&self) -> &[Label] {
        &self.columns
    }

    /// Applies the map to `x`.
    #[inline]
    pub fn apply(&self, x: Label) -> Label {
        let mut acc = 0u64;
        let mut rest = x & mask(self.width_in);
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            acc ^= self.columns[j];
            rest &= rest - 1;
        }
        acc
    }

    /// Evaluates the map on **every** input of the domain in one Gray-code
    /// pass: `table()[x] = L(x)`, one XOR per entry.
    pub fn table(&self) -> Vec<Label> {
        gray_code_table(self.width_in, &self.columns, 0)
    }

    /// The packed transpose view: the columns of this map are the rows of
    /// the returned [`BitMatrix`], which is how the elimination kernels
    /// consume it (see the orientation note in [`crate::bitmat`]).
    pub fn column_matrix(&self) -> BitMatrix {
        BitMatrix::from_rows(self.width_out, self.columns.clone())
    }

    /// Checks whether `func` agrees with this linear map on **every** input
    /// of the domain. Combined with [`LinearMap::interpolate`] this is an
    /// exact linearity test for an arbitrary function table.
    pub fn agrees_with<F: Fn(Label) -> Label>(&self, func: F) -> bool {
        let m = mask(self.width_out);
        self.table()
            .iter()
            .zip(crate::all_labels(self.width_in))
            .all(|(&img, x)| img == func(x) & m)
    }

    /// Composition `self ∘ other` (apply `other` first), as a packed matrix
    /// product: every column of the result is one row-combination pass.
    pub fn compose(&self, other: &LinearMap) -> LinearMap {
        assert_eq!(
            other.width_out, self.width_in,
            "composition requires matching intermediate widths"
        );
        let product = other.column_matrix().mul(&self.column_matrix());
        LinearMap {
            width_in: other.width_in,
            width_out: self.width_out,
            columns: product.rows().to_vec(),
        }
    }

    /// Rank of the matrix over GF(2) (packed XOR-row elimination).
    pub fn rank(&self) -> usize {
        self.column_matrix().rank()
    }

    /// Image of the map, as a subspace of the codomain.
    pub fn image(&self) -> Subspace {
        Subspace::from_generators(self.width_out, self.columns.iter().copied())
    }

    /// Kernel of the map, as a subspace of the domain: the packed
    /// elimination collects the linear relations among the columns.
    pub fn kernel(&self) -> Subspace {
        Subspace::from_generators(self.width_in, self.column_matrix().row_relations())
    }

    /// Solves `L x = y`, or `None` when `y` is outside the image.
    pub fn solve(&self, y: Label) -> Option<Label> {
        self.column_matrix().solve_combination(y)
    }

    /// `true` when the map is a bijection of `Z_2^width` (square and full
    /// rank).
    pub fn is_invertible(&self) -> bool {
        self.width_in == self.width_out && self.rank() == self.width_in
    }

    /// Inverse of an invertible square map (one packed Gauss–Jordan pass;
    /// no digit-at-a-time row rebuilding).
    pub fn inverse(&self) -> Option<LinearMap> {
        if self.width_in != self.width_out {
            return None;
        }
        let inv_columns = self.column_matrix().combination_inverse()?;
        Some(LinearMap {
            width_in: self.width_in,
            width_out: self.width_out,
            columns: inv_columns,
        })
    }

    /// Samples a uniformly random linear map.
    pub fn random<R: rand::Rng>(width_in: Width, width_out: Width, rng: &mut R) -> Self {
        let columns = (0..width_in)
            .map(|_| rng.gen::<u64>() & mask(width_out))
            .collect();
        LinearMap {
            width_in,
            width_out,
            columns,
        }
    }

    /// Samples a uniformly random *invertible* linear map by rejection.
    pub fn random_invertible<R: rand::Rng>(width: Width, rng: &mut R) -> Self {
        loop {
            let m = Self::random(width, width, rng);
            if m.is_invertible() {
                return m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_applies_as_identity() {
        let id = LinearMap::identity(5);
        for x in crate::all_labels(5) {
            assert_eq!(id.apply(x), x);
        }
        assert!(id.is_invertible());
        assert_eq!(id.rank(), 5);
    }

    #[test]
    fn zero_map_sends_everything_to_zero() {
        let z = LinearMap::zero(4, 3);
        for x in crate::all_labels(4) {
            assert_eq!(z.apply(x), 0);
        }
        assert_eq!(z.rank(), 0);
        assert_eq!(z.kernel().dim(), 4);
    }

    #[test]
    fn interpolate_recovers_a_linear_function() {
        // shift-right is linear
        let f = |x: Label| x >> 1;
        let m = LinearMap::interpolate(4, 3, f);
        assert!(m.agrees_with(f));
    }

    #[test]
    fn interpolate_detects_nonlinearity_via_agrees_with() {
        // x -> x*x (mod domain) is not linear over GF(2)
        let f = |x: Label| (x.wrapping_mul(x)) & 0b1111;
        let m = LinearMap::interpolate(4, 4, f);
        assert!(!m.agrees_with(f));
    }

    #[test]
    fn composition_matches_pointwise_application() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = LinearMap::random(5, 6, &mut rng);
        let b = LinearMap::random(4, 5, &mut rng);
        let c = a.compose(&b);
        for x in crate::all_labels(4) {
            assert_eq!(c.apply(x), a.apply(b.apply(x)));
        }
    }

    #[test]
    fn rank_nullity_theorem_holds() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..20 {
            let m = LinearMap::random(6, 6, &mut rng);
            assert_eq!(m.rank() + m.kernel().dim(), 6);
        }
    }

    #[test]
    fn kernel_members_map_to_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let m = LinearMap::random(7, 4, &mut rng);
        for k in m.kernel().elements() {
            assert_eq!(m.apply(k), 0);
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..10 {
            let m = LinearMap::random_invertible(6, &mut rng);
            let inv = m.inverse().expect("invertible by construction");
            for x in crate::all_labels(6) {
                assert_eq!(inv.apply(m.apply(x)), x);
                assert_eq!(m.apply(inv.apply(x)), x);
            }
        }
    }

    #[test]
    fn singular_maps_have_no_inverse() {
        let m = LinearMap::from_columns(3, 3, vec![0b001, 0b001, 0b100]);
        assert!(!m.is_invertible());
        assert!(m.inverse().is_none());
    }

    #[test]
    fn table_matches_pointwise_application() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        for _ in 0..10 {
            let m = LinearMap::random(7, 5, &mut rng);
            let table = m.table();
            assert_eq!(table.len(), 128);
            for x in crate::all_labels(7) {
                assert_eq!(table[x as usize], m.apply(x));
            }
        }
    }

    #[test]
    fn solve_finds_preimages_exactly_on_the_image() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..10 {
            let m = LinearMap::random(5, 5, &mut rng);
            let image = m.image();
            for y in crate::all_labels(5) {
                match m.solve(y) {
                    Some(x) => assert_eq!(m.apply(x), y),
                    None => assert!(!image.contains(y)),
                }
            }
        }
    }

    #[test]
    fn image_dimension_equals_rank() {
        let m = LinearMap::from_columns(4, 4, vec![0b0001, 0b0010, 0b0011, 0b0000]);
        assert_eq!(m.rank(), 2);
        assert_eq!(m.image().dim(), 2);
        assert!(m.image().contains(0b0011));
        assert!(!m.image().contains(0b0100));
    }
}
