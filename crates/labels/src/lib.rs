//! # `min-labels` — GF(2) label algebra and index-digit permutations
//!
//! Bermond & Fourneau (TCS 64, 1989) describe the cells of a multistage
//! interconnection network (MIN) by binary strings of length `n-1` and work
//! in the group `(Z_2^{n-1}, ⊕)` ("bitwise addition, or exclusive or").
//! Section 4 of the paper additionally manipulates *link* labels of length
//! `n` and the **PIPID** family of permutations (Permutations Induced by a
//! Permutation on the Index Digits).
//!
//! This crate provides the algebraic substrate used by the rest of the
//! workspace:
//!
//! * [`Label`] — a binary string of bounded width stored in a machine word,
//!   together with all the bit-level helpers the paper uses (bitwise
//!   addition, digit extraction/insertion, translated sets / cosets).
//! * [`subspace::Subspace`] — GF(2) linear subspaces: bases obtained by
//!   Gaussian elimination, membership, enumeration, basis extension. These
//!   implement the `(α_2, …, α_{n-1})`-generated sets of Proposition 1.
//! * [`linear::LinearMap`] and [`affine::AffineMap`] — linear / affine maps
//!   over GF(2). Independent connections turn out to be exactly the affine
//!   pairs `(f, f ⊕ c)` (see `min-core::affine_form`), so these types carry
//!   the certificates produced by the independence checker.
//! * [`bitmat::BitMatrix`] — word-packed GF(2) matrices: XOR-row
//!   elimination, rank, kernel/image bases, solving and inversion, one `u64`
//!   word per row. These are the hot kernels behind the shim types above;
//!   the pre-packing digit-at-a-time implementations are retained in
//!   [`scalar`] as the reference oracle and benchmark baseline.
//! * [`index_perm::IndexPermutation`] — a permutation θ of the digit
//!   positions, i.e. a PIPID generator: perfect shuffle, sub-shuffles,
//!   butterflies, bit reversal, and arbitrary θ.
//! * [`perm::Permutation`] — an arbitrary permutation of `2^w` symbols, with
//!   PIPID detection, composition, inversion and random sampling.
//!
//! The crate is `#![forbid(unsafe_code)]` and has no mandatory heap
//! allocation on the hot paths (labels are plain `u64`s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod bitmat;
pub mod gf2;
pub mod index_perm;
pub mod linear;
pub mod perm;
pub mod scalar;
pub mod subspace;

pub use affine::AffineMap;
pub use bitmat::BitMatrix;
pub use gf2::{all_labels, bit, leading_bit, mask, parity, popcount, Label, Width};
pub use index_perm::IndexPermutation;
pub use linear::LinearMap;
pub use perm::Permutation;
pub use subspace::Subspace;

/// Maximum label width supported by the crate (labels are stored in `u64`).
///
/// `MAX_WIDTH = 32` corresponds to a network with `N = 2^33` inputs — far
/// beyond anything constructible in memory — so the bound is never the
/// limiting factor in practice; it exists to keep index arithmetic in `usize`
/// safe on 32-bit hosts.
pub const MAX_WIDTH: Width = 32;

/// Checks that a width is within the supported range, panicking otherwise.
///
/// All public constructors funnel through this check so that the rest of the
/// code can assume `width <= MAX_WIDTH`.
#[inline]
pub fn check_width(width: Width) {
    assert!(
        width <= MAX_WIDTH,
        "label width {width} exceeds the supported maximum {MAX_WIDTH}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_width_accepts_supported_widths() {
        for w in 0..=MAX_WIDTH {
            check_width(w);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn check_width_rejects_oversized_widths() {
        check_width(MAX_WIDTH + 1);
    }
}
