//! Retained digit-at-a-time GF(2) reference kernels.
//!
//! These are the pre-packing implementations that `LinearMap` and `Subspace`
//! used before the [`crate::bitmat`] rewrite, kept verbatim (modulo being
//! free functions over explicit column lists) for two purposes:
//!
//! * they are the **reference oracle** the scalar-vs-packed property tests
//!   (`tests/packed_oracle.rs`) pin the packed kernels against;
//! * they are the **baseline** the `classification` benchmark measures the
//!   packed speedup against (`classification_kernels/{packed,scalar}`).
//!
//! A map is given as its column list (`columns[j] = L(e_j)`), exactly like
//! [`crate::LinearMap`]. None of this is called on hot paths.

use crate::gf2::{bit, mask, Label, Width};

/// Applies the map digit by digit: XOR of the columns selected by `x`.
pub fn apply(columns: &[Label], x: Label) -> Label {
    let mut acc = 0u64;
    let mut rest = x & mask(columns.len());
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        acc ^= columns[j];
        rest &= rest - 1;
    }
    acc
}

/// Evaluates the map on every input the pre-packing way: one full
/// [`apply`] per table entry.
pub fn table(width_in: Width, columns: &[Label], offset: Label) -> Vec<Label> {
    (0..(1u64 << width_in))
        .map(|x| apply(columns, x) ^ offset)
        .collect()
}

/// Rank by insertion into a sorted reduced basis — the historical
/// `Subspace::from_generators` + `insert` path, with its per-insert re-sort.
pub fn rank(width_out: Width, columns: &[Label]) -> usize {
    let m = mask(width_out);
    let mut basis: Vec<Label> = Vec::new();
    for &c in columns {
        let mut x = c & m;
        for &b in &basis {
            let lead = 63 - b.leading_zeros() as usize;
            if bit(x, lead) == 1 {
                x ^= b;
            }
        }
        if x == 0 {
            continue;
        }
        let lead = 63 - x.leading_zeros() as usize;
        for b in &mut basis {
            if bit(*b, lead) == 1 {
                *b ^= x;
            }
        }
        basis.push(x);
        basis.sort_unstable_by(|a, b| b.cmp(a));
    }
    basis.len()
}

/// Kernel generators by column elimination with combination tracking and a
/// re-sort after every pivot — the historical `LinearMap::kernel` body.
pub fn kernel(width_in: Width, columns: &[Label]) -> Vec<Label> {
    let mut reduced: Vec<(Label, Label)> = Vec::new(); // (value, combination)
    let mut kernel_gens = Vec::new();
    for j in 0..width_in {
        let mut val = columns[j];
        let mut combo = 1u64 << j;
        for &(rv, rc) in &reduced {
            if rv != 0 {
                let lead = 63 - rv.leading_zeros() as usize;
                if bit(val, lead) == 1 {
                    val ^= rv;
                    combo ^= rc;
                }
            }
        }
        if val == 0 {
            kernel_gens.push(combo);
        } else {
            reduced.push((val, combo));
            reduced.sort_unstable_by_key(|r| std::cmp::Reverse(r.0));
        }
    }
    kernel_gens
}

/// Inverse of a square map by the historical digit-at-a-time Gauss–Jordan:
/// rows are rebuilt bit by bit from the columns, eliminated with per-digit
/// pivot tests, and converted back bit by bit.
pub fn inverse(width: Width, columns: &[Label]) -> Option<Vec<Label>> {
    assert_eq!(columns.len(), width, "a square map has width columns");
    if rank(width, columns) != width {
        return None;
    }
    let w = width;
    let mut rows: Vec<Label> = (0..w)
        .map(|i| {
            let mut r = 0u64;
            for j in 0..w {
                r |= bit(columns[j], i) << j;
            }
            r
        })
        .collect();
    let mut inv_rows: Vec<Label> = (0..w).map(|i| 1u64 << i).collect();
    for col in 0..w {
        let pivot = (col..w).find(|&r| bit(rows[r], col) == 1)?;
        rows.swap(col, pivot);
        inv_rows.swap(col, pivot);
        for r in 0..w {
            if r != col && bit(rows[r], col) == 1 {
                rows[r] ^= rows[col];
                inv_rows[r] ^= inv_rows[col];
            }
        }
    }
    let inv_columns: Vec<Label> = (0..w)
        .map(|j| {
            let mut c = 0u64;
            for i in 0..w {
                c |= bit(inv_rows[i], j) << i;
            }
            c
        })
        .collect();
    Some(inv_columns)
}

/// Solves `L x = y` by the same digit-at-a-time elimination style as
/// [`inverse`], carried on an augmented target.
pub fn solve(width_out: Width, columns: &[Label], y: Label) -> Option<Label> {
    let m = mask(width_out);
    let mut reduced: Vec<(Label, Label)> = Vec::new(); // (value, combination)
    for (j, &c) in columns.iter().enumerate() {
        let mut val = c & m;
        let mut combo = 1u64 << j;
        for &(rv, rc) in &reduced {
            let lead = 63 - rv.leading_zeros() as usize;
            if bit(val, lead) == 1 {
                val ^= rv;
                combo ^= rc;
            }
        }
        if val != 0 {
            reduced.push((val, combo));
            reduced.sort_unstable_by_key(|r| std::cmp::Reverse(r.0));
        }
    }
    let mut val = y & m;
    let mut combo = 0u64;
    for &(rv, rc) in &reduced {
        let lead = 63 - rv.leading_zeros() as usize;
        if bit(val, lead) == 1 {
            val ^= rv;
            combo ^= rc;
        }
    }
    (val == 0).then_some(combo)
}

/// Composition `outer ∘ inner` by one digit-at-a-time [`apply`] per column —
/// the historical `LinearMap::compose` body.
pub fn compose(outer: &[Label], inner: &[Label]) -> Vec<Label> {
    inner.iter().map(|&c| apply(outer, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_table_agree() {
        let columns = vec![0b011, 0b101, 0b110];
        let t = table(3, &columns, 0b001);
        for x in 0..8u64 {
            assert_eq!(t[x as usize], apply(&columns, x) ^ 0b001);
        }
    }

    #[test]
    fn rank_counts_independent_columns() {
        assert_eq!(rank(3, &[0b001, 0b010, 0b011]), 2);
        assert_eq!(rank(3, &[0b001, 0b010, 0b100]), 3);
        assert_eq!(rank(3, &[0, 0, 0]), 0);
    }

    #[test]
    fn kernel_generators_map_to_zero() {
        let columns = vec![0b0011, 0b0101, 0b0110, 0b0000];
        for k in kernel(4, &columns) {
            assert_eq!(apply(&columns, k), 0);
        }
        assert_eq!(rank(4, &columns) + kernel(4, &columns).len(), 4);
    }

    #[test]
    fn inverse_and_solve_agree() {
        let columns = vec![0b011, 0b110, 0b100];
        let inv = inverse(3, &columns).expect("invertible");
        for y in 0..8u64 {
            let x = solve(3, &columns, y).expect("full rank");
            assert_eq!(apply(&columns, x), y);
            assert_eq!(apply(&inv, y), x);
        }
        assert!(inverse(3, &[0b001, 0b001, 0b100]).is_none());
    }

    #[test]
    fn compose_is_pointwise_composition() {
        let a = vec![0b01, 0b11];
        let b = vec![0b10, 0b01];
        let ab = compose(&a, &b);
        for x in 0..4u64 {
            assert_eq!(apply(&ab, x), apply(&a, apply(&b, x)));
        }
    }
}
