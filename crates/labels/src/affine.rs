//! Affine maps over GF(2): `x ↦ L(x) ⊕ t`.
//!
//! The fast independence checker in `min-core` proves that a connection
//! `(f, g)` is independent exactly when `f` is affine and `g = f ⊕ c` for a
//! constant `c`. [`AffineMap`] is the concrete certificate: the linear part
//! `L`, the translation `t = f(0)`, and helpers to verify the certificate
//! against an arbitrary function table.

use crate::gf2::{mask, Label, Width};
use crate::linear::LinearMap;

/// An affine map `x ↦ linear(x) ⊕ offset` over GF(2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineMap {
    linear: LinearMap,
    offset: Label,
}

impl AffineMap {
    /// Builds an affine map from its linear part and offset.
    pub fn new(linear: LinearMap, offset: Label) -> Self {
        let offset = offset & mask(linear.width_out());
        AffineMap { linear, offset }
    }

    /// The identity map viewed as an affine map.
    pub fn identity(width: Width) -> Self {
        AffineMap::new(LinearMap::identity(width), 0)
    }

    /// A pure translation `x ↦ x ⊕ v`.
    pub fn translation(width: Width, v: Label) -> Self {
        AffineMap::new(LinearMap::identity(width), v)
    }

    /// Interpolates the unique affine map agreeing with `func` at `0` and on
    /// the canonical basis vectors.
    ///
    /// Whether `func` is actually affine must then be checked with
    /// [`AffineMap::agrees_with`]; the pair of calls constitutes an exact
    /// affinity test for a function given as a table or closure.
    pub fn interpolate<F: Fn(Label) -> Label>(width_in: Width, width_out: Width, func: F) -> Self {
        let offset = func(0) & mask(width_out);
        let linear = LinearMap::interpolate(width_in, width_out, &func);
        AffineMap { linear, offset }
    }

    /// Linear part.
    pub fn linear(&self) -> &LinearMap {
        &self.linear
    }

    /// Constant part (`f(0)`).
    pub fn offset(&self) -> Label {
        self.offset
    }

    /// Input width.
    pub fn width_in(&self) -> Width {
        self.linear.width_in()
    }

    /// Output width.
    pub fn width_out(&self) -> Width {
        self.linear.width_out()
    }

    /// Applies the map.
    #[inline]
    pub fn apply(&self, x: Label) -> Label {
        self.linear.apply(x) ^ self.offset
    }

    /// Evaluates the map on **every** input of the domain in one Gray-code
    /// pass: `table()[x] = f(x)`, one XOR per entry.
    ///
    /// This is the packed kernel behind building connection tables from
    /// affine certificates (`min-core`'s `Connection::from_affine`) and
    /// behind the `O(N)` affine-form check.
    pub fn table(&self) -> Vec<Label> {
        crate::bitmat::gray_code_table(self.width_in(), self.linear.columns(), self.offset)
    }

    /// Checks that `func` agrees with this affine map on the whole domain.
    pub fn agrees_with<F: Fn(Label) -> Label>(&self, func: F) -> bool {
        let m = mask(self.width_out());
        self.table()
            .iter()
            .zip(crate::all_labels(self.width_in()))
            .all(|(&img, x)| img == func(x) & m)
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        AffineMap {
            linear: self.linear.compose(&other.linear),
            offset: self.linear.apply(other.offset) ^ self.offset,
        }
    }

    /// `true` when the map is a bijection (its linear part is invertible).
    pub fn is_invertible(&self) -> bool {
        self.linear.is_invertible()
    }

    /// Inverse of an invertible affine map.
    pub fn inverse(&self) -> Option<AffineMap> {
        let inv = self.linear.inverse()?;
        let offset = inv.apply(self.offset);
        Some(AffineMap {
            linear: inv,
            offset,
        })
    }

    /// Samples a random affine map.
    pub fn random<R: rand::Rng>(width_in: Width, width_out: Width, rng: &mut R) -> Self {
        AffineMap {
            linear: LinearMap::random(width_in, width_out, rng),
            offset: rng.gen::<u64>() & mask(width_out),
        }
    }

    /// Samples a random invertible affine map.
    pub fn random_invertible<R: rand::Rng>(width: Width, rng: &mut R) -> Self {
        AffineMap {
            linear: LinearMap::random_invertible(width, rng),
            offset: rng.gen::<u64>() & mask(width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_and_translation_apply_correctly() {
        let id = AffineMap::identity(4);
        let tr = AffineMap::translation(4, 0b1010);
        for x in crate::all_labels(4) {
            assert_eq!(id.apply(x), x);
            assert_eq!(tr.apply(x), x ^ 0b1010);
        }
    }

    #[test]
    fn interpolate_recovers_affine_functions() {
        let f = |x: Label| (x >> 1) ^ 0b100;
        let a = AffineMap::interpolate(4, 3, f);
        assert!(a.agrees_with(f));
        assert_eq!(a.offset(), 0b100);
    }

    #[test]
    fn interpolate_rejects_non_affine_functions() {
        let f = |x: Label| if x == 3 { 0 } else { x };
        let a = AffineMap::interpolate(3, 3, f);
        assert!(!a.agrees_with(f));
    }

    #[test]
    fn table_matches_pointwise_application() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..10 {
            let a = AffineMap::random(6, 4, &mut rng);
            let table = a.table();
            assert_eq!(table.len(), 64);
            for x in crate::all_labels(6) {
                assert_eq!(table[x as usize], a.apply(x));
            }
        }
    }

    #[test]
    fn composition_matches_pointwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = AffineMap::random(5, 5, &mut rng);
        let b = AffineMap::random(5, 5, &mut rng);
        let c = a.compose(&b);
        for x in crate::all_labels(5) {
            assert_eq!(c.apply(x), a.apply(b.apply(x)));
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = AffineMap::random_invertible(6, &mut rng);
        let inv = a.inverse().unwrap();
        for x in crate::all_labels(6) {
            assert_eq!(inv.apply(a.apply(x)), x);
        }
    }

    #[test]
    fn translation_difference_of_affine_pair_is_constant() {
        // If g = f ⊕ c as maps, then f(x) ⊕ g(x) is the constant c — the
        // structural fact behind Lemma 2's "difference between the labels is
        // constant" argument.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let f = AffineMap::random(5, 5, &mut rng);
        let c = 0b10110;
        let g = AffineMap::new(f.linear().clone(), f.offset() ^ c);
        for x in crate::all_labels(5) {
            assert_eq!(f.apply(x) ^ g.apply(x), c);
        }
    }
}
