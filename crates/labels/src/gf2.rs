//! Bit-level helpers over `Z_2^w`.
//!
//! The paper labels the cells of stage `i` with the binary `(n-1)`-tuples
//! `(x_{n-1}, …, x_1)` and the links with the `n`-tuples
//! `(x_{n-1}, …, x_1, x_0)`. We store such a tuple as the integer
//! `Σ x_k 2^k` in a [`Label`] (`u64`), and keep the *width* (the number of
//! significant digits) alongside wherever it matters.
//!
//! The group operation of the paper, "bitwise addition (or exclusive or)",
//! is plain `^` on the integer representation, so most of this module is
//! small, heavily used utility functions plus the translated-set (coset)
//! helper from Section 3.

/// A binary string of bounded width stored least-significant-digit first.
///
/// Digit `k` of the paper's tuple `(x_{w-1}, …, x_0)` is bit `k` of the
/// integer. Bitwise addition (`⊕` in the paper) is `^`.
pub type Label = u64;

/// Number of significant binary digits in a [`Label`].
pub type Width = usize;

/// Returns the mask selecting the `width` low-order digits.
///
/// ```
/// use min_labels::mask;
/// assert_eq!(mask(0), 0);
/// assert_eq!(mask(3), 0b111);
/// assert_eq!(mask(32), 0xFFFF_FFFF);
/// ```
#[inline]
pub fn mask(width: Width) -> Label {
    if width == 0 {
        0
    } else if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Extracts digit `k` (0 or 1) of `x`.
///
/// ```
/// use min_labels::bit;
/// assert_eq!(bit(0b1010, 1), 1);
/// assert_eq!(bit(0b1010, 2), 0);
/// ```
#[inline]
pub fn bit(x: Label, k: usize) -> u64 {
    (x >> k) & 1
}

/// Sets digit `k` of `x` to `value` (0 or 1) and returns the new label.
#[inline]
pub fn with_bit(x: Label, k: usize, value: u64) -> Label {
    debug_assert!(value <= 1, "a binary digit must be 0 or 1");
    (x & !(1u64 << k)) | (value << k)
}

/// Number of 1-digits of `x`.
#[inline]
pub fn popcount(x: Label) -> u32 {
    x.count_ones()
}

/// Position of the highest set digit of `x`, or `None` for `x = 0`.
///
/// The elimination kernels ([`crate::bitmat`]) and the subspace reduction
/// key every pivot by this position.
///
/// ```
/// use min_labels::gf2::leading_bit;
/// assert_eq!(leading_bit(0b1010), Some(3));
/// assert_eq!(leading_bit(1), Some(0));
/// assert_eq!(leading_bit(0), None);
/// ```
#[inline]
pub fn leading_bit(x: Label) -> Option<usize> {
    if x == 0 {
        None
    } else {
        Some(63 - x.leading_zeros() as usize)
    }
}

/// Parity (sum over GF(2)) of the digits of `x`.
///
/// Used when evaluating a GF(2) linear form (a row of a matrix) against a
/// label: `parity(row & x)` is the inner product `⟨row, x⟩` over GF(2).
#[inline]
pub fn parity(x: Label) -> u64 {
    (x.count_ones() & 1) as u64
}

/// Iterator over all `2^width` labels of the given width, in natural order.
///
/// ```
/// use min_labels::all_labels;
/// let v: Vec<u64> = all_labels(2).collect();
/// assert_eq!(v, vec![0, 1, 2, 3]);
/// ```
#[inline]
pub fn all_labels(width: Width) -> impl Iterator<Item = Label> {
    debug_assert!(width < 63, "enumerating 2^{width} labels would overflow");
    0..(1u64 << width)
}

/// Number of labels of a given width, `2^width`, as a `usize`.
#[inline]
pub fn domain_size(width: Width) -> usize {
    crate::check_width(width);
    1usize << width
}

/// Inserts a digit `value` at position `pos` of `x`, shifting the digits at
/// positions `>= pos` one place up.
///
/// With `x = (x_{w-1}, …, x_0)` this returns the `(w+1)`-digit label
/// `(x_{w-1}, …, x_pos, value, x_{pos-1}, …, x_0)`. Section 4 of the paper
/// builds the children of a cell exactly this way: the θ-permuted cell label
/// with a `0` (for `f`) or `1` (for `g`) inserted at position `k-1`.
///
/// ```
/// use min_labels::gf2::insert_bit;
/// // insert a 1 between digits 1 and 0 of 0b10 -> 0b1_1_0
/// assert_eq!(insert_bit(0b10, 1, 1), 0b110);
/// ```
#[inline]
pub fn insert_bit(x: Label, pos: usize, value: u64) -> Label {
    debug_assert!(value <= 1);
    let low = x & mask(pos);
    let high = x >> pos;
    (high << (pos + 1)) | (value << pos) | low
}

/// Removes the digit at position `pos` of `x`, shifting higher digits down.
///
/// Inverse of [`insert_bit`] (ignoring the removed digit's value).
#[inline]
pub fn remove_bit(x: Label, pos: usize) -> Label {
    let low = x & mask(pos);
    let high = x >> (pos + 1);
    (high << pos) | low
}

/// The `v`-translated set of `set`: `{ a ⊕ v : a ∈ set }` (paper, §3).
///
/// The result preserves multiplicity but not order; it is sorted so that two
/// translated sets can be compared with `==`.
pub fn translated_set(set: &[Label], v: Label) -> Vec<Label> {
    let mut out: Vec<Label> = set.iter().map(|&a| a ^ v).collect();
    out.sort_unstable();
    out
}

/// Returns `true` if `b` is a translate (coset shift) of `a`, i.e. there is a
/// single vector `v` with `b = { x ⊕ v : x ∈ a }`.
///
/// Both slices are treated as sets; duplicates are ignored. Lemma 2 of the
/// paper repeatedly argues that the "buddy" set `B_j` is a translated set of
/// `A_j`; this predicate is what the corresponding tests check.
pub fn is_translate_of(a: &[Label], b: &[Label]) -> bool {
    let mut sa: Vec<Label> = a.to_vec();
    let mut sb: Vec<Label> = b.to_vec();
    sa.sort_unstable();
    sa.dedup();
    sb.sort_unstable();
    sb.dedup();
    if sa.len() != sb.len() {
        return false;
    }
    if sa.is_empty() {
        return true;
    }
    // If b = a ⊕ v then v must be a_min ⊕ b_i for some i; but using sorted
    // order the translate of the minimum need not be the minimum of b, so we
    // try every candidate shift derived from the first element of a.
    for &candidate in &sb {
        let v = sa[0] ^ candidate;
        if translated_set(&sa, v) == sb {
            return true;
        }
    }
    false
}

/// Finds the translation vector `v` such that `b = a ⊕ v`, if one exists.
pub fn translation_vector(a: &[Label], b: &[Label]) -> Option<Label> {
    let mut sa: Vec<Label> = a.to_vec();
    let mut sb: Vec<Label> = b.to_vec();
    sa.sort_unstable();
    sa.dedup();
    sb.sort_unstable();
    sb.dedup();
    if sa.len() != sb.len() {
        return None;
    }
    if sa.is_empty() {
        return Some(0);
    }
    for &candidate in &sb {
        let v = sa[0] ^ candidate;
        if translated_set(&sa, v) == sb {
            return Some(v);
        }
    }
    None
}

/// Formats a label as the paper's tuple notation `(x_{w-1}, …, x_0)`.
///
/// ```
/// use min_labels::gf2::format_tuple;
/// assert_eq!(format_tuple(0b101, 3), "(1,0,1)");
/// ```
pub fn format_tuple(x: Label, width: Width) -> String {
    let mut parts = Vec::with_capacity(width);
    for k in (0..width).rev() {
        parts.push(if bit(x, k) == 1 { "1" } else { "0" });
    }
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_all_ones_below_width() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(5), 31);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn bit_extracts_individual_digits() {
        let x = 0b1011_0101;
        let digits: Vec<u64> = (0..8).map(|k| bit(x, k)).collect();
        assert_eq!(digits, vec![1, 0, 1, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn with_bit_sets_and_clears() {
        assert_eq!(with_bit(0b1000, 1, 1), 0b1010);
        assert_eq!(with_bit(0b1010, 3, 0), 0b0010);
        assert_eq!(with_bit(0b1010, 1, 1), 0b1010);
    }

    #[test]
    fn parity_matches_popcount_mod_two() {
        for x in 0..256u64 {
            assert_eq!(parity(x), u64::from(popcount(x) % 2));
        }
    }

    #[test]
    fn all_labels_enumerates_the_full_domain() {
        assert_eq!(all_labels(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(all_labels(3).count(), 8);
        assert_eq!(domain_size(10), 1024);
    }

    #[test]
    fn insert_and_remove_bit_round_trip() {
        for x in 0..64u64 {
            for pos in 0..=6usize {
                for v in 0..=1u64 {
                    let inserted = insert_bit(x, pos, v);
                    assert_eq!(bit(inserted, pos), v);
                    assert_eq!(remove_bit(inserted, pos), x);
                }
            }
        }
    }

    #[test]
    fn insert_bit_matches_paper_example() {
        // x = (x_2, x_1) = (1, 0); insert 1 at position 0 -> (1, 0, 1)
        assert_eq!(insert_bit(0b10, 0, 1), 0b101);
        // insert 0 at the top -> (0, 1, 0)
        assert_eq!(insert_bit(0b10, 2, 0), 0b010);
    }

    #[test]
    fn translated_set_is_an_involution() {
        let a = vec![0b000, 0b011, 0b101, 0b110];
        let t = translated_set(&a, 0b111);
        let back = translated_set(&t, 0b111);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(back, sorted);
    }

    #[test]
    fn translate_detection_finds_the_shift() {
        let a = vec![1, 2, 4];
        let b = translated_set(&a, 5);
        assert!(is_translate_of(&a, &b));
        assert_eq!(translation_vector(&a, &b), Some(5));
        // A set that happens to be globally symmetric under the shift is a
        // translate of itself by 0 as well; the detector may return either
        // witness, both of which are correct.
        let sym = vec![1u64, 2, 4, 7];
        let shifted = translated_set(&sym, 5);
        assert_eq!(shifted, sym, "this set is invariant under ⊕5");
        let v = translation_vector(&sym, &shifted).expect("must find some witness");
        assert_eq!(translated_set(&sym, v), shifted);
    }

    #[test]
    fn translate_detection_rejects_non_translates() {
        let a = vec![0, 1, 2, 3];
        let b = vec![0, 1, 2, 4];
        assert!(!is_translate_of(&a, &b));
        assert_eq!(translation_vector(&a, &b), None);
    }

    #[test]
    fn translate_detection_handles_subspace_with_many_self_maps() {
        // A subspace is a translate of itself by any of its own elements.
        let a = vec![0b00, 0b01, 0b10, 0b11];
        assert!(is_translate_of(&a, &a));
        assert_eq!(translation_vector(&a, &a), Some(0));
    }

    #[test]
    fn format_tuple_renders_paper_notation() {
        assert_eq!(format_tuple(0, 3), "(0,0,0)");
        assert_eq!(format_tuple(0b110, 3), "(1,1,0)");
        assert_eq!(format_tuple(0b1, 4), "(0,0,0,1)");
    }
}
