//! Arbitrary permutations of `2^w` symbols.
//!
//! The interconnection scheme between two stages of a MIN is classically
//! given as a permutation of the `N = 2^n` link labels (paper, §4 and
//! Fig. 4). [`Permutation`] is the table representation of such a
//! permutation, with the operations the rest of the workspace needs:
//! application, composition, inversion, random sampling, and — crucially —
//! **PIPID detection**: deciding whether a given table is induced by a
//! permutation of the index digits, and if so recovering θ.

use crate::gf2::{Label, Width};
use crate::index_perm::IndexPermutation;

/// A permutation of the labels `{0, …, 2^width - 1}` stored as a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    width: Width,
    /// `table[x] = π(x)`.
    table: Vec<Label>,
}

impl Permutation {
    /// The identity permutation on `2^width` symbols.
    pub fn identity(width: Width) -> Self {
        crate::check_width(width);
        Permutation {
            width,
            table: crate::all_labels(width).collect(),
        }
    }

    /// Builds a permutation from an explicit table; panics if the table is
    /// not a bijection of the right size.
    pub fn from_table(width: Width, table: Vec<Label>) -> Self {
        crate::check_width(width);
        let n = 1usize << width;
        assert_eq!(table.len(), n, "table must have 2^width = {n} entries");
        let mut seen = vec![false; n];
        for &y in &table {
            let y = y as usize;
            assert!(y < n, "image {y} out of range");
            assert!(!seen[y], "image {y} appears twice: not a bijection");
            seen[y] = true;
        }
        Permutation { width, table }
    }

    /// Builds a permutation from a closure; panics if the closure is not a
    /// bijection on the domain.
    pub fn from_fn<F: Fn(Label) -> Label>(width: Width, f: F) -> Self {
        let table = crate::all_labels(width).map(f).collect();
        Self::from_table(width, table)
    }

    /// Expands an index-digit permutation θ into its induced PIPID table.
    pub fn from_index_perm(theta: &IndexPermutation) -> Self {
        let width = theta.width();
        Permutation {
            width,
            table: crate::all_labels(width).map(|x| theta.apply(x)).collect(),
        }
    }

    /// Samples a uniformly random permutation (Fisher–Yates).
    pub fn random<R: rand::Rng>(width: Width, rng: &mut R) -> Self {
        crate::check_width(width);
        let mut table: Vec<Label> = crate::all_labels(width).collect();
        for i in (1..table.len()).rev() {
            let j = rng.gen_range(0..=i);
            table.swap(i, j);
        }
        Permutation { width, table }
    }

    /// Label width (the permutation acts on `2^width` symbols).
    pub fn width(&self) -> Width {
        self.width
    }

    /// Number of symbols, `2^width`.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` only for the (degenerate) width-0 permutation on one symbol.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw table.
    pub fn table(&self) -> &[Label] {
        &self.table
    }

    /// Applies the permutation.
    #[inline]
    pub fn apply(&self, x: Label) -> Label {
        self.table[x as usize]
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u64; self.table.len()];
        for (x, &y) in self.table.iter().enumerate() {
            inv[y as usize] = x as u64;
        }
        Permutation {
            width: self.width,
            table: inv,
        }
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.width, other.width, "widths must match");
        Permutation {
            width: self.width,
            table: other
                .table
                .iter()
                .map(|&y| self.table[y as usize])
                .collect(),
        }
    }

    /// `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.table.iter().enumerate().all(|(x, &y)| x as u64 == y)
    }

    /// Decides whether this permutation is a PIPID, i.e. induced by a digit
    /// permutation θ, and returns θ if so.
    ///
    /// The test interpolates θ from the images of the basis labels
    /// (`π(2^j)` must be a power of two and `π(0) = 0`) and then verifies
    /// the candidate against the full table, so it never returns a wrong θ.
    pub fn as_pipid(&self) -> Option<IndexPermutation> {
        if self.width == 0 {
            return Some(IndexPermutation::identity(0));
        }
        if self.apply(0) != 0 {
            return None;
        }
        // π(e_j) must be some e_i; then θ(i) = j.
        let mut theta_map = vec![usize::MAX; self.width];
        for j in 0..self.width {
            let img = self.apply(1u64 << j);
            if img.count_ones() != 1 {
                return None;
            }
            let i = img.trailing_zeros() as usize;
            if theta_map[i] != usize::MAX {
                return None;
            }
            theta_map[i] = j;
        }
        if theta_map.contains(&usize::MAX) {
            return None;
        }
        let theta = IndexPermutation::from_map(theta_map);
        // Verify on the whole table (a permutation can agree with a PIPID on
        // the basis yet differ elsewhere).
        for x in crate::all_labels(self.width) {
            if self.apply(x) != theta.apply(x) {
                return None;
            }
        }
        Some(theta)
    }

    /// `true` when the permutation is linear over GF(2) (fixes 0 and is
    /// additive). Every PIPID is linear, but not conversely.
    pub fn is_linear(&self) -> bool {
        if self.apply(0) != 0 {
            return false;
        }
        let lin = crate::linear::LinearMap::interpolate(self.width, self.width, |x| self.apply(x));
        lin.agrees_with(|x| self.apply(x))
    }

    /// Number of fixed points.
    pub fn fixed_points(&self) -> usize {
        self.table
            .iter()
            .enumerate()
            .filter(|&(x, &y)| x as u64 == y)
            .count()
    }

    /// Cycle type: the multiset of cycle lengths, sorted descending.
    pub fn cycle_type(&self) -> Vec<usize> {
        let n = self.table.len();
        let mut seen = vec![false; n];
        let mut lens = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                len += 1;
                cur = self.table[cur] as usize;
            }
            lens.push(len);
        }
        lens.sort_unstable_by(|a, b| b.cmp(a));
        lens
    }

    /// Applies the permutation to a whole slice of labels, producing the
    /// image multiset (used by routing admissibility analysis).
    pub fn apply_all(&self, labels: &[Label]) -> Vec<Label> {
        labels.iter().map(|&x| self.apply(x)).collect()
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (x, y) in self.table.iter().enumerate() {
            if x > 0 {
                write!(f, " ")?;
            }
            write!(f, "{x}→{y}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2::bit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_behaves() {
        let id = Permutation::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 16);
        assert_eq!(id.cycle_type(), vec![1; 16]);
        assert!(id.as_pipid().is_some());
    }

    #[test]
    fn from_table_rejects_non_bijections() {
        let r = std::panic::catch_unwind(|| Permutation::from_table(2, vec![0, 1, 1, 3]));
        assert!(r.is_err());
    }

    #[test]
    fn inverse_and_compose_are_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let p = Permutation::random(5, &mut rng);
        let q = Permutation::random(5, &mut rng);
        assert!(p.compose(&p.inverse()).is_identity());
        let pq = p.compose(&q);
        for x in crate::all_labels(5) {
            assert_eq!(pq.apply(x), p.apply(q.apply(x)));
        }
    }

    #[test]
    fn pipid_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        for _ in 0..20 {
            let theta = IndexPermutation::random(6, &mut rng);
            let p = Permutation::from_index_perm(&theta);
            let back = p.as_pipid().expect("a PIPID table must be detected");
            assert_eq!(back, theta);
        }
    }

    #[test]
    fn shuffle_table_is_pipid_and_linear() {
        let sigma = IndexPermutation::perfect_shuffle(5);
        let p = Permutation::from_index_perm(&sigma);
        assert!(p.is_linear());
        assert_eq!(p.as_pipid(), Some(sigma));
    }

    #[test]
    fn random_permutations_are_rarely_pipid() {
        // There are w! PIPIDs among (2^w)! permutations; for w = 4 a random
        // table is essentially never one — and the detector must say so.
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        let mut pipid_count = 0;
        for _ in 0..50 {
            if Permutation::random(4, &mut rng).as_pipid().is_some() {
                pipid_count += 1;
            }
        }
        assert!(pipid_count <= 1);
    }

    #[test]
    fn linear_but_not_pipid_is_classified_correctly() {
        // x -> M x for an invertible non-permutation-matrix M is linear yet
        // not a PIPID.
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let m = crate::linear::LinearMap::from_columns(3, 3, vec![0b011, 0b010, 0b100]);
        assert!(m.is_invertible());
        let p = Permutation::from_fn(3, |x| m.apply(x));
        assert!(p.is_linear());
        assert!(p.as_pipid().is_none());
        // and a random non-linear permutation is neither
        let q = Permutation::random(3, &mut rng);
        if !q.is_identity() && q.fixed_points() < 7 {
            // overwhelmingly likely non-linear; just exercise the call
            let _ = q.is_linear();
        }
    }

    #[test]
    fn pipid_detection_rejects_basis_coincidence() {
        // A permutation that maps basis vectors to basis vectors but is not
        // a PIPID globally (swap two non-basis entries of a PIPID table).
        let sigma = IndexPermutation::perfect_shuffle(3);
        let mut table: Vec<u64> = (0..8u64).map(|x| sigma.apply(x)).collect();
        table.swap(3, 5); // entries for labels 3 and 5 (both non-basis)
        let p = Permutation::from_table(3, table);
        assert!(p.as_pipid().is_none());
    }

    #[test]
    fn cycle_type_sums_to_domain_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(59);
        let p = Permutation::random(6, &mut rng);
        assert_eq!(p.cycle_type().iter().sum::<usize>(), 64);
    }

    #[test]
    fn bit_reversal_table_matches_manual_reversal() {
        let rho = IndexPermutation::bit_reversal(4);
        let p = Permutation::from_index_perm(&rho);
        for x in crate::all_labels(4) {
            let mut rev = 0u64;
            for k in 0..4 {
                rev |= bit(x, k) << (3 - k);
            }
            assert_eq!(p.apply(x), rev);
        }
    }

    #[test]
    fn apply_all_maps_every_entry() {
        let p = Permutation::from_fn(3, |x| x ^ 0b101);
        assert_eq!(p.apply_all(&[0, 1, 2]), vec![5, 4, 7]);
    }
}
