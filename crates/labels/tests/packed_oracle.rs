//! Scalar-vs-packed reference-oracle property tests.
//!
//! The bitset-packing refactor moved rank / kernel / solve / inverse /
//! composition onto the word-packed elimination kernels of
//! `min_labels::bitmat`; the pre-refactor digit-at-a-time implementations
//! are retained in `min_labels::scalar`. These proptests pin the two against
//! each other on random GF(2) matrices up to 16×16, so any semantic drift in
//! the packed kernels is caught against the historical behaviour.

use min_labels::{all_labels, mask, scalar, BitMatrix, Label, LinearMap, Subspace};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random column list for a `width_in → width_out` map.
fn random_columns(width_in: usize, width_out: usize, seed: u64) -> Vec<Label> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..width_in)
        .map(|_| rng.gen::<u64>() & mask(width_out))
        .collect()
}

fn xor_selected(rows: &[Label], combo: u64) -> Label {
    let mut acc = 0u64;
    let mut rest = combo;
    while rest != 0 {
        let i = rest.trailing_zeros() as usize;
        acc ^= rows[i];
        rest &= rest - 1;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Packed rank equals the historical insertion-sort rank.
    #[test]
    fn rank_agrees(w_in in 1usize..=16, w_out in 1usize..=16, seed in any::<u64>()) {
        let cols = random_columns(w_in, w_out, seed);
        let packed = BitMatrix::from_rows(w_out, cols.clone()).rank();
        prop_assert_eq!(packed, scalar::rank(w_out, &cols));
        prop_assert_eq!(packed, LinearMap::from_columns(w_in, w_out, cols).rank());
    }

    /// Packed row relations span the same kernel as the historical
    /// combination-tracking elimination, and every generator maps to zero.
    #[test]
    fn kernel_agrees(w_in in 1usize..=16, w_out in 1usize..=16, seed in any::<u64>()) {
        let cols = random_columns(w_in, w_out, seed);
        let packed = BitMatrix::from_rows(w_out, cols.clone()).row_relations();
        let reference = scalar::kernel(w_in, &cols);
        prop_assert_eq!(
            Subspace::from_generators(w_in, packed.iter().copied()),
            Subspace::from_generators(w_in, reference.iter().copied())
        );
        for &k in &packed {
            prop_assert_eq!(scalar::apply(&cols, k), 0);
        }
        let map = LinearMap::from_columns(w_in, w_out, cols);
        prop_assert_eq!(map.kernel().dim() + map.rank(), w_in);
    }

    /// Packed solving agrees with the historical elimination: same
    /// solvability verdict, and every returned solution actually solves.
    #[test]
    fn solve_agrees(w in 1usize..=16, seed in any::<u64>(), y_raw in any::<u64>()) {
        let cols = random_columns(w, w, seed);
        let y = y_raw & mask(w);
        let packed = BitMatrix::from_rows(w, cols.clone()).solve_combination(y);
        let reference = scalar::solve(w, &cols, y);
        prop_assert_eq!(packed.is_some(), reference.is_some());
        if let Some(x) = packed {
            prop_assert_eq!(scalar::apply(&cols, x), y);
        }
        if let Some(x) = reference {
            prop_assert_eq!(scalar::apply(&cols, x), y);
        }
        prop_assert_eq!(
            LinearMap::from_columns(w, w, cols).solve(y).is_some(),
            packed.is_some()
        );
    }

    /// Packed inversion agrees with the historical digit-at-a-time
    /// Gauss–Jordan, column for column.
    #[test]
    fn inverse_agrees(w in 1usize..=16, seed in any::<u64>()) {
        let cols = random_columns(w, w, seed);
        let packed = BitMatrix::from_rows(w, cols.clone()).combination_inverse();
        let reference = scalar::inverse(w, &cols);
        prop_assert_eq!(&packed, &reference);
        if let Some(inv) = packed {
            for (j, &combo) in inv.iter().enumerate() {
                prop_assert_eq!(xor_selected(&cols, combo), 1u64 << j);
            }
        }
    }

    /// Packed composition equals the historical per-column application.
    #[test]
    fn compose_agrees(
        w_in in 1usize..=16,
        w_mid in 1usize..=16,
        w_out in 1usize..=16,
        seed in any::<u64>(),
    ) {
        let outer_cols = random_columns(w_mid, w_out, seed);
        let inner_cols = random_columns(w_in, w_mid, seed.wrapping_add(1));
        let reference = scalar::compose(&outer_cols, &inner_cols);
        let outer = LinearMap::from_columns(w_mid, w_out, outer_cols);
        let inner = LinearMap::from_columns(w_in, w_mid, inner_cols);
        let composed = outer.compose(&inner);
        prop_assert_eq!(composed.columns(), reference.as_slice());
    }

    /// The Gray-code table equals the historical one-apply-per-entry table
    /// (checked at small widths where the full domain is cheap).
    #[test]
    fn table_agrees(w_in in 1usize..=10, w_out in 1usize..=16, seed in any::<u64>()) {
        let cols = random_columns(w_in, w_out, seed);
        let offset = seed & mask(w_out);
        let reference = scalar::table(w_in, &cols, offset);
        let map = LinearMap::from_columns(w_in, w_out, cols);
        let packed: Vec<Label> = map.table().iter().map(|&v| v ^ offset).collect();
        prop_assert_eq!(packed, reference);
        for x in all_labels(w_in) {
            prop_assert_eq!(map.table()[x as usize], map.apply(x));
        }
    }
}
