//! Random network generators.
//!
//! Three families, matching the three roles random instances play in the
//! test suite and the benchmarks:
//!
//! * [`random_pipid_network`] — every stage is a uniformly random
//!   *non-degenerate* PIPID: these are the networks covered by the paper's
//!   main corollary, and (once Banyan) must all be Baseline-equivalent;
//! * [`random_independent_banyan`] — every stage is a random *proper
//!   independent connection* (the wider class of Theorem 3), with rejection
//!   sampling until the assembled digraph is Banyan;
//! * [`random_link_permutation_network`] — every stage is an arbitrary link
//!   permutation: the negative control, essentially never
//!   Baseline-equivalent.

use min_core::affine_form::random_proper_independent_connection;
use min_core::pipid::connection_from_pipid;
use min_core::{Connection, ConnectionNetwork};
use min_graph::paths::is_banyan;
use min_labels::{IndexPermutation, Permutation};
use rand::Rng;

/// Samples a random non-degenerate PIPID digit permutation on `n` link
/// digits (i.e. θ with θ(0) ≠ 0, so the induced stage has no parallel
/// links).
pub fn random_nondegenerate_theta<R: Rng>(n: usize, rng: &mut R) -> IndexPermutation {
    assert!(n >= 2, "need at least two link digits");
    loop {
        let theta = IndexPermutation::random(n, rng);
        if theta.theta_inv(0) != 0 {
            return theta;
        }
    }
}

/// A random `n`-stage network whose every stage is a non-degenerate PIPID.
pub fn random_pipid_network<R: Rng>(n: usize, rng: &mut R) -> ConnectionNetwork {
    assert!(n >= 2);
    let connections = (0..n - 1)
        .map(|_| connection_from_pipid(&random_nondegenerate_theta(n, rng)).connection)
        .collect();
    ConnectionNetwork::new(n - 1, connections)
}

/// A random `n`-stage network whose every stage is a proper independent
/// connection, resampled until the network is Banyan (up to `max_attempts`
/// attempts; `None` if the budget is exhausted).
pub fn random_independent_banyan<R: Rng>(
    n: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Option<ConnectionNetwork> {
    assert!(n >= 2);
    let width = n - 1;
    for _ in 0..max_attempts {
        let connections: Vec<Connection> = (0..n - 1)
            .map(|_| random_proper_independent_connection(width, rng.gen(), rng))
            .collect();
        let net = ConnectionNetwork::new(width, connections);
        if is_banyan(&net.to_digraph()) {
            return Some(net);
        }
    }
    None
}

/// A random `n`-stage network whose every stage is an arbitrary (uniform)
/// permutation of the link labels.
pub fn random_link_permutation_network<R: Rng>(n: usize, rng: &mut R) -> ConnectionNetwork {
    assert!(n >= 2);
    let connections = (0..n - 1)
        .map(|_| Connection::from_link_permutation(&Permutation::random(n, rng)))
        .collect();
    ConnectionNetwork::new(n - 1, connections)
}

/// A random `n`-stage "paired" network: every stage pairs the source cells
/// two by two and sends each pair onto a target pair (both sources to both
/// targets).
///
/// Such stages automatically satisfy Agrawal's buddy property in both
/// directions; they are the search space in which the buddy-but-not-
/// equivalent counterexamples of reference \[10\] live (see
/// [`crate::counterexample`]).
pub fn random_buddy_network<R: Rng>(n: usize, rng: &mut R) -> ConnectionNetwork {
    assert!(n >= 2);
    let width = n - 1;
    let cells = 1usize << width;
    assert!(cells >= 2);
    let connections = (0..n - 1)
        .map(|_| {
            // Random pairing of sources and of targets, plus a random
            // bijection between source-pairs and target-pairs.
            let mut sources: Vec<u32> = (0..cells as u32).collect();
            let mut targets: Vec<u32> = (0..cells as u32).collect();
            shuffle(&mut sources, rng);
            shuffle(&mut targets, rng);
            let mut f = vec![0u32; cells];
            let mut g = vec![0u32; cells];
            for pair in 0..cells / 2 {
                let (s0, s1) = (sources[2 * pair], sources[2 * pair + 1]);
                let (t0, t1) = (targets[2 * pair], targets[2 * pair + 1]);
                f[s0 as usize] = t0;
                g[s0 as usize] = t1;
                f[s1 as usize] = t0;
                g[s1 as usize] = t1;
            }
            Connection::from_tables(width, f, g)
        })
        .collect();
    ConnectionNetwork::new(width, connections)
}

fn shuffle<R: Rng>(v: &mut [u32], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_core::buddy::{buddy_property, reverse_buddy_property};
    use min_core::independence::is_independent;
    use min_core::properties::satisfies_characterization;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_pipid_networks_are_proper_and_independent() {
        let mut rng = ChaCha8Rng::seed_from_u64(149);
        for _ in 0..10 {
            let net = random_pipid_network(4, &mut rng);
            assert!(net.is_proper());
            assert!(!net.has_parallel_links());
            for conn in net.connections() {
                assert!(is_independent(conn));
            }
        }
    }

    #[test]
    fn banyan_pipid_networks_satisfy_the_characterization() {
        // The paper's main corollary, on random instances: any *Banyan*
        // network built from non-degenerate PIPIDs is Baseline-equivalent.
        let mut rng = ChaCha8Rng::seed_from_u64(151);
        let mut banyan_count = 0;
        for _ in 0..40 {
            let net = random_pipid_network(4, &mut rng);
            let g = net.to_digraph();
            if is_banyan(&g) {
                banyan_count += 1;
                assert!(satisfies_characterization(&g));
            }
        }
        assert!(banyan_count >= 1, "expected at least one Banyan sample");
    }

    #[test]
    fn random_independent_banyan_networks_are_banyan() {
        let mut rng = ChaCha8Rng::seed_from_u64(157);
        let net = random_independent_banyan(4, 200, &mut rng).expect("found within budget");
        assert!(is_banyan(&net.to_digraph()));
        for conn in net.connections() {
            assert!(is_independent(conn));
        }
        // ... and therefore Baseline-equivalent (Theorem 3).
        assert!(satisfies_characterization(&net.to_digraph()));
    }

    #[test]
    fn random_link_permutation_networks_are_proper_but_rarely_equivalent() {
        let mut rng = ChaCha8Rng::seed_from_u64(163);
        let mut equivalent = 0;
        for _ in 0..15 {
            let net = random_link_permutation_network(4, &mut rng);
            assert!(net.is_proper());
            if satisfies_characterization(&net.to_digraph()) {
                equivalent += 1;
            }
        }
        assert!(equivalent <= 2);
    }

    #[test]
    fn random_buddy_networks_satisfy_both_buddy_properties() {
        let mut rng = ChaCha8Rng::seed_from_u64(167);
        for _ in 0..10 {
            let net = random_buddy_network(4, &mut rng);
            assert!(net.is_proper());
            let g = net.to_digraph();
            assert!(buddy_property(&g).holds);
            assert!(reverse_buddy_property(&g).holds);
        }
    }

    #[test]
    fn nondegenerate_theta_sampler_respects_the_constraint() {
        let mut rng = ChaCha8Rng::seed_from_u64(173);
        for _ in 0..50 {
            let theta = random_nondegenerate_theta(5, &mut rng);
            assert_ne!(theta.theta_inv(0), 0);
        }
    }
}
