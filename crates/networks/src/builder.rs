//! Generic network construction.
//!
//! The classical networks are all "one PIPID per stage", but users of the
//! library (and the random generators and counterexample searches) need the
//! general forms the paper discusses: arbitrary link permutations (Fig. 4),
//! raw `(f,g)` connections (§3), and mixtures. [`NetworkBuilder`] assembles
//! a [`ConnectionNetwork`] from any of these, stage by stage, and can report
//! the §4 diagnostics (which stages are PIPID, which are degenerate).

use min_core::pipid::connection_from_pipid;
use min_core::{Connection, ConnectionNetwork};
use min_labels::{IndexPermutation, Permutation, Width};

/// Incremental builder for a [`ConnectionNetwork`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    width: Width,
    connections: Vec<Connection>,
    pipid_stages: Vec<Option<IndexPermutation>>,
}

impl NetworkBuilder {
    /// Starts a builder for networks with `width`-bit cell labels
    /// (`2^width` cells per stage, `2^{width+1}` terminals).
    pub fn new(width: Width) -> Self {
        min_labels::check_width(width);
        NetworkBuilder {
            width,
            connections: Vec::new(),
            pipid_stages: Vec::new(),
        }
    }

    /// Cell-label width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Number of stages the built network will have.
    pub fn stages(&self) -> usize {
        self.connections.len() + 1
    }

    /// Appends a stage given directly as a connection.
    pub fn push_connection(mut self, conn: Connection) -> Self {
        assert_eq!(conn.width(), self.width, "connection width mismatch");
        self.connections.push(conn);
        self.pipid_stages.push(None);
        self
    }

    /// Appends a stage given as a permutation of the `2^{width+1}` link
    /// labels (the classical drawing of Fig. 4).
    pub fn push_link_permutation(mut self, perm: &Permutation) -> Self {
        assert_eq!(
            perm.width(),
            self.width + 1,
            "link labels have width+1 digits"
        );
        self.connections
            .push(Connection::from_link_permutation(perm));
        self.pipid_stages.push(perm.as_pipid());
        self
    }

    /// Appends a stage given as a PIPID digit permutation θ (§4).
    pub fn push_pipid(mut self, theta: &IndexPermutation) -> Self {
        assert_eq!(
            theta.width(),
            self.width + 1,
            "link labels have width+1 digits"
        );
        let stage = connection_from_pipid(theta);
        self.connections.push(stage.connection);
        self.pipid_stages.push(Some(theta.clone()));
        self
    }

    /// For each pushed stage, the digit permutation if the stage is known to
    /// be a PIPID (`None` for raw connections and non-PIPID link
    /// permutations).
    pub fn pipid_stages(&self) -> &[Option<IndexPermutation>] {
        &self.pipid_stages
    }

    /// `true` when every pushed stage is a PIPID with non-zero critical
    /// digit — the hypothesis of the paper's main corollary.
    pub fn all_stages_nondegenerate_pipid(&self) -> bool {
        self.pipid_stages
            .iter()
            .all(|t| t.as_ref().is_some_and(|theta| theta.theta_inv(0) != 0))
    }

    /// Finishes the builder.
    ///
    /// Panics when no stage has been pushed (a network needs ≥ 2 stages).
    pub fn build(self) -> ConnectionNetwork {
        assert!(
            !self.connections.is_empty(),
            "push at least one inter-stage connection before building"
        );
        ConnectionNetwork::new(self.width, self.connections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical;
    use min_graph::paths::is_banyan;

    #[test]
    fn building_omega_by_hand_matches_the_catalog() {
        let n = 4;
        let theta = IndexPermutation::perfect_shuffle(n);
        let mut b = NetworkBuilder::new(n - 1);
        for _ in 0..n - 1 {
            b = b.push_pipid(&theta);
        }
        assert!(b.all_stages_nondegenerate_pipid());
        assert_eq!(b.stages(), n);
        let net = b.build();
        assert_eq!(net, classical::omega(n));
    }

    #[test]
    fn link_permutation_stages_detect_pipidness() {
        let n = 3;
        let theta = IndexPermutation::bit_reversal(n);
        let perm = Permutation::from_index_perm(&theta);
        let b = NetworkBuilder::new(n - 1)
            .push_link_permutation(&perm)
            .push_link_permutation(&Permutation::from_fn(n, |x| x ^ 0b011));
        let stages = b.pipid_stages();
        assert_eq!(stages[0].as_ref(), Some(&theta));
        assert!(stages[1].is_none(), "an XOR mask is not a PIPID");
        assert!(!b.all_stages_nondegenerate_pipid());
        let net = b.build();
        assert_eq!(net.stages(), 3);
    }

    #[test]
    fn raw_connection_stages_are_accepted() {
        let conn = Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 2);
        let net = NetworkBuilder::new(2)
            .push_connection(conn.clone())
            .push_connection(Connection::from_fn(2, |x| x & 2, |x| (x & 2) | 1))
            .build();
        assert!(is_banyan(&net.to_digraph()));
        assert_eq!(net.connection(0), &conn);
    }

    #[test]
    fn degenerate_pipid_is_flagged() {
        let theta = IndexPermutation::transposition(3, 1, 2); // fixes digit 0
        let b = NetworkBuilder::new(2).push_pipid(&theta);
        assert!(!b.all_stages_nondegenerate_pipid());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_is_rejected() {
        let conn = Connection::from_fn(3, |x| x, |x| x ^ 1);
        let _ = NetworkBuilder::new(2).push_connection(conn);
    }

    #[test]
    #[should_panic(expected = "push at least one")]
    fn empty_builder_cannot_build() {
        let _ = NetworkBuilder::new(2).build();
    }
}
