//! Faulty-cell and faulty-link variants of the catalog networks.
//!
//! The stability literature anchored by the paper's networks (3-disjoint-path
//! Omega MINs, wormhole fabrics under switch failures) studies topologies
//! *after* a component dies. This module provides those damaged objects as
//! first-class values so the analysis layers can be pointed at them:
//!
//! * [`dead_link_digraph`] / [`dead_switch_digraph`] — the MI-digraph of a
//!   network with one arc, or one whole switch, removed (feeds
//!   `min_graph::paths`: the Banyan property breaks with a `NoPath`
//!   witness);
//! * [`stuck_cell`] — a *connection network* whose cell is jammed in one
//!   state: both out-ports collapse onto the same target, producing the
//!   parallel-link redundancy the disjoint-path machinery of `min-routing`
//!   falls back across;
//! * [`link_sites`] — the canonical enumeration of every link of a network,
//!   the site list fault-injection sweeps draw from;
//! * catalog conveniences [`ClassicalNetwork::with_dead_link`] and
//!   [`ClassicalNetwork::with_stuck_cell`].

use crate::catalog::ClassicalNetwork;
use min_core::{Connection, ConnectionNetwork};
use min_graph::MiDigraph;

/// Every link site of the network, in canonical order: stage-major, then
/// cell, then port (0 = `f`, 1 = `g`). A link site is the arc leaving
/// `cell` through `port` of connection `stage`.
pub fn link_sites(net: &ConnectionNetwork) -> Vec<(usize, u32, u8)> {
    let cells = net.cells_per_stage() as u32;
    (0..net.stages() - 1)
        .flat_map(|stage| {
            (0..cells).flat_map(move |cell| (0..2u8).map(move |port| (stage, cell, port)))
        })
        .collect()
}

/// The MI-digraph of `net` with the single arc at `(stage, cell, port)`
/// removed — a dead link.
///
/// The result is no longer 2-out-regular at the damaged cell, which is the
/// point: path analysis (`min_graph::paths`) reports the pairs the dead
/// link severs as `NoPath` Banyan violations.
///
/// # Panics
///
/// Panics when the site is out of range (`stage` must index a connection,
/// `cell` a cell, `port` one of the two out-ports).
pub fn dead_link_digraph(net: &ConnectionNetwork, stage: usize, cell: u32, port: u8) -> MiDigraph {
    let cells = net.cells_per_stage();
    assert!(stage + 1 < net.stages(), "link stage {stage} out of range");
    assert!((cell as usize) < cells, "cell {cell} out of range");
    assert!(port < 2, "port {port} out of range");
    build_digraph_except(
        net,
        |s, v, p| (s, v, p) == (stage, cell, port),
        |_, _| false,
    )
}

/// The MI-digraph of `net` with the switch at `(stage, cell)` removed: every
/// arc into and out of the dead switch is dropped.
///
/// # Panics
///
/// Panics when the site is out of range.
pub fn dead_switch_digraph(net: &ConnectionNetwork, stage: usize, cell: u32) -> MiDigraph {
    let cells = net.cells_per_stage();
    assert!(stage < net.stages(), "switch stage {stage} out of range");
    assert!((cell as usize) < cells, "cell {cell} out of range");
    build_digraph_except(net, |_, _, _| false, |s, v| (s, v) == (stage, cell))
}

/// Builds the network's digraph, skipping arcs selected by `drop_link` and
/// arcs touching switches selected by `drop_cell`.
fn build_digraph_except(
    net: &ConnectionNetwork,
    drop_link: impl Fn(usize, u32, u8) -> bool,
    drop_cell: impl Fn(usize, u32) -> bool,
) -> MiDigraph {
    let cells = net.cells_per_stage();
    let mut g = MiDigraph::new(net.stages(), cells);
    for s in 0..net.stages() - 1 {
        let conn = net.connection(s);
        for v in 0..cells as u32 {
            if drop_cell(s, v) {
                continue;
            }
            for port in 0..2u8 {
                if drop_link(s, v, port) {
                    continue;
                }
                let to = if port == 0 {
                    conn.f(u64::from(v))
                } else {
                    conn.g(u64::from(v))
                } as u32;
                if drop_cell(s + 1, to) {
                    continue;
                }
                g.add_arc(s, v, to);
            }
        }
    }
    g
}

/// A copy of `net` whose cell at `(stage, cell)` is stuck in one switching
/// state: both out-ports are jammed onto the target normally reached through
/// `port`, creating a pair of parallel links there.
///
/// The damaged network stays 2-out-regular (so it remains a
/// [`ConnectionNetwork`]), but it is no longer proper — the bypassed target
/// loses an in-arc — and some pairs gain a second, link-disjoint path
/// through the parallel arcs while others lose their only one. This is the
/// canonical object for exercising `min-routing`'s disjoint-path fallback.
///
/// # Panics
///
/// Panics when the site is out of range.
pub fn stuck_cell(net: &ConnectionNetwork, stage: usize, cell: u32, port: u8) -> ConnectionNetwork {
    let cells = net.cells_per_stage();
    assert!(stage + 1 < net.stages(), "link stage {stage} out of range");
    assert!((cell as usize) < cells, "cell {cell} out of range");
    assert!(port < 2, "port {port} out of range");
    let connections = net
        .connections()
        .iter()
        .enumerate()
        .map(|(s, conn)| {
            if s != stage {
                return conn.clone();
            }
            let jammed = if port == 0 {
                conn.f(u64::from(cell))
            } else {
                conn.g(u64::from(cell))
            } as u32;
            let mut f = conn.f_table().to_vec();
            let mut g = conn.g_table().to_vec();
            f[cell as usize] = jammed;
            g[cell as usize] = jammed;
            Connection::from_tables(net.width(), f, g)
        })
        .collect();
    ConnectionNetwork::new(net.width(), connections)
}

impl ClassicalNetwork {
    /// The `n`-stage instance with the link at `(stage, cell, port)` dead,
    /// as an MI-digraph (see [`dead_link_digraph`]).
    pub fn with_dead_link(self, n: usize, stage: usize, cell: u32, port: u8) -> MiDigraph {
        dead_link_digraph(&self.build(n), stage, cell, port)
    }

    /// The `n`-stage instance with the cell at `(stage, cell)` stuck on the
    /// `port` target (see [`stuck_cell`]).
    pub fn with_stuck_cell(self, n: usize, stage: usize, cell: u32, port: u8) -> ConnectionNetwork {
        stuck_cell(&self.build(n), stage, cell, port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_graph::paths::{banyan_violation, is_banyan, path_counts_from, BanyanViolation};

    #[test]
    fn link_sites_enumerate_every_arc_once() {
        let net = ClassicalNetwork::Omega.build(4);
        let sites = link_sites(&net);
        assert_eq!(sites.len(), (net.stages() - 1) * net.cells_per_stage() * 2);
        assert_eq!(sites[0], (0, 0, 0));
        assert_eq!(sites[1], (0, 0, 1));
        let unique: std::collections::HashSet<_> = sites.iter().collect();
        assert_eq!(unique.len(), sites.len());
    }

    #[test]
    fn a_dead_link_breaks_the_banyan_property_with_a_no_path_witness() {
        for kind in ClassicalNetwork::ALL {
            let healthy = kind.build(4).to_digraph();
            assert!(is_banyan(&healthy), "{kind}");
            let damaged = kind.with_dead_link(4, 1, 0, 1);
            assert_eq!(damaged.arc_count(), healthy.arc_count() - 1);
            match banyan_violation(&damaged) {
                Some(BanyanViolation::NoPath(_, _)) => {}
                other => panic!("{kind}: expected NoPath, got {other:?}"),
            }
        }
    }

    #[test]
    fn a_dead_switch_removes_all_its_arcs() {
        let net = ClassicalNetwork::Baseline.build(4);
        let healthy = net.to_digraph();
        let damaged = dead_switch_digraph(&net, 1, 3);
        // An interior switch of a proper fabric has 2 in-arcs and 2 out-arcs.
        assert_eq!(damaged.arc_count(), healthy.arc_count() - 4);
        assert!(damaged.children(1, 3).is_empty());
        assert!(damaged.parents(1, 3).is_empty());
        assert!(!is_banyan(&damaged));
    }

    #[test]
    fn a_stuck_cell_creates_parallel_links_and_multipath_redundancy() {
        let net = ClassicalNetwork::Omega.build(3);
        let jammed = stuck_cell(&net, 0, 0, 0);
        assert!(jammed.connection(0).has_parallel_links());
        assert!(!jammed.is_proper(), "the bypassed target lost an in-arc");
        // Paths through the jammed cell double; paths through the bypassed
        // target vanish.
        let counts = path_counts_from(&jammed.to_digraph(), 0);
        assert!(counts.iter().any(|&c| c >= 2), "parallel-arc multipath");
        assert!(counts.contains(&0), "severed pairs");
        // The other stages are untouched.
        assert_eq!(jammed.connection(1), net.connection(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sites_panic() {
        let net = ClassicalNetwork::Omega.build(3);
        let _ = dead_link_digraph(&net, 9, 0, 0);
    }
}
