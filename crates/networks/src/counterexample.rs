//! Networks that delimit the theory.
//!
//! The paper is careful about what its characterization does *not* say:
//!
//! * a PIPID stage with critical digit `k = θ⁻¹(0) = 0` produces parallel
//!   links and destroys the Banyan property (Fig. 5) — [`fig5_network`];
//! * the Banyan property alone does not imply Baseline equivalence —
//!   [`find_banyan_not_equivalent`] searches for (and
//!   [`banyan_not_baseline_equivalent`] deterministically produces) Banyan
//!   networks that fail `P(1,*)`/`P(*,n)`;
//! * Agrawal's buddy property, even together with the Banyan property, does
//!   not imply Baseline equivalence (the point of reference \[10\]) —
//!   [`find_buddy_not_equivalent`] / [`buddy_not_baseline_equivalent`].

use crate::random::{random_buddy_network, random_link_permutation_network};
use min_core::buddy::{buddy_property, reverse_buddy_property};
use min_core::pipid::connection_from_pipid;
use min_core::properties::satisfies_characterization;
use min_core::ConnectionNetwork;
use min_graph::paths::is_banyan;
use min_labels::IndexPermutation;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An `n`-stage network whose **last** stage is a degenerate PIPID stage
/// (θ fixes digit 0, so each cell sends both links to the same child): the
/// situation of Fig. 5. The earlier stages are ordinary Omega stages.
///
/// The resulting digraph is 2-in/2-out regular yet not Banyan.
pub fn fig5_network(n: usize) -> ConnectionNetwork {
    assert!(n >= 2);
    let shuffle = IndexPermutation::perfect_shuffle(n);
    let mut degenerate_theta = IndexPermutation::identity(n);
    if n >= 3 {
        degenerate_theta = IndexPermutation::transposition(n, 1, n - 1);
    }
    debug_assert_eq!(degenerate_theta.theta_inv(0), 0);
    let mut connections = Vec::with_capacity(n - 1);
    for _ in 0..n - 2 {
        connections.push(connection_from_pipid(&shuffle).connection);
    }
    connections.push(connection_from_pipid(&degenerate_theta).connection);
    ConnectionNetwork::new(n - 1, connections)
}

/// Searches for an `n`-stage network that is Banyan but **not**
/// Baseline-equivalent, by sampling networks whose stages are arbitrary link
/// permutations. Returns `None` if no instance is found within
/// `max_attempts`.
pub fn find_banyan_not_equivalent<R: Rng>(
    n: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Option<ConnectionNetwork> {
    for _ in 0..max_attempts {
        let net = random_link_permutation_network(n, rng);
        let g = net.to_digraph();
        if is_banyan(&g) && !satisfies_characterization(&g) {
            return Some(net);
        }
    }
    None
}

/// Searches for an `n`-stage network that is Banyan, satisfies Agrawal's
/// buddy property in both directions, and is **not** Baseline-equivalent
/// (the class of counterexamples exhibited by reference \[10\]).
pub fn find_buddy_not_equivalent<R: Rng>(
    n: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Option<ConnectionNetwork> {
    for _ in 0..max_attempts {
        let net = random_buddy_network(n, rng);
        let g = net.to_digraph();
        if !is_banyan(&g) {
            continue;
        }
        debug_assert!(buddy_property(&g).holds && reverse_buddy_property(&g).holds);
        if !satisfies_characterization(&g) {
            return Some(net);
        }
    }
    None
}

/// A deterministic 3-stage (N = 8) Banyan network that is **not**
/// Baseline-equivalent.
///
/// Construction: the first stage chains the four cells into a single
/// 8-cycle (`x → {x, x+1 mod 4}`), so the prefix `(G)_{1,2}` has one
/// connected component instead of the two demanded by `P(1,2)`; the second
/// stage (`x → {2(x mod 2), 2(x mod 2)+1}`) is chosen so that the two
/// children of every first-stage cell still reach complementary halves of
/// the outputs, which keeps the unique-path (Banyan) property intact.
pub fn banyan_not_baseline_equivalent() -> ConnectionNetwork {
    let c0 = min_core::Connection::from_fn(2, |x| x, |x| (x + 1) & 0b11);
    let c1 = min_core::Connection::from_fn(2, |x| 2 * (x & 1), |x| 2 * (x & 1) + 1);
    ConnectionNetwork::new(2, vec![c0, c1])
}

/// A deterministic 4-stage (N = 16) network that is Banyan, satisfies the
/// buddy property in both directions, and is not Baseline-equivalent —
/// demonstrating, as reference \[10\] did, that Agrawal's buddy
/// characterization is insufficient.
pub fn buddy_not_baseline_equivalent() -> ConnectionNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0A67_A3A1);
    find_buddy_not_equivalent(4, 20_000, &mut rng)
        .expect("the seeded search is deterministic and known to succeed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_core::baseline_iso::{baseline_digraph, baseline_isomorphism};
    use min_graph::iso::find_isomorphism;

    #[test]
    fn fig5_networks_have_parallel_links_and_are_not_banyan() {
        for n in 2..=5 {
            let net = fig5_network(n);
            assert!(net.is_proper(), "degrees are still regular");
            assert!(net.has_parallel_links());
            assert!(!is_banyan(&net.to_digraph()), "n={n}");
            assert!(!satisfies_characterization(&net.to_digraph()));
        }
    }

    #[test]
    fn banyan_counterexample_is_banyan_but_not_equivalent() {
        let net = banyan_not_baseline_equivalent();
        let g = net.to_digraph();
        assert!(is_banyan(&g));
        assert!(!satisfies_characterization(&g));
        assert!(baseline_isomorphism(&g).is_err());
    }

    #[test]
    fn banyan_counterexample_is_confirmed_by_exhaustive_search() {
        // The constructive algorithm's rejection is corroborated by the
        // exact (backtracking) isomorphism search against the Baseline.
        let net = banyan_not_baseline_equivalent();
        let g = net.to_digraph();
        let outcome = find_isomorphism(&g, &baseline_digraph(3), 50_000_000);
        assert_eq!(outcome, min_graph::iso::IsoSearchOutcome::NotIsomorphic);
    }

    #[test]
    fn buddy_counterexample_defeats_agrawals_characterization() {
        let net = buddy_not_baseline_equivalent();
        let g = net.to_digraph();
        assert!(is_banyan(&g));
        assert!(buddy_property(&g).holds);
        assert!(reverse_buddy_property(&g).holds);
        assert!(!satisfies_characterization(&g));
        assert!(baseline_isomorphism(&g).is_err());
    }

    #[test]
    fn searches_do_not_return_false_positives() {
        let mut rng = ChaCha8Rng::seed_from_u64(7919);
        if let Some(net) = find_banyan_not_equivalent(3, 300, &mut rng) {
            let g = net.to_digraph();
            assert!(is_banyan(&g));
            assert!(!satisfies_characterization(&g));
        }
        if let Some(net) = find_buddy_not_equivalent(4, 2_000, &mut rng) {
            let g = net.to_digraph();
            assert!(is_banyan(&g));
            assert!(buddy_property(&g).holds);
            assert!(!satisfies_characterization(&g));
        }
    }
}
