//! The six classical networks of Wu & Feng, as PIPID stage sequences.
//!
//! Every constructor returns both the network and is accompanied by a
//! `*_thetas` function exposing the digit permutations used, so that tests
//! and documentation can point at the exact PIPID sequence. The stage
//! conventions follow the standard drawings:
//!
//! | network | inter-stage permutation `s → s+1` (0-based `s`) | reference |
//! |---------|--------------------------------------------------|-----------|
//! | Omega | perfect shuffle σ on all `n` digits | Lawrie 1975 |
//! | Flip | inverse shuffle σ⁻¹ on all `n` digits | Batcher 1976 |
//! | Baseline | inverse shuffle on the `n-s` low digits | Wu & Feng 1980 |
//! | Reverse Baseline | shuffle on the `s+2` low digits | Wu & Feng 1980 |
//! | Indirect binary n-cube | butterfly β_{s+1} | Pease 1977 |
//! | Modified data manipulator | butterfly β_{n-1-s} | Feng 1974 |
//!
//! All six are Banyan networks built from non-degenerate PIPID stages, so by
//! the paper's Theorem 3 they are pairwise topologically equivalent — the
//! integration tests and `examples/equivalence_catalog.rs` verify this with
//! explicit certificates.

use min_core::pipid::connection_from_pipid;
use min_core::ConnectionNetwork;
use min_labels::IndexPermutation;

/// Builds a network from one digit permutation per inter-stage link.
fn from_thetas(n: usize, thetas: &[IndexPermutation]) -> ConnectionNetwork {
    assert!(n >= 2, "a multistage network needs at least two stages");
    assert_eq!(
        thetas.len(),
        n - 1,
        "an n-stage network has n-1 connections"
    );
    let connections = thetas
        .iter()
        .map(|t| {
            assert_eq!(t.width(), n, "link labels have n digits");
            connection_from_pipid(t).connection
        })
        .collect();
    ConnectionNetwork::new(n - 1, connections)
}

/// Digit permutations of the `n`-stage Omega network: `n-1` perfect shuffles.
pub fn omega_thetas(n: usize) -> Vec<IndexPermutation> {
    vec![IndexPermutation::perfect_shuffle(n); n - 1]
}

/// The Omega network (Lawrie): every inter-stage connection is the perfect
/// shuffle.
pub fn omega(n: usize) -> ConnectionNetwork {
    from_thetas(n, &omega_thetas(n))
}

/// Digit permutations of the Flip network: `n-1` inverse shuffles.
pub fn flip_thetas(n: usize) -> Vec<IndexPermutation> {
    vec![IndexPermutation::inverse_shuffle(n); n - 1]
}

/// The Flip network (Batcher's STARAN flip): every inter-stage connection is
/// the inverse perfect shuffle.
pub fn flip(n: usize) -> ConnectionNetwork {
    from_thetas(n, &flip_thetas(n))
}

/// Digit permutations of the Baseline network: stage `s` uses the inverse
/// shuffle restricted to the `n-s` low-order digits.
pub fn baseline_thetas(n: usize) -> Vec<IndexPermutation> {
    (0..n - 1)
        .map(|s| IndexPermutation::sub_inverse_shuffle(n, n - s))
        .collect()
}

/// The Baseline network (Wu & Feng), built from its PIPID stages.
///
/// The result coincides (as a digraph, node for node) with the canonical
/// left-recursive construction [`min_core::baseline_digraph`]; the test
/// suite asserts the two agree exactly.
pub fn baseline(n: usize) -> ConnectionNetwork {
    from_thetas(n, &baseline_thetas(n))
}

/// Digit permutations of the Reverse Baseline network: stage `s` uses the
/// perfect shuffle restricted to the `s+2` low-order digits.
pub fn reverse_baseline_thetas(n: usize) -> Vec<IndexPermutation> {
    (0..n - 1)
        .map(|s| IndexPermutation::sub_shuffle(n, s + 2))
        .collect()
}

/// The Reverse Baseline network: the Baseline drawn right-to-left.
///
/// Its digraph equals the reverse digraph of [`baseline`]; the test suite
/// asserts this.
pub fn reverse_baseline(n: usize) -> ConnectionNetwork {
    from_thetas(n, &reverse_baseline_thetas(n))
}

/// Digit permutations of the Indirect Binary n-Cube: stage `s` uses the
/// butterfly β_{s+1} (exchange link digits `s+1` and `0`).
pub fn indirect_binary_cube_thetas(n: usize) -> Vec<IndexPermutation> {
    (0..n - 1)
        .map(|s| IndexPermutation::butterfly(n, s + 1))
        .collect()
}

/// The Indirect Binary n-Cube (Pease): stage `s` lets a cell choose the
/// value of destination bit `s`.
pub fn indirect_binary_cube(n: usize) -> ConnectionNetwork {
    from_thetas(n, &indirect_binary_cube_thetas(n))
}

/// Digit permutations of the Modified Data Manipulator: stage `s` uses the
/// butterfly β_{n-1-s} (the cube stages in the reverse order).
pub fn modified_data_manipulator_thetas(n: usize) -> Vec<IndexPermutation> {
    (0..n - 1)
        .map(|s| IndexPermutation::butterfly(n, n - 1 - s))
        .collect()
}

/// The Modified Data Manipulator (Feng's data-manipulator family member used
/// by Wu & Feng): destination bits are resolved from the most significant
/// down.
pub fn modified_data_manipulator(n: usize) -> ConnectionNetwork {
    from_thetas(n, &modified_data_manipulator_thetas(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_core::baseline_iso::baseline_digraph;
    use min_core::independence::is_independent;
    use min_core::properties::satisfies_characterization;
    use min_graph::paths::is_banyan;

    const SIZES: std::ops::RangeInclusive<usize> = 2..=6;

    #[test]
    fn all_six_networks_have_the_right_shape() {
        for n in SIZES {
            for net in [
                omega(n),
                flip(n),
                baseline(n),
                reverse_baseline(n),
                indirect_binary_cube(n),
                modified_data_manipulator(n),
            ] {
                assert_eq!(net.stages(), n);
                assert_eq!(net.cells_per_stage(), 1 << (n - 1));
                assert!(net.is_proper());
                assert!(!net.has_parallel_links());
            }
        }
    }

    #[test]
    fn all_six_networks_are_banyan() {
        for n in SIZES {
            assert!(is_banyan(&omega(n).to_digraph()), "omega {n}");
            assert!(is_banyan(&flip(n).to_digraph()), "flip {n}");
            assert!(is_banyan(&baseline(n).to_digraph()), "baseline {n}");
            assert!(
                is_banyan(&reverse_baseline(n).to_digraph()),
                "reverse baseline {n}"
            );
            assert!(is_banyan(&indirect_binary_cube(n).to_digraph()), "cube {n}");
            assert!(
                is_banyan(&modified_data_manipulator(n).to_digraph()),
                "mdm {n}"
            );
        }
    }

    #[test]
    fn all_stages_of_all_networks_are_independent_connections() {
        for n in SIZES {
            for (name, net) in [
                ("omega", omega(n)),
                ("flip", flip(n)),
                ("baseline", baseline(n)),
                ("reverse-baseline", reverse_baseline(n)),
                ("cube", indirect_binary_cube(n)),
                ("mdm", modified_data_manipulator(n)),
            ] {
                for (i, conn) in net.connections().iter().enumerate() {
                    assert!(is_independent(conn), "{name} n={n} stage {i}");
                }
            }
        }
    }

    #[test]
    fn pipid_baseline_matches_the_left_recursive_construction() {
        for n in SIZES {
            let via_pipid = baseline(n).to_digraph();
            let canonical = baseline_digraph(n);
            assert!(
                via_pipid.same_arcs(&canonical),
                "PIPID baseline differs from the recursive definition at n={n}"
            );
        }
    }

    #[test]
    fn reverse_baseline_is_the_reverse_of_the_baseline() {
        for n in SIZES {
            let rb = reverse_baseline(n).to_digraph();
            let reversed = baseline(n).to_digraph().reverse();
            assert!(rb.same_arcs(&reversed), "n={n}");
        }
    }

    #[test]
    fn all_six_satisfy_the_characterization() {
        for n in SIZES {
            assert!(satisfies_characterization(&omega(n).to_digraph()));
            assert!(satisfies_characterization(&flip(n).to_digraph()));
            assert!(satisfies_characterization(&baseline(n).to_digraph()));
            assert!(satisfies_characterization(
                &reverse_baseline(n).to_digraph()
            ));
            assert!(satisfies_characterization(
                &indirect_binary_cube(n).to_digraph()
            ));
            assert!(satisfies_characterization(
                &modified_data_manipulator(n).to_digraph()
            ));
        }
    }

    #[test]
    fn cube_stage_s_toggles_destination_bit_s() {
        let n = 4;
        let net = indirect_binary_cube(n);
        for (s, conn) in net.connections().iter().enumerate() {
            for x in 0..8u64 {
                assert_eq!(conn.f(x), x & !(1 << s));
                assert_eq!(conn.g(x), x | (1 << s));
            }
        }
    }

    #[test]
    fn omega_stage_is_the_textbook_shuffle_exchange() {
        let n = 4;
        let net = omega(n);
        let cells = net.cells_per_stage() as u64;
        for conn in net.connections() {
            for x in 0..cells {
                assert_eq!(conn.f(x), (2 * x) % cells);
                assert_eq!(conn.g(x), (2 * x + 1) % cells);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn single_stage_networks_are_rejected() {
        let _ = omega(1);
    }
}
