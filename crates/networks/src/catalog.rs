//! An enumerable catalog of the six classical networks.
//!
//! Used by the equivalence-matrix experiment (E9), the routing/simulation
//! comparisons (E12) and the benchmarks, which all want to iterate over
//! "every classical network" uniformly.

use crate::classical;
use min_core::ConnectionNetwork;
use min_labels::IndexPermutation;
use serde::{Deserialize, Serialize};

/// The six networks whose equivalence is the paper's headline corollary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassicalNetwork {
    /// Wu & Feng's Baseline network.
    Baseline,
    /// The Baseline drawn right-to-left.
    ReverseBaseline,
    /// Lawrie's Omega network (perfect shuffles).
    Omega,
    /// Batcher's Flip network (inverse shuffles).
    Flip,
    /// Pease's Indirect Binary n-Cube (butterflies, ascending).
    IndirectBinaryCube,
    /// Feng's Modified Data Manipulator (butterflies, descending).
    ModifiedDataManipulator,
}

impl ClassicalNetwork {
    /// All six members, in a fixed order.
    pub const ALL: [ClassicalNetwork; 6] = [
        ClassicalNetwork::Baseline,
        ClassicalNetwork::ReverseBaseline,
        ClassicalNetwork::Omega,
        ClassicalNetwork::Flip,
        ClassicalNetwork::IndirectBinaryCube,
        ClassicalNetwork::ModifiedDataManipulator,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ClassicalNetwork::Baseline => "Baseline",
            ClassicalNetwork::ReverseBaseline => "Reverse Baseline",
            ClassicalNetwork::Omega => "Omega",
            ClassicalNetwork::Flip => "Flip",
            ClassicalNetwork::IndirectBinaryCube => "Indirect Binary n-Cube",
            ClassicalNetwork::ModifiedDataManipulator => "Modified Data Manipulator",
        }
    }

    /// Literature reference (as cited in the paper's bibliography).
    pub fn citation(self) -> &'static str {
        match self {
            ClassicalNetwork::Baseline | ClassicalNetwork::ReverseBaseline => {
                "Wu & Feng, IEEE Trans. Computers C-29 (1980) 694-702"
            }
            ClassicalNetwork::Omega => "Lawrie, IEEE Trans. Computers C-24 (1975) 1145-1155",
            ClassicalNetwork::Flip => "Batcher, Proc. ICPP (1976) 65-71",
            ClassicalNetwork::IndirectBinaryCube => {
                "Pease, IEEE Trans. Computers C-26 (1977) 458-473"
            }
            ClassicalNetwork::ModifiedDataManipulator => {
                "Feng, IEEE Trans. Computers C-23 (1974) 309-318"
            }
        }
    }

    /// The PIPID digit permutations of the `n`-stage instance.
    pub fn thetas(self, n: usize) -> Vec<IndexPermutation> {
        match self {
            ClassicalNetwork::Baseline => classical::baseline_thetas(n),
            ClassicalNetwork::ReverseBaseline => classical::reverse_baseline_thetas(n),
            ClassicalNetwork::Omega => classical::omega_thetas(n),
            ClassicalNetwork::Flip => classical::flip_thetas(n),
            ClassicalNetwork::IndirectBinaryCube => classical::indirect_binary_cube_thetas(n),
            ClassicalNetwork::ModifiedDataManipulator => {
                classical::modified_data_manipulator_thetas(n)
            }
        }
    }

    /// Builds the `n`-stage instance.
    pub fn build(self, n: usize) -> ConnectionNetwork {
        match self {
            ClassicalNetwork::Baseline => classical::baseline(n),
            ClassicalNetwork::ReverseBaseline => classical::reverse_baseline(n),
            ClassicalNetwork::Omega => classical::omega(n),
            ClassicalNetwork::Flip => classical::flip(n),
            ClassicalNetwork::IndirectBinaryCube => classical::indirect_binary_cube(n),
            ClassicalNetwork::ModifiedDataManipulator => classical::modified_data_manipulator(n),
        }
    }
}

/// Expands a family × stage-count grid over the classical catalog, in a
/// fixed deterministic order (families in [`ClassicalNetwork::ALL`] order,
/// stage counts ascending within each family).
///
/// This is the enumeration the campaign runner (`min-sim::campaign`) and the
/// sweep benchmarks build their work queues from. Since the `NetworkSpec`
/// redesign it returns [`crate::spec::NetworkSpec`] cells; each serializes
/// byte-for-byte like the `(ClassicalNetwork, usize)` tuple it replaced.
pub fn catalog_grid(stages: std::ops::RangeInclusive<usize>) -> Vec<crate::spec::NetworkSpec> {
    grid(&ClassicalNetwork::ALL, stages)
}

/// Expands an arbitrary family subset × stage-count grid, preserving the
/// given family order and ascending stage counts within each family.
pub fn grid(
    families: &[ClassicalNetwork],
    stages: std::ops::RangeInclusive<usize>,
) -> Vec<crate::spec::NetworkSpec> {
    families
        .iter()
        .flat_map(|&kind| {
            stages
                .clone()
                .map(move |n| crate::spec::NetworkSpec::catalog(kind, n))
        })
        .collect()
}

impl std::fmt::Display for ClassicalNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_catalog_has_six_distinct_members() {
        assert_eq!(ClassicalNetwork::ALL.len(), 6);
        let names: std::collections::HashSet<&str> =
            ClassicalNetwork::ALL.iter().map(|n| n.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn build_and_thetas_are_consistent() {
        for kind in ClassicalNetwork::ALL {
            let n = 4;
            let net = kind.build(n);
            let thetas = kind.thetas(n);
            assert_eq!(net.stages(), n);
            assert_eq!(thetas.len(), n - 1);
            // Rebuilding from the exposed thetas gives the same network.
            let rebuilt_connections: Vec<_> = thetas
                .iter()
                .map(|t| min_core::pipid::connection_from_pipid(t).connection)
                .collect();
            let rebuilt = ConnectionNetwork::new(n - 1, rebuilt_connections);
            assert_eq!(&rebuilt, &net, "{kind}");
        }
    }

    #[test]
    fn display_and_citation_are_present() {
        for kind in ClassicalNetwork::ALL {
            assert!(!kind.to_string().is_empty());
            assert!(kind.citation().contains("19"));
        }
    }

    #[test]
    fn catalog_grid_enumerates_family_major() {
        let cells = catalog_grid(3..=5);
        assert_eq!(cells.len(), 6 * 3);
        // Family-major: the first three cells are the Baseline at n = 3, 4, 5.
        // The tuple comparisons exercise the legacy-shim `PartialEq`.
        assert_eq!(cells[0], (ClassicalNetwork::Baseline, 3));
        assert_eq!(cells[1], (ClassicalNetwork::Baseline, 4));
        assert_eq!(cells[2], (ClassicalNetwork::Baseline, 5));
        assert_eq!(
            cells[3],
            crate::spec::NetworkSpec::catalog(ClassicalNetwork::ReverseBaseline, 3)
        );
        // Every cell builds a network of the requested size.
        for spec in cells {
            assert_eq!(spec.build().stages(), spec.stages());
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)]
    fn grid_respects_the_given_family_subset() {
        let cells = grid(&[ClassicalNetwork::Omega, ClassicalNetwork::Flip], 4..=4);
        assert_eq!(cells.len(), 2);
        use crate::spec::NetworkSpec;
        assert_eq!(cells[0], NetworkSpec::catalog(ClassicalNetwork::Omega, 4));
        assert_eq!(cells[1], NetworkSpec::catalog(ClassicalNetwork::Flip, 4));
        assert!(grid(&[], 3..=5).is_empty());
        assert!(catalog_grid(5..=3).is_empty());
    }

    #[test]
    fn catalog_networks_differ_pairwise_as_labelled_objects() {
        // They are all *isomorphic*, but as labelled connection networks the
        // six constructions must be pairwise distinct (otherwise the
        // equivalence corollary would be vacuous).
        let n = 4;
        for (i, a) in ClassicalNetwork::ALL.iter().enumerate() {
            for b in ClassicalNetwork::ALL.iter().skip(i + 1) {
                assert_ne!(a.build(n), b.build(n), "{a} vs {b}");
            }
        }
    }
}
