//! # `min-networks` — the catalog of classical MINs
//!
//! Section 4 of Bermond & Fourneau closes with the corollary that motivates
//! the whole paper: *"As Omega, Baseline, Reverse Baseline, Flip, Indirect
//! Binary Cube and Modified Data Manipulator networks are designed using
//! PIPID permutations, they are all equivalent."* This crate provides those
//! six networks as first-class objects (with their PIPID stage sequences and
//! literature references), together with:
//!
//! * [`builder`] — generic construction of a [`min_core::ConnectionNetwork`]
//!   from digit permutations, link permutations or raw connections;
//! * [`random`] — random generators used by tests and benchmarks: random
//!   PIPID networks, random independent-connection Banyan networks
//!   (the objects of Theorem 3), random arbitrary-wiring networks
//!   (the negative controls);
//! * [`classify_grid`] — declarative grids (catalog cells × stage counts ×
//!   random samples) feeding the equivalence-classification campaigns of
//!   `min_core::classify`;
//! * [`counterexample`] — the degenerate and non-equivalent networks that
//!   delimit the theory: Fig. 5 parallel-link stages, Banyan networks that
//!   are *not* Baseline-equivalent, and buddy-property networks that are not
//!   Baseline-equivalent (the point of reference \[10\]);
//! * [`faulty`] — damaged variants of the catalog networks (dead links,
//!   dead switches, stuck cells) feeding the fault-tolerance analysis of
//!   `min-routing` and the fault-injection campaigns of `min-sim`;
//! * [`rearrangeable`] — the constructions *outside* the unique-path scope:
//!   the Benes network, its 2024 shuffle-based variant, and
//!   fundamental-arrangement rewrites of catalog members;
//! * [`spec`] — [`spec::NetworkSpec`], the serializable, versioned network
//!   description both campaign runners consume (the replacement for the old
//!   `(ClassicalNetwork, usize)` tuples).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod classical;
pub mod classify_grid;
pub mod counterexample;
pub mod faulty;
pub mod random;
pub mod rearrangeable;
pub mod spec;

pub use builder::NetworkBuilder;
pub use catalog::{catalog_grid, ClassicalNetwork};
pub use classical::{
    baseline, flip, indirect_binary_cube, modified_data_manipulator, omega, reverse_baseline,
};
pub use classify_grid::{ClassificationGrid, RandomFamily};
pub use faulty::{dead_link_digraph, dead_switch_digraph, link_sites, stuck_cell};
pub use rearrangeable::{benes, benes_entry_half, benes_exit_half, benes_variant, Rewrite};
pub use spec::NetworkSpec;
