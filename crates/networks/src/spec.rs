//! `NetworkSpec` — a serializable, versioned description of any network the
//! campaign runners can build.
//!
//! Before this type, the simulation and classification grids threaded
//! `(ClassicalNetwork, usize)` tuples everywhere, which hard-assumed the
//! unique-path catalog. [`NetworkSpec`] names a network *declaratively* —
//! catalog member, Benes, the 2024 shuffle-based variant, or a
//! fundamental-arrangement rewrite of a catalog member — so rearrangeable
//! and transformed fabrics flow through `CampaignConfig`,
//! `ClassificationGrid` and the report JSON with no special cases.
//!
//! ## Wire format and versioning
//!
//! A [`NetworkSpec::Catalog`] cell serializes **exactly** like the old
//! tuple — a 2-element sequence `["Omega", 3]` — so every report produced
//! before the redesign parses unchanged and old-style grids keep producing
//! byte-identical JSON (pinned by the workspace compatibility tests). The
//! new variants use the derive-style tagged-map encoding, e.g.
//! `{"Benes": {"n": 3}}`: adding a variant never perturbs the bytes of
//! existing ones, which is the versioning contract.
//!
//! ## Migration from the tuple API
//!
//! The `(ClassicalNetwork, usize)` shims are **deprecated**. Grid builders
//! now take `Vec<NetworkSpec>` directly; the tuple spellings survive only
//! behind `#[deprecated]` escape hatches so old code fails loudly instead
//! of silently:
//!
//! * `config.with_cells(vec![(ClassicalNetwork::Omega, 3)])` becomes
//!   `config.with_cells(vec![NetworkSpec::catalog(ClassicalNetwork::Omega, 3)])`;
//!   the tuple form lives on as the deprecated `with_cell_tuples` /
//!   `with_catalog_tuples` builders (and [`NetworkSpec::from_tuple`]).
//! * `catalog_grid(3..=5)` now returns `Vec<NetworkSpec>`; code that matched
//!   on the tuple can compare against [`NetworkSpec::catalog`] values or
//!   match on [`NetworkSpec::Catalog`].
//! * Code that did `kind.build(stages)` calls [`NetworkSpec::build`]; the
//!   stage count lives in the spec ([`NetworkSpec::stages`]), and — new with
//!   the rearrangeable members — the cell count is **not** always
//!   `2^(stages-1)`-terminals-style derivable from the stage count alone, so
//!   use [`NetworkSpec::cells_per_stage`] / [`NetworkSpec::terminals`]
//!   instead of `1 << stages`.

use crate::catalog::ClassicalNetwork;
use crate::rearrangeable::{benes, benes_variant, Rewrite};
use min_core::ConnectionNetwork;
use serde::{map_get, Deserialize, Error, Serialize, Value};

/// A buildable network description: the unit of the campaign grid axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkSpec {
    /// An `stages`-stage member of the classical unique-path catalog.
    Catalog {
        /// The catalog family.
        family: ClassicalNetwork,
        /// Stage count `n` (the network has `2^n` terminals).
        stages: usize,
    },
    /// The Benes network over `2^n` terminals (`2n - 1` stages).
    Benes {
        /// Half-depth parameter: the network is Baseline(n) ++ Reverse
        /// Baseline(n) sharing the middle stage.
        n: usize,
    },
    /// The shuffle-based Benes variant (Omega half ++ Flip half).
    BenesVariant {
        /// Half-depth parameter, as in [`NetworkSpec::Benes`].
        n: usize,
    },
    /// A fundamental-arrangement rewrite of a catalog member.
    Rewritten {
        /// The catalog family being redrawn.
        family: ClassicalNetwork,
        /// Stage count of the underlying member.
        stages: usize,
        /// The rewrite applied to it.
        rewrite: Rewrite,
    },
}

impl NetworkSpec {
    /// Shorthand for a catalog cell.
    pub fn catalog(family: ClassicalNetwork, stages: usize) -> Self {
        NetworkSpec::Catalog { family, stages }
    }

    /// Shorthand for the Benes network over `2^n` terminals.
    pub fn benes(n: usize) -> Self {
        NetworkSpec::Benes { n }
    }

    /// Shorthand for the shuffle-based Benes variant.
    pub fn benes_variant(n: usize) -> Self {
        NetworkSpec::BenesVariant { n }
    }

    /// Shorthand for a rewritten catalog member.
    pub fn rewritten(family: ClassicalNetwork, stages: usize, rewrite: Rewrite) -> Self {
        NetworkSpec::Rewritten {
            family,
            stages,
            rewrite,
        }
    }

    /// The actual stage count of the built network (for the Benes family
    /// this is `2n - 1`, not `n`).
    pub fn stages(&self) -> usize {
        match *self {
            NetworkSpec::Catalog { stages, .. } | NetworkSpec::Rewritten { stages, .. } => stages,
            NetworkSpec::Benes { n } | NetworkSpec::BenesVariant { n } => 2 * n - 1,
        }
    }

    /// Cells per stage. **Not** `1 << (stages - 1)` for the Benes family —
    /// a Benes has `2^(n-1)` cells across `2n - 1` stages.
    pub fn cells_per_stage(&self) -> usize {
        match *self {
            NetworkSpec::Catalog { stages, .. } | NetworkSpec::Rewritten { stages, .. } => {
                1 << (stages - 1)
            }
            NetworkSpec::Benes { n } | NetworkSpec::BenesVariant { n } => 1 << (n - 1),
        }
    }

    /// Terminals on each side (`2 ×` cells per stage).
    pub fn terminals(&self) -> usize {
        2 * self.cells_per_stage()
    }

    /// Display name used in report tables and subject labels.
    pub fn name(&self) -> String {
        match *self {
            NetworkSpec::Catalog { family, .. } => family.name().to_string(),
            NetworkSpec::Benes { .. } => "Benes".to_string(),
            NetworkSpec::BenesVariant { .. } => "Benes-variant".to_string(),
            NetworkSpec::Rewritten {
                family, rewrite, ..
            } => format!("{}+{}", family.name(), rewrite.label()),
        }
    }

    /// `true` for specs expressible in the pre-redesign tuple API.
    pub fn is_catalog(&self) -> bool {
        matches!(self, NetworkSpec::Catalog { .. })
    }

    /// Converts a pre-redesign `(family, stages)` tuple into a spec.
    ///
    /// Kept only so legacy call sites have an explicit, greppable landing
    /// spot; new code should call [`NetworkSpec::catalog`] directly.
    #[deprecated(
        since = "0.1.0",
        note = "use `NetworkSpec::catalog(family, stages)` instead of the tuple shorthand"
    )]
    pub fn from_tuple((family, stages): (ClassicalNetwork, usize)) -> Self {
        NetworkSpec::Catalog { family, stages }
    }

    /// Builds the described network.
    pub fn build(&self) -> ConnectionNetwork {
        match *self {
            NetworkSpec::Catalog { family, stages } => family.build(stages),
            NetworkSpec::Benes { n } => benes(n),
            NetworkSpec::BenesVariant { n } => benes_variant(n),
            NetworkSpec::Rewritten {
                family,
                stages,
                rewrite,
            } => rewrite.apply(&family.build(stages)),
        }
    }
}

/// **Deprecated shim** — lets pre-redesign `(family, stages)` tuples flow
/// into spec-typed APIs. `#[deprecated]` cannot be attached to a trait impl,
/// so this delegates to the deprecated [`NetworkSpec::from_tuple`] as the
/// lintable entry point; new code should build specs with
/// [`NetworkSpec::catalog`].
impl From<(ClassicalNetwork, usize)> for NetworkSpec {
    fn from(tuple: (ClassicalNetwork, usize)) -> Self {
        #[allow(deprecated)]
        NetworkSpec::from_tuple(tuple)
    }
}

/// **Deprecated shim** — lets pre-redesign assertions like
/// `cells[0] == (ClassicalNetwork::Baseline, 3)` keep compiling against the
/// migrated grids. Compare against [`NetworkSpec::catalog`] values instead.
impl PartialEq<(ClassicalNetwork, usize)> for NetworkSpec {
    fn eq(&self, &(family, stages): &(ClassicalNetwork, usize)) -> bool {
        *self == NetworkSpec::Catalog { family, stages }
    }
}

impl std::fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl Serialize for NetworkSpec {
    fn to_value(&self) -> Value {
        match *self {
            // Byte-for-byte the encoding of the legacy tuple.
            NetworkSpec::Catalog { family, stages } => {
                Value::Seq(vec![family.to_value(), stages.to_value()])
            }
            NetworkSpec::Benes { n } => Value::Map(vec![(
                "Benes".to_string(),
                Value::Map(vec![("n".to_string(), n.to_value())]),
            )]),
            NetworkSpec::BenesVariant { n } => Value::Map(vec![(
                "BenesVariant".to_string(),
                Value::Map(vec![("n".to_string(), n.to_value())]),
            )]),
            NetworkSpec::Rewritten {
                family,
                stages,
                rewrite,
            } => Value::Map(vec![(
                "Rewritten".to_string(),
                Value::Map(vec![
                    ("family".to_string(), family.to_value()),
                    ("stages".to_string(), stages.to_value()),
                    ("rewrite".to_string(), rewrite.to_value()),
                ]),
            )]),
        }
    }
}

impl Deserialize for NetworkSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(seq) = v.as_seq() {
            // The legacy `(ClassicalNetwork, usize)` tuple form.
            let [family, stages] = seq else {
                return Err(Error::custom(
                    "a catalog network spec is a 2-element [family, stages] sequence",
                ));
            };
            return Ok(NetworkSpec::Catalog {
                family: ClassicalNetwork::from_value(family)?,
                stages: usize::from_value(stages)?,
            });
        }
        let entries = v
            .as_map()
            .ok_or_else(|| Error::custom("expected a network spec"))?;
        let [(variant, payload)] = entries else {
            return Err(Error::custom("a network spec map has exactly one variant"));
        };
        let fields = payload
            .as_map()
            .ok_or_else(|| Error::custom("expected a network spec payload map"))?;
        match variant.as_str() {
            "Benes" => Ok(NetworkSpec::Benes {
                n: usize::from_value(map_get(fields, "n")?)?,
            }),
            "BenesVariant" => Ok(NetworkSpec::BenesVariant {
                n: usize::from_value(map_get(fields, "n")?)?,
            }),
            "Rewritten" => Ok(NetworkSpec::Rewritten {
                family: ClassicalNetwork::from_value(map_get(fields, "family")?)?,
                stages: usize::from_value(map_get(fields, "stages")?)?,
                rewrite: Rewrite::from_value(map_get(fields, "rewrite")?)?,
            }),
            other => Err(Error::custom(format!("unknown network spec `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_specs_serialize_exactly_like_the_legacy_tuples() {
        for family in ClassicalNetwork::ALL {
            for stages in 2..=5 {
                let tuple = (family, stages);
                let spec = NetworkSpec::from(tuple);
                assert_eq!(
                    serde_json::to_string(&spec).unwrap(),
                    serde_json::to_string(&tuple).unwrap(),
                );
            }
        }
    }

    #[test]
    fn every_spec_round_trips_through_json() {
        let specs = [
            NetworkSpec::catalog(ClassicalNetwork::Omega, 4),
            NetworkSpec::benes(3),
            NetworkSpec::benes_variant(4),
            NetworkSpec::rewritten(ClassicalNetwork::Baseline, 4, Rewrite::BitReversal),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: NetworkSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn legacy_tuple_json_parses_as_a_catalog_spec() {
        let spec: NetworkSpec = serde_json::from_str("[\"Omega\",3]").unwrap();
        assert_eq!(spec, NetworkSpec::catalog(ClassicalNetwork::Omega, 3));
        assert_eq!(spec, (ClassicalNetwork::Omega, 3));
    }

    #[test]
    fn sizes_come_from_the_construction_not_the_stage_count() {
        let spec = NetworkSpec::benes(4);
        assert_eq!(spec.stages(), 7);
        assert_eq!(spec.cells_per_stage(), 8);
        assert_eq!(spec.terminals(), 16);
        // The naive 1 << (stages - 1) would claim 64 cells.
        assert_ne!(spec.cells_per_stage(), 1 << (spec.stages() - 1));
        let cat = NetworkSpec::catalog(ClassicalNetwork::Flip, 4);
        assert_eq!(cat.cells_per_stage(), 1 << (cat.stages() - 1));
    }

    #[test]
    fn build_matches_the_declared_shape() {
        let specs = [
            NetworkSpec::catalog(ClassicalNetwork::ModifiedDataManipulator, 3),
            NetworkSpec::benes(3),
            NetworkSpec::benes_variant(3),
            NetworkSpec::rewritten(ClassicalNetwork::Omega, 3, Rewrite::Reverse),
        ];
        for spec in specs {
            let net = spec.build();
            assert_eq!(net.stages(), spec.stages(), "{spec}");
            assert_eq!(net.cells_per_stage(), spec.cells_per_stage(), "{spec}");
            assert_eq!(net.terminals(), spec.terminals(), "{spec}");
        }
    }

    #[test]
    fn names_are_distinct_and_stable() {
        assert_eq!(NetworkSpec::benes(3).name(), "Benes");
        assert_eq!(NetworkSpec::benes_variant(3).name(), "Benes-variant");
        assert_eq!(
            NetworkSpec::rewritten(ClassicalNetwork::Omega, 3, Rewrite::VerticalFlip).name(),
            "Omega+vflip"
        );
        assert_eq!(
            NetworkSpec::catalog(ClassicalNetwork::Baseline, 5).name(),
            "Baseline"
        );
        assert!(NetworkSpec::benes(3).to_string().contains("Benes"));
    }

    #[test]
    fn unknown_spec_variants_are_rejected() {
        assert!(serde_json::from_str::<NetworkSpec>("{\"Clos\":{\"n\":3}}").is_err());
        assert!(serde_json::from_str::<NetworkSpec>("[\"Omega\"]").is_err());
        assert!(serde_json::from_str::<NetworkSpec>("7").is_err());
    }
}
