//! Declarative grids for equivalence-classification campaigns.
//!
//! [`ClassificationGrid`] is the classification analogue of
//! `min-sim`'s `CampaignConfig`: a grid of catalog cells (network family ×
//! stage count) plus optional random-network samples, expanded into the
//! canonically ordered [`Subject`] list consumed by
//! [`min_core::classify::classify_subjects`]. Random subjects derive their
//! ChaCha8 seed from `(campaign_seed, subject index)` by the SplitMix64
//! finalizer ([`min_core::classify::derive_seed`]), so the whole expansion —
//! and with it the classification report — depends only on the grid, never
//! on thread scheduling.

use crate::catalog::{catalog_grid, ClassicalNetwork};
use crate::random::{
    random_buddy_network, random_independent_banyan, random_link_permutation_network,
    random_pipid_network,
};
use crate::spec::NetworkSpec;
use min_core::classify::{derive_seed, Subject};
use min_core::ConnectionNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The random-network families a classification grid can sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RandomFamily {
    /// Every stage a uniformly random non-degenerate PIPID (the paper's
    /// main-corollary population; Baseline-equivalent whenever Banyan).
    Pipid,
    /// Every stage a random proper independent connection, resampled until
    /// the network is Banyan (the Theorem 3 population). Rejection sampling
    /// is budgeted; when the budget is exhausted the sample deterministically
    /// falls back to a PIPID network, which keeps the grid total.
    IndependentBanyan,
    /// Every stage an arbitrary random link permutation — the negative
    /// control, essentially never Baseline-equivalent.
    LinkPermutation,
    /// Random buddy-property networks — Agrawal's property without
    /// Baseline equivalence (the populations of reference \[10\]).
    Buddy,
}

impl RandomFamily {
    /// All four families, in the canonical grid order.
    pub const ALL: [RandomFamily; 4] = [
        RandomFamily::Pipid,
        RandomFamily::IndependentBanyan,
        RandomFamily::LinkPermutation,
        RandomFamily::Buddy,
    ];

    /// Family label used in subject names and reports.
    pub fn name(self) -> &'static str {
        match self {
            RandomFamily::Pipid => "random-pipid",
            RandomFamily::IndependentBanyan => "random-independent-banyan",
            RandomFamily::LinkPermutation => "random-link-permutation",
            RandomFamily::Buddy => "random-buddy",
        }
    }

    /// Deterministically builds the `n`-stage sample for `seed`.
    pub fn build(self, stages: usize, seed: u64) -> ConnectionNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match self {
            RandomFamily::Pipid => random_pipid_network(stages, &mut rng),
            RandomFamily::IndependentBanyan => random_independent_banyan(stages, 1000, &mut rng)
                .unwrap_or_else(|| random_pipid_network(stages, &mut rng)),
            RandomFamily::LinkPermutation => random_link_permutation_network(stages, &mut rng),
            RandomFamily::Buddy => random_buddy_network(stages, &mut rng),
        }
    }
}

impl std::fmt::Display for RandomFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative classification campaign: catalog cells × stage counts plus
/// optional random samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationGrid {
    /// Master seed; every subject derives its own seed from this and its
    /// index.
    pub campaign_seed: u64,
    /// The deterministic network specs, e.g. from [`catalog_grid`] — since
    /// the `NetworkSpec` redesign these can also name Benes, its variant,
    /// and rewritten catalog members.
    pub catalog: Vec<NetworkSpec>,
    /// Random families swept after the catalog cells.
    pub random_families: Vec<RandomFamily>,
    /// Stage counts swept per random family.
    pub random_stages: Vec<usize>,
    /// Independent samples per (random family, stage count) point.
    pub random_samples: u32,
}

impl ClassificationGrid {
    /// A grid over the full classical catalog at the given stage counts,
    /// with no random axis.
    pub fn over_catalog(stages: std::ops::RangeInclusive<usize>) -> Self {
        ClassificationGrid {
            campaign_seed: 0x1988,
            catalog: catalog_grid(stages),
            random_families: Vec::new(),
            random_stages: Vec::new(),
            random_samples: 0,
        }
    }

    /// Builder-style setter for the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Builder-style setter for the deterministic cells.
    pub fn with_catalog(mut self, catalog: Vec<NetworkSpec>) -> Self {
        self.catalog = catalog;
        self
    }

    /// Legacy tuple-typed variant of [`Self::with_catalog`].
    #[deprecated(
        since = "0.1.0",
        note = "build `NetworkSpec` cells (`NetworkSpec::catalog`) and call `with_catalog`"
    )]
    pub fn with_catalog_tuples(self, catalog: Vec<(ClassicalNetwork, usize)>) -> Self {
        self.with_catalog(catalog.into_iter().map(Into::into).collect())
    }

    /// Builder-style setter for the random axis: `samples` networks per
    /// (family, stage count) point.
    pub fn with_random(
        mut self,
        families: Vec<RandomFamily>,
        stages: std::ops::RangeInclusive<usize>,
        samples: u32,
    ) -> Self {
        self.random_families = families;
        self.random_stages = stages.collect();
        self.random_samples = samples;
        self
    }

    /// Number of subjects the grid expands to.
    pub fn subject_count(&self) -> usize {
        self.catalog.len()
            + self.random_families.len() * self.random_stages.len() * self.random_samples as usize
    }

    /// Expands the grid into the canonical subject list: catalog cells
    /// first (in the given order), then random subjects family-major ×
    /// stage count × sample. Every subject's seed derives from
    /// `(campaign_seed, index)`.
    ///
    /// Panics if any stage count is outside the buildable range `2..=32`.
    pub fn subjects(&self) -> Vec<Subject> {
        for spec in &self.catalog {
            let n = spec.stages();
            assert!((2..=32).contains(&n), "catalog stage count {n} unbuildable");
        }
        for &n in &self.random_stages {
            assert!((2..=32).contains(&n), "random stage count {n} unbuildable");
        }
        let mut out = Vec::with_capacity(self.subject_count());
        for &spec in &self.catalog {
            let seed = derive_seed(self.campaign_seed, out.len());
            out.push(Subject::new(
                spec.name(),
                spec.stages(),
                0,
                seed,
                move || spec.build(),
            ));
        }
        for &family in &self.random_families {
            for &stages in &self.random_stages {
                for replication in 0..self.random_samples {
                    let seed = derive_seed(self.campaign_seed, out.len());
                    out.push(Subject::new(
                        family.name(),
                        stages,
                        replication,
                        seed,
                        move || family.build(stages, seed),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ClassicalNetwork;
    use min_core::classify::classify_subjects;

    #[test]
    fn expansion_is_canonical_and_seeded_per_index() {
        let grid = ClassificationGrid::over_catalog(3..=4)
            .with_seed(0xF00D)
            .with_random(RandomFamily::ALL.to_vec(), 3..=3, 2);
        let subjects = grid.subjects();
        assert_eq!(subjects.len(), grid.subject_count());
        assert_eq!(subjects.len(), 12 + 4 * 2);
        // Catalog first, family-major (Baseline at n = 3, 4).
        assert_eq!(subjects[0].family(), "Baseline");
        assert_eq!(subjects[0].stages(), 3);
        assert_eq!(subjects[1].stages(), 4);
        // Random subjects follow, family-major with replications innermost.
        assert_eq!(subjects[12].family(), "random-pipid");
        assert_eq!(subjects[13].replication(), 1);
        assert_eq!(subjects[14].family(), "random-independent-banyan");
        // Seeds derive from (campaign seed, index) and are all distinct.
        for (i, s) in subjects.iter().enumerate() {
            assert_eq!(s.seed(), derive_seed(0xF00D, i));
        }
        let seeds: std::collections::HashSet<u64> = subjects.iter().map(|s| s.seed()).collect();
        assert_eq!(seeds.len(), subjects.len());
    }

    #[test]
    fn random_builders_are_deterministic_per_seed() {
        for family in RandomFamily::ALL {
            let a = family.build(4, 99);
            let b = family.build(4, 99);
            assert_eq!(a, b, "{family}");
            assert_eq!(a.stages(), 4);
            assert!(a.is_proper(), "{family}");
        }
        // Different seeds give different networks (overwhelmingly).
        assert_ne!(
            RandomFamily::LinkPermutation.build(5, 1),
            RandomFamily::LinkPermutation.build(5, 2)
        );
    }

    #[test]
    fn catalog_subjects_classify_into_one_class_per_stage_count() {
        let grid = ClassificationGrid::over_catalog(3..=4);
        let report = classify_subjects(&grid.subjects(), 0).unwrap();
        assert_eq!(report.subject_count, 12);
        assert_eq!(report.equivalent_subjects, 12);
        // One Baseline-equivalent class per stage count, all cross-verified.
        assert_eq!(report.class_count, 2);
        for class in &report.classes {
            assert_eq!(class.members.len(), 6);
            assert!(class.equivalent);
            assert!(class.cross_verified);
        }
    }

    #[test]
    fn banyan_random_samples_classify_as_equivalent() {
        // Theorem 3 on the random axis: every Banyan sample with
        // independent stages must land in the Baseline-equivalent class.
        let grid = ClassificationGrid::over_catalog(3..=3)
            .with_catalog(vec![NetworkSpec::catalog(ClassicalNetwork::Baseline, 3)])
            .with_random(
                vec![RandomFamily::IndependentBanyan, RandomFamily::Pipid],
                3..=4,
                3,
            );
        let subjects = grid.subjects();
        let report = classify_subjects(&subjects, 2).unwrap();
        for r in report.subjects.iter().filter(|r| r.index > 0) {
            let net = subjects[r.index].build();
            let banyan = min_graph::paths::is_banyan(&net.to_digraph());
            let independent = net
                .connections()
                .iter()
                .all(min_core::independence::is_independent);
            if banyan && independent {
                assert!(r.equivalent, "{} is Banyan + independent", r.name());
            } else {
                assert!(!r.equivalent, "{} is not Banyan", r.name());
            }
        }
    }
}
