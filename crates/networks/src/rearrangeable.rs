//! Rearrangeable networks and fundamental-arrangement rewrites.
//!
//! The catalog of [`crate::classical`] stops at unique-path banyan networks
//! — exactly the scope of the paper's characterization. This module adds the
//! constructions that sit *outside* it:
//!
//! * [`benes`] — the Benes network over `2^n` terminals: the Baseline's
//!   `n − 1` splitting connections followed by the Reverse Baseline's
//!   `n − 1` merging connections, `2n − 1` stages in total. Every full
//!   permutation is realisable conflict-free (`min_routing::looping`), but
//!   with `2^(n-1)` cells per stage across `2n − 1` stages the MI-digraph is
//!   not "square", so the network is **not** Baseline-equivalent — the
//!   classification campaign reports the typed `WrongWidth` violation.
//! * [`benes_variant`] — the shuffle-based topological variant (cf. the
//!   2024 construction of arXiv:2411.04135): Omega's perfect shuffles for
//!   the first half and Flip's inverse shuffles for the second. Same
//!   recursive split/merge structure under a relabelling, so the looping
//!   algorithm configures it identically.
//! * [`benes_entry_half`] / [`benes_exit_half`] — the two banyan halves of
//!   [`benes`]. Each is a catalog member in disguise (Baseline resp.
//!   Reverse Baseline), hence **is** Baseline-equivalent: the pair of
//!   verdicts "full Benes no, halves yes" is the headline row of the
//!   extended classification report.
//! * [`Rewrite`] — fundamental-arrangement rewrites in the spirit of Gur &
//!   Zalevsky (arXiv:1012.5597): drawing the network right-to-left
//!   ([`Rewrite::Reverse`]) or conjugating every stage by a cell
//!   relabelling ([`Rewrite::VerticalFlip`], [`Rewrite::BitReversal`]).
//!   All three preserve Baseline-equivalence, which the classification
//!   campaign verifies constructively.

use crate::classical::{baseline_thetas, flip_thetas, omega_thetas, reverse_baseline_thetas};
use min_core::pipid::connection_from_pipid;
use min_core::{Connection, ConnectionNetwork};
use min_labels::IndexPermutation;
use serde::{Deserialize, Serialize};

/// Builds a `2n − 1`-stage network from two theta half-sequences sharing the
/// middle stage.
fn from_halves(
    n: usize,
    first: Vec<IndexPermutation>,
    second: Vec<IndexPermutation>,
) -> ConnectionNetwork {
    assert!(
        n >= 2,
        "a Benes-style network needs at least two stages per half"
    );
    let connections: Vec<Connection> = first
        .iter()
        .chain(second.iter())
        .map(|t| connection_from_pipid(t).connection)
        .collect();
    debug_assert_eq!(connections.len(), 2 * (n - 1));
    ConnectionNetwork::new(n - 1, connections)
}

/// The Benes network over `2^n` terminals: `2n − 1` stages of `2^(n-1)`
/// cells — the Baseline's splitting half followed by the Reverse Baseline's
/// merging half, sharing the middle stage.
pub fn benes(n: usize) -> ConnectionNetwork {
    from_halves(n, baseline_thetas(n), reverse_baseline_thetas(n))
}

/// The shuffle-based Benes variant: Omega's perfect-shuffle half followed by
/// Flip's inverse-shuffle half (the 2024 topological construction). Same
/// size and rearrangeability as [`benes`], different wiring.
pub fn benes_variant(n: usize) -> ConnectionNetwork {
    from_halves(n, omega_thetas(n), flip_thetas(n))
}

/// The entry (splitting) half of [`benes`] — exactly the Baseline network.
pub fn benes_entry_half(n: usize) -> ConnectionNetwork {
    crate::classical::baseline(n)
}

/// The exit (merging) half of [`benes`] — exactly the Reverse Baseline.
pub fn benes_exit_half(n: usize) -> ConnectionNetwork {
    crate::classical::reverse_baseline(n)
}

/// A fundamental-arrangement rewrite of a network: the same fabric drawn
/// differently (Gur & Zalevsky's transformations between the classical
/// drawings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rewrite {
    /// Mirror the network end-to-end (read the stages right-to-left).
    Reverse,
    /// Conjugate every stage by the vertical flip of the drawing: cell `x`
    /// relabelled to its bit complement.
    VerticalFlip,
    /// Conjugate every stage by the bit-reversal relabelling of the cells.
    BitReversal,
}

impl Rewrite {
    /// All rewrites, in a fixed order.
    pub const ALL: [Rewrite; 3] = [
        Rewrite::Reverse,
        Rewrite::VerticalFlip,
        Rewrite::BitReversal,
    ];

    /// Short stable label used in spec names and reports.
    pub fn label(self) -> &'static str {
        match self {
            Rewrite::Reverse => "reverse",
            Rewrite::VerticalFlip => "vflip",
            Rewrite::BitReversal => "bitrev",
        }
    }

    /// Applies the rewrite.
    ///
    /// Panics if a [`Rewrite::Reverse`] target's reverse digraph is not a
    /// connection network — impossible for proper networks, which is all the
    /// specs construct.
    pub fn apply(self, net: &ConnectionNetwork) -> ConnectionNetwork {
        match self {
            Rewrite::Reverse => net
                .reverse()
                .expect("a proper network's reverse is a connection network"),
            Rewrite::VerticalFlip => {
                let width = net.width();
                let mask = (1u64 << width).wrapping_sub(1);
                conjugate(net, |x| !x & mask)
            }
            Rewrite::BitReversal => {
                let width = net.width();
                conjugate(net, move |x| {
                    let mut out = 0u64;
                    for b in 0..width {
                        out |= ((x >> b) & 1) << (width - 1 - b);
                    }
                    out
                })
            }
        }
    }
}

impl std::fmt::Display for Rewrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Conjugates every connection by a cell relabelling `p` (an involution or
/// any bijection on cell labels): the rewritten stage maps `x` to
/// `p(f(p(x)))`, i.e. the same drawing with the cells renamed.
fn conjugate(net: &ConnectionNetwork, p: impl Fn(u64) -> u64) -> ConnectionNetwork {
    let width = net.width();
    let connections = net
        .connections()
        .iter()
        .map(|conn| Connection::from_fn(width, |x| p(conn.f(p(x))), |x| p(conn.g(p(x)))))
        .collect();
    ConnectionNetwork::new(width, connections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::{baseline, reverse_baseline};
    use min_core::independence::is_independent;

    #[test]
    fn benes_has_the_rearrangeable_shape() {
        for n in 2..=6 {
            for net in [benes(n), benes_variant(n)] {
                assert_eq!(net.stages(), 2 * n - 1);
                assert_eq!(net.cells_per_stage(), 1 << (n - 1));
                assert_eq!(net.terminals(), 1 << n);
                assert!(net.is_proper());
                assert!(net.connections().iter().all(is_independent));
            }
        }
    }

    #[test]
    fn benes_halves_are_the_baseline_pair() {
        for n in 2..=5 {
            assert_eq!(benes_entry_half(n), baseline(n));
            assert_eq!(benes_exit_half(n), reverse_baseline(n));
            // The full Benes is literally the concatenation of its halves.
            let full = benes(n);
            assert_eq!(&full.connections()[..n - 1], baseline(n).connections());
            assert_eq!(
                &full.connections()[n - 1..],
                reverse_baseline(n).connections()
            );
        }
    }

    #[test]
    fn benes_is_not_delta_beyond_the_degenerate_size() {
        // With 2n−1 > n stages the tag space outgrows the cell count, so the
        // destination table cannot be a bijection onto the cells.
        for n in 2..=5 {
            assert!(min_core::delta::delta_report(&benes(n))
                .destination
                .map(|d| d.len() != benes(n).cells_per_stage())
                .unwrap_or(true));
        }
    }

    #[test]
    fn rewrites_preserve_shape_and_properness() {
        let nets = [baseline(4), crate::classical::omega(4)];
        for net in &nets {
            for rw in Rewrite::ALL {
                let out = rw.apply(net);
                assert_eq!(out.stages(), net.stages(), "{rw}");
                assert_eq!(out.cells_per_stage(), net.cells_per_stage(), "{rw}");
                assert!(out.is_proper(), "{rw}");
                assert!(out.connections().iter().all(is_independent), "{rw}");
            }
        }
    }

    #[test]
    fn reverse_rewrite_of_the_baseline_is_the_reverse_baseline_digraph() {
        let rewritten = Rewrite::Reverse.apply(&baseline(4)).to_digraph();
        assert!(rewritten.same_arcs(&reverse_baseline(4).to_digraph()));
    }

    #[test]
    fn conjugations_are_involutions() {
        let net = crate::classical::flip(4);
        for rw in [Rewrite::VerticalFlip, Rewrite::BitReversal] {
            assert_eq!(rw.apply(&rw.apply(&net)), net, "{rw}");
        }
    }

    #[test]
    fn vertical_flip_actually_relabels() {
        let net = baseline(4);
        assert_ne!(Rewrite::VerticalFlip.apply(&net), net);
    }
}
