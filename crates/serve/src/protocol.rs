//! Wire protocol of the distributed campaign service.
//!
//! Every message is one **frame**: a `u32` big-endian byte count followed by
//! that many bytes of compact JSON — the `serde_json` rendering of a
//! [`Request`] or [`Reply`]. A TCP connection carries exactly one
//! request/reply exchange and is then closed by the client; workers that
//! need to talk repeatedly (lease, heartbeat, push) open a fresh connection
//! per message. Keeping connections single-shot means the master never
//! interleaves writes from two conversations on one stream and a dying
//! client can never wedge more than one exchange.
//!
//! ## Determinism across the wire
//!
//! [`crate::protocol::Request::Push`] carries typed
//! [`ScenarioResult`]s. The JSON layer prints floats with Rust's
//! shortest-round-trip formatting and parses them back exactly, so a result
//! that crosses the wire is bit-identical to one produced in process — the
//! foundation of the service's byte-identity guarantee.

use std::io::{self, Read, Write};

use min_sim::campaign::{CampaignConfig, ScenarioResult, Shard};
use serde::{Deserialize, Serialize};

/// Upper bound on a frame's payload, as a safety net against corrupt or
/// hostile length prefixes. Campaign shards and partial results are far
/// smaller; whole-campaign reports for very large grids dominate.
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(stream: &mut impl Write, msg: &T) -> io::Result<()> {
    let text = serde_json::to_string(msg).map_err(invalid)?;
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| invalid("frame exceeds u32::MAX bytes"))?;
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// Reads one length-prefixed JSON frame.
pub fn read_frame<T: Deserialize>(stream: &mut impl Read) -> io::Result<T> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    let text = String::from_utf8(payload).map_err(invalid)?;
    serde_json::from_str(&text).map_err(invalid)
}

/// A client-to-master message. One request per connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A worker announces itself (and its liveness) by name.
    Register {
        /// The worker's self-chosen name; also its failover identity.
        worker: String,
    },
    /// A worker asks for a shard to execute.
    Lease {
        /// Name the worker registered under.
        worker: String,
    },
    /// A worker streams back the results of a leased shard.
    Push {
        /// Name the worker registered under.
        worker: String,
        /// Plan-order id of the shard these results belong to.
        shard: usize,
        /// The shard's slotted results, in shard scenario order.
        results: Vec<ScenarioResult>,
    },
    /// A worker proves it is still alive while executing a long shard.
    Heartbeat {
        /// Name the worker registered under.
        worker: String,
    },
    /// A client submits a campaign for distributed execution.
    Submit {
        /// The campaign to run.
        config: CampaignConfig,
        /// Grid points per shard (see `CampaignConfig::plan_chunked`).
        points_per_shard: usize,
    },
    /// A client asks for the job's progress.
    Status,
    /// A client asks for the completed report.
    Results,
    /// A client asks the master to exit.
    Shutdown,
}

/// A master-to-client message: the reply to one [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// The request was applied; nothing further to say.
    Ack,
    /// A leased shard, together with the campaign it belongs to (workers
    /// are stateless between connections, so every assignment is
    /// self-contained).
    Assignment {
        /// The campaign configuration the shard is part of.
        config: CampaignConfig,
        /// The shard to execute.
        shard: Shard,
    },
    /// No shard is available right now; poll again shortly.
    Wait,
    /// The job is finished (or the master is draining): the worker should
    /// exit its lease loop.
    Exit,
    /// A submitted campaign was planned and queued.
    Submitted {
        /// Number of shards in the plan.
        shards: usize,
        /// Total scenarios across the plan.
        scenarios: usize,
    },
    /// The job's progress counters.
    Status {
        /// The progress snapshot.
        status: StatusReport,
    },
    /// The completed campaign report, as the **verbatim** canonical JSON of
    /// `CampaignReport::to_json` — kept as a string so the client can write
    /// it to disk byte-identically to a single-process run.
    Results {
        /// Canonical report JSON.
        report_json: String,
    },
    /// The results are not ready yet (shards still pending or running).
    NotReady,
    /// The request could not be applied.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// A snapshot of the master's job state, for `status` clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Whether a job has been submitted.
    pub has_job: bool,
    /// Total shards in the current plan.
    pub shards: usize,
    /// Shards not yet leased (including requeued ones).
    pub pending: usize,
    /// Shards currently leased to a live worker.
    pub running: usize,
    /// Shards whose results are in the store.
    pub done: usize,
    /// Whether every slot is filled.
    pub complete: bool,
    /// Workers currently considered alive.
    pub workers: usize,
    /// Shards requeued from workers that missed their heartbeat deadline.
    pub requeues: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let req = Request::Push {
            worker: "w-1".to_string(),
            shard: 3,
            results: Vec::new(),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req).unwrap();
        assert_eq!(
            u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize,
            wire.len() - 4
        );
        let back: Request = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        wire.extend_from_slice(b"{}");
        assert_eq!(
            read_frame::<Request>(&mut wire.as_slice())
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_frames_error_instead_of_hanging() {
        let req = Request::Status;
        let mut wire = Vec::new();
        write_frame(&mut wire, &req).unwrap();
        wire.pop();
        assert!(read_frame::<Request>(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn requests_and_replies_survive_json() {
        let cfg = CampaignConfig::over_catalog(3..=3);
        let shard = cfg.plan().unwrap().shards.remove(0);
        let messages = [
            Reply::Ack,
            Reply::Wait,
            Reply::Exit,
            Reply::NotReady,
            Reply::Assignment {
                config: cfg.clone(),
                shard,
            },
            Reply::Submitted {
                shards: 6,
                scenarios: 6,
            },
            Reply::Status {
                status: StatusReport {
                    has_job: true,
                    shards: 6,
                    pending: 1,
                    running: 2,
                    done: 3,
                    complete: false,
                    workers: 2,
                    requeues: 1,
                },
            },
            Reply::Error {
                message: "no".to_string(),
            },
        ];
        for msg in &messages {
            let json = serde_json::to_string(msg).unwrap();
            let back: Reply = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, msg);
        }
    }
}
