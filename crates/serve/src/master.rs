//! The campaign master: job state, shard leasing and heartbeat failover.
//!
//! The master owns one job at a time: a planned campaign whose shards move
//! through `Pending → Running → Done`. Workers lease pending shards,
//! execute them with `min_sim::campaign::execute_shard`, and push results
//! back; a monitor requeues the shards of any worker that misses its
//! heartbeat deadline. Because shards are index-addressed and scenario
//! seeds are derived per index, a requeued shard re-executes to
//! byte-identical results on any other worker — pushes are therefore
//! idempotent: the first one fills the slot, later duplicates are
//! acknowledged and discarded.
//!
//! Connections are served sequentially (one request/reply per connection,
//! see [`crate::protocol`]) off a non-blocking accept loop, with the
//! failover monitor running between accepts. Campaign execution happens in
//! the workers, so the master's work per exchange is a lease table update
//! or a report merge — never a simulation.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use min_sim::campaign::{CampaignConfig, CampaignReport, Shard};

use crate::protocol::{read_frame, write_frame, Reply, Request, StatusReport};

/// Tuning knobs of a [`Master`].
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// A worker that has not been heard from (lease, push, or heartbeat)
    /// for this long is declared dead and its running shards are requeued.
    pub heartbeat_timeout: Duration,
    /// When `true`, the master exits once a job has completed **and** its
    /// results have been served to a client — the mode integration tests
    /// and the CI smoke job run in. When `false` the master stays up for
    /// further submissions until a `Shutdown` request.
    pub once: bool,
    /// Idle sleep between accept attempts; also bounds how stale the
    /// failover monitor can be.
    pub tick: Duration,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            heartbeat_timeout: Duration::from_secs(10),
            once: false,
            tick: Duration::from_millis(5),
        }
    }
}

impl MasterConfig {
    /// Per-connection socket read/write timeout, derived from the
    /// heartbeat timeout: half of it, floored at 100 ms. Tying the two
    /// together keeps a wedged peer from stalling the accept loop longer
    /// than a failover round, and keeps short-heartbeat test configurations
    /// from racing a (previously hard-coded 10 s) socket timeout.
    pub fn io_timeout(&self) -> Duration {
        (self.heartbeat_timeout / 2).max(Duration::from_millis(100))
    }
}

/// Lifecycle of one shard slot.
#[derive(Debug, Clone)]
enum Slot {
    /// Not yet leased (or requeued after its worker died).
    Pending,
    /// Leased to the named worker.
    Running {
        worker: String,
    },
    Done,
}

/// The active job: a planned campaign plus its slot table and the
/// accumulating results store.
struct Job {
    config: CampaignConfig,
    shards: Vec<Shard>,
    slots: Vec<Slot>,
    store: CampaignReport,
    done: usize,
    requeues: u64,
}

impl Job {
    fn complete(&self) -> bool {
        self.done == self.slots.len()
    }
}

/// The distributed campaign master. Bind with [`Master::bind`], then hand
/// the thread to [`Master::run`].
pub struct Master {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: MasterConfig,
    job: Option<Job>,
    /// Worker name → last time it was heard from.
    workers: HashMap<String, Instant>,
    served_results: bool,
    shutdown: bool,
}

impl Master {
    /// Binds the master to `addr` (use port `0` for an ephemeral port; the
    /// chosen address is available via [`Master::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: MasterConfig) -> io::Result<Master> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Master {
            listener,
            local_addr,
            config,
            job: None,
            workers: HashMap::new(),
            served_results: false,
            shutdown: false,
        })
    }

    /// The address the master is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves requests until shut down — or, in [`MasterConfig::once`]
    /// mode, until a completed job's results have been served.
    pub fn run(mut self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Ignore per-connection failures (a worker dying mid
                    // exchange must not take the master down); failover
                    // handles the fallout.
                    let _ = self.serve_connection(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.config.tick);
                }
                Err(e) => return Err(e),
            }
            self.monitor();
            if self.should_exit() {
                return Ok(());
            }
        }
    }

    fn should_exit(&self) -> bool {
        if self.shutdown {
            return true;
        }
        self.config.once && self.served_results && self.job.as_ref().is_some_and(Job::complete)
    }

    fn serve_connection(&mut self, mut stream: TcpStream) -> io::Result<()> {
        // The listener is non-blocking; the accepted stream must not be
        // (inheritance is platform-specific). Timeouts keep a wedged peer
        // from stalling the accept loop forever.
        stream.set_nonblocking(false)?;
        let io_timeout = self.config.io_timeout();
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let request: Request = read_frame(&mut stream)?;
        let reply = self.handle(request);
        write_frame(&mut stream, &reply)
    }

    fn touch(&mut self, worker: &str) {
        self.workers.insert(worker.to_string(), Instant::now());
    }

    fn handle(&mut self, request: Request) -> Reply {
        match request {
            Request::Register { worker } | Request::Heartbeat { worker } => {
                self.touch(&worker);
                Reply::Ack
            }
            Request::Lease { worker } => {
                self.touch(&worker);
                self.lease(&worker)
            }
            Request::Push {
                shard,
                results,
                worker,
            } => {
                self.touch(&worker);
                self.push(shard, results)
            }
            Request::Submit {
                config,
                points_per_shard,
            } => self.submit(config, points_per_shard),
            Request::Status => Reply::Status {
                status: self.status(),
            },
            Request::Results => match &self.job {
                Some(job) if job.complete() => {
                    self.served_results = true;
                    Reply::Results {
                        report_json: self.job.as_ref().expect("checked").store.to_json(),
                    }
                }
                Some(_) => Reply::NotReady,
                None => Reply::Error {
                    message: "no job submitted".to_string(),
                },
            },
            Request::Shutdown => {
                self.shutdown = true;
                Reply::Ack
            }
        }
    }

    fn lease(&mut self, worker: &str) -> Reply {
        let once = self.config.once;
        let Some(job) = self.job.as_mut() else {
            return Reply::Wait;
        };
        if job.complete() {
            // In once mode the job is the master's whole life: drain the
            // worker pool. A persistent master keeps workers polling for
            // the next submission instead.
            return if once { Reply::Exit } else { Reply::Wait };
        }
        match job.slots.iter().position(|s| matches!(s, Slot::Pending)) {
            Some(id) => {
                job.slots[id] = Slot::Running {
                    worker: worker.to_string(),
                };
                Reply::Assignment {
                    config: job.config.clone(),
                    shard: job.shards[id].clone(),
                }
            }
            // Everything is leased out but not yet done; the poller may
            // still inherit a requeued shard.
            None => Reply::Wait,
        }
    }

    fn push(&mut self, shard: usize, results: Vec<min_sim::campaign::ScenarioResult>) -> Reply {
        let Some(job) = self.job.as_mut() else {
            return Reply::Error {
                message: "no job submitted".to_string(),
            };
        };
        if shard >= job.slots.len() {
            return Reply::Error {
                message: format!("shard {shard} out of range ({} shards)", job.slots.len()),
            };
        }
        if matches!(job.slots[shard], Slot::Done) {
            // A worker declared dead can still come back with the results
            // of a shard that was requeued and re-executed elsewhere.
            // Execution is deterministic, so the bytes are the same either
            // way: first push wins, duplicates are discarded.
            return Reply::Ack;
        }
        let partial = match CampaignReport::partial(&job.config, results) {
            Ok(partial) => partial,
            Err(e) => {
                return Reply::Error {
                    message: format!("rejected results for shard {shard}: {e}"),
                }
            }
        };
        if let Err(e) = job.store.merge(&partial) {
            return Reply::Error {
                message: format!("rejected results for shard {shard}: {e}"),
            };
        }
        job.slots[shard] = Slot::Done;
        job.done += 1;
        Reply::Ack
    }

    fn submit(&mut self, config: CampaignConfig, points_per_shard: usize) -> Reply {
        if self.job.as_ref().is_some_and(|job| !job.complete()) {
            return Reply::Error {
                message: "a job is already in progress".to_string(),
            };
        }
        let plan = match config.plan_chunked(points_per_shard) {
            Ok(plan) => plan,
            Err(e) => {
                return Reply::Error {
                    message: format!("invalid campaign: {e}"),
                }
            }
        };
        let shards = plan.shards;
        let scenarios = shards.iter().map(Shard::len).sum();
        let store = CampaignReport::empty(&config);
        self.served_results = false;
        self.job = Some(Job {
            config,
            slots: vec![Slot::Pending; shards.len()],
            shards,
            store,
            done: 0,
            requeues: 0,
        });
        Reply::Submitted {
            shards: self.job.as_ref().expect("just set").shards.len(),
            scenarios,
        }
    }

    fn status(&self) -> StatusReport {
        let mut status = StatusReport {
            has_job: self.job.is_some(),
            shards: 0,
            pending: 0,
            running: 0,
            done: 0,
            complete: false,
            workers: self.workers.len(),
            requeues: 0,
        };
        if let Some(job) = &self.job {
            status.shards = job.slots.len();
            for slot in &job.slots {
                match slot {
                    Slot::Pending => status.pending += 1,
                    Slot::Running { .. } => status.running += 1,
                    Slot::Done => status.done += 1,
                }
            }
            status.complete = job.complete();
            status.requeues = job.requeues;
        }
        status
    }

    /// The failover monitor: drops workers that have missed their
    /// heartbeat deadline and requeues every shard they were running.
    fn monitor(&mut self) {
        let timeout = self.config.heartbeat_timeout;
        let now = Instant::now();
        let dead: Vec<String> = self
            .workers
            .iter()
            .filter(|(_, last_seen)| now.duration_since(**last_seen) > timeout)
            .map(|(name, _)| name.clone())
            .collect();
        if dead.is_empty() {
            return;
        }
        for name in &dead {
            self.workers.remove(name);
        }
        if let Some(job) = self.job.as_mut() {
            for slot in job.slots.iter_mut() {
                if matches!(slot, Slot::Running { worker } if dead.contains(worker)) {
                    *slot = Slot::Pending;
                    job.requeues += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_timeout_tracks_the_heartbeat_timeout() {
        let default = MasterConfig::default();
        assert_eq!(default.io_timeout(), Duration::from_secs(5));
        // Short failover configurations (the failover tests run a 400 ms
        // heartbeat) get a proportionally short socket timeout...
        let short = MasterConfig {
            heartbeat_timeout: Duration::from_millis(400),
            ..MasterConfig::default()
        };
        assert_eq!(short.io_timeout(), Duration::from_millis(200));
        // ...down to a floor that still tolerates loopback latency.
        let tiny = MasterConfig {
            heartbeat_timeout: Duration::from_millis(50),
            ..MasterConfig::default()
        };
        assert_eq!(tiny.io_timeout(), Duration::from_millis(100));
    }
}
