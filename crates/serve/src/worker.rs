//! The campaign worker: lease, execute, push, heartbeat.
//!
//! A worker is a stateless loop over one-shot connections to the master
//! (see [`crate::protocol`]): register, then lease a shard, execute it with
//! the pure `min_sim::campaign::execute_shard`, push the slotted results,
//! and repeat until the master says [`Reply::Exit`] or goes away. While a
//! shard is executing, a side thread sends heartbeats so the master's
//! failover monitor can tell "slow" from "dead".
//!
//! For failover testing, [`WorkerConfig::die_after_leases`] makes the
//! worker abandon the loop right after its *n*-th lease — holding a shard
//! it will never execute, exactly like a crashed machine — so integration
//! tests and the CI smoke job can exercise the requeue path
//! deterministically.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use min_sim::campaign::execute_shard;

use crate::client::request;
use crate::protocol::{Reply, Request};

/// Tuning knobs of a worker loop.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Master address, e.g. `127.0.0.1:7077`.
    pub master: String,
    /// The worker's name: its identity for leases and failover.
    pub name: String,
    /// Interval between heartbeats while executing a shard. Keep well
    /// under the master's heartbeat timeout.
    pub heartbeat: Duration,
    /// Sleep between lease attempts while the master has no work.
    pub poll: Duration,
    /// Consecutive failed connections to the master before the worker
    /// gives up. Covers both "master not up yet" at startup and "master
    /// exited after serving results" at the end.
    pub max_connect_failures: u32,
    /// Abandon the loop immediately after the *n*-th successful lease,
    /// without executing, pushing, or heartbeating — a deterministic
    /// stand-in for a worker crash, used by the failover tests.
    pub die_after_leases: Option<usize>,
}

impl WorkerConfig {
    /// A worker with default timing (1s heartbeat, 50ms poll) for the
    /// given master address and name.
    pub fn new(master: impl Into<String>, name: impl Into<String>) -> Self {
        WorkerConfig {
            master: master.into(),
            name: name.into(),
            heartbeat: Duration::from_secs(1),
            poll: Duration::from_millis(50),
            max_connect_failures: 100,
            die_after_leases: None,
        }
    }
}

/// What a finished worker loop did, for logging and test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSummary {
    /// Shards leased from the master.
    pub leased: usize,
    /// Shards executed and pushed back.
    pub executed: usize,
    /// Whether the loop ended via [`WorkerConfig::die_after_leases`].
    pub died: bool,
}

/// Runs the worker loop until the master drains it ([`Reply::Exit`]),
/// disappears, or the configured simulated crash fires.
pub fn run_worker(config: &WorkerConfig) -> io::Result<WorkerSummary> {
    let mut summary = WorkerSummary::default();
    let mut failures = 0u32;
    retrying(config, &mut failures, |c| {
        request(
            &c.master,
            &Request::Register {
                worker: c.name.clone(),
            },
        )
    })?;
    loop {
        let reply = match retrying(config, &mut failures, |c| {
            request(
                &c.master,
                &Request::Lease {
                    worker: c.name.clone(),
                },
            )
        }) {
            Ok(reply) => reply,
            // The master is gone for good. If it ever gave us work, the
            // job is simply over; propagate only a cold start failure.
            Err(_) if summary.leased > 0 => return Ok(summary),
            Err(e) => return Err(e),
        };
        match reply {
            Reply::Assignment {
                config: campaign,
                shard,
            } => {
                summary.leased += 1;
                if config.die_after_leases == Some(summary.leased) {
                    summary.died = true;
                    return Ok(summary);
                }
                let shard_id = shard.id;
                let results = {
                    let _beat = Heartbeat::start(config);
                    execute_shard(&campaign, &shard).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("shard {shard_id} failed: {e}"),
                        )
                    })?
                };
                let pushed = retrying(config, &mut failures, move |c| {
                    request(
                        &c.master,
                        &Request::Push {
                            worker: c.name.clone(),
                            shard: shard_id,
                            results: results.clone(),
                        },
                    )
                });
                match pushed {
                    Ok(Reply::Ack) => summary.executed += 1,
                    Ok(other) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("push of shard {shard_id} rejected: {other:?}"),
                        ))
                    }
                    // The master vanished mid-push: there is no one left to
                    // deliver results to, so the loop is over.
                    Err(_) => return Ok(summary),
                }
            }
            Reply::Wait => std::thread::sleep(config.poll),
            Reply::Exit => return Ok(summary),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected master reply: {other:?}"),
                ))
            }
        }
    }
}

/// Retries a master exchange across transient connection failures, up to
/// [`WorkerConfig::max_connect_failures`] consecutive ones.
fn retrying<T>(
    config: &WorkerConfig,
    failures: &mut u32,
    mut exchange: impl FnMut(&WorkerConfig) -> io::Result<T>,
) -> io::Result<T> {
    loop {
        match exchange(config) {
            Ok(value) => {
                *failures = 0;
                return Ok(value);
            }
            Err(e) => {
                *failures += 1;
                if *failures >= config.max_connect_failures {
                    return Err(e);
                }
                std::thread::sleep(config.poll);
            }
        }
    }
}

/// A heartbeat ticker: sends [`Request::Heartbeat`] every
/// [`WorkerConfig::heartbeat`] until dropped.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(config: &WorkerConfig) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let master = config.master.clone();
        let name = config.name.clone();
        let interval = config.heartbeat;
        let handle = std::thread::spawn(move || {
            let step = Duration::from_millis(10).min(interval);
            let mut since_beat = interval; // beat immediately on start
            while !flag.load(Ordering::Relaxed) {
                if since_beat >= interval {
                    // A missed heartbeat is the master's problem to
                    // notice, not ours to crash on.
                    let _ = request(
                        &master,
                        &Request::Heartbeat {
                            worker: name.clone(),
                        },
                    );
                    since_beat = Duration::ZERO;
                }
                std::thread::sleep(step);
                since_beat += step;
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
