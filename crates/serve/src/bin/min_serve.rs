//! `min_serve` — the distributed campaign service CLI.
//!
//! One binary, four roles:
//!
//! ```text
//! min_serve master   --listen 127.0.0.1:7077 [--heartbeat-timeout-ms 10000] [--once]
//! min_serve worker   --connect 127.0.0.1:7077 [--name w0] [--heartbeat-ms 1000]
//!                    [--poll-ms 50] [--die-after-leases N]
//! min_serve submit   --connect 127.0.0.1:7077 --config grid.json
//!                    [--points-per-shard 1] [--wait] [--output report.json]
//! min_serve status   --connect 127.0.0.1:7077
//! min_serve results  --connect 127.0.0.1:7077 [--output report.json]
//! min_serve shutdown --connect 127.0.0.1:7077
//! min_serve run-local  --config grid.json [--threads 0] [--output report.json]
//! min_serve gen-config [--preset smoke] [--output grid.json]
//! ```
//!
//! `run-local` executes the same campaign in process (the single-machine
//! baseline the distributed report must match byte-for-byte) and
//! `gen-config` writes a canonical campaign JSON, so the CI determinism
//! gate is three invocations and a `cmp`.

use std::io::{self, Write as _};
use std::time::Duration;

use min_serve::{client, CampaignConfig, Master, MasterConfig, WorkerConfig};
use min_sim::campaign::run_campaign;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("min_serve: {message}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((verb, rest)) = args.split_first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    let mut opts = Opts::parse(rest)?;
    match verb.as_str() {
        "master" => cmd_master(&mut opts),
        "worker" => cmd_worker(&mut opts),
        "submit" => cmd_submit(&mut opts),
        "status" => cmd_status(&mut opts),
        "results" => cmd_results(&mut opts),
        "shutdown" => cmd_shutdown(&mut opts),
        "run-local" => cmd_run_local(&mut opts),
        "gen-config" => cmd_gen_config(&mut opts),
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

const USAGE: &str = "usage: min_serve <master|worker|submit|status|results|shutdown|run-local|gen-config> [options]";

/// Parsed `--flag value` / `--flag` options, consumed by each subcommand.
struct Opts {
    entries: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut entries = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            if !flag.starts_with("--") {
                return Err(format!("unexpected argument `{flag}`"));
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked").clone()),
                _ => None,
            };
            entries.push((flag.clone(), value));
        }
        Ok(Opts { entries })
    }

    /// Removes and returns `--flag value`.
    fn take(&mut self, flag: &str) -> Result<Option<String>, String> {
        match self.entries.iter().position(|(f, _)| f == flag) {
            Some(i) => {
                let (_, value) = self.entries.remove(i);
                value
                    .ok_or_else(|| format!("{flag} needs a value"))
                    .map(Some)
            }
            None => Ok(None),
        }
    }

    /// Removes and returns a valueless `--flag`.
    fn take_bool(&mut self, flag: &str) -> Result<bool, String> {
        match self.entries.iter().position(|(f, _)| f == flag) {
            Some(i) => {
                let (_, value) = self.entries.remove(i);
                match value {
                    None => Ok(true),
                    Some(v) => Err(format!("{flag} takes no value (got `{v}`)")),
                }
            }
            None => Ok(false),
        }
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, String> {
        match self.take(flag)? {
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("{flag}: cannot parse `{text}`")),
            None => Ok(None),
        }
    }

    fn finish(&self) -> Result<(), String> {
        match self.entries.first() {
            Some((flag, _)) => Err(format!("unknown option `{flag}`")),
            None => Ok(()),
        }
    }
}

fn io_err(err: io::Error) -> String {
    err.to_string()
}

fn connect_addr(opts: &mut Opts) -> Result<String, String> {
    opts.take("--connect")?
        .ok_or_else(|| "--connect <addr> is required".to_string())
}

fn write_output(opts: &mut Opts, text: &str) -> Result<(), String> {
    match opts.take("--output")? {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut stdout = io::stdout().lock();
            stdout
                .write_all(text.as_bytes())
                .and_then(|()| stdout.write_all(b"\n"))
                .map_err(io_err)
        }
    }
}

fn load_config(opts: &mut Opts) -> Result<CampaignConfig, String> {
    let path = opts
        .take("--config")?
        .ok_or_else(|| "--config <file> is required".to_string())?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_master(opts: &mut Opts) -> Result<(), String> {
    let listen = opts
        .take("--listen")?
        .unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let mut config = MasterConfig::default();
    if let Some(ms) = opts.take_parsed::<u64>("--heartbeat-timeout-ms")? {
        config.heartbeat_timeout = Duration::from_millis(ms);
    }
    config.once = opts.take_bool("--once")?;
    opts.finish()?;
    let master = Master::bind(listen.as_str(), config).map_err(io_err)?;
    println!("master listening on {}", master.local_addr());
    master.run().map_err(io_err)
}

fn cmd_worker(opts: &mut Opts) -> Result<(), String> {
    let master = connect_addr(opts)?;
    let name = opts
        .take("--name")?
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let mut config = WorkerConfig::new(master, name);
    if let Some(ms) = opts.take_parsed::<u64>("--heartbeat-ms")? {
        config.heartbeat = Duration::from_millis(ms);
    }
    if let Some(ms) = opts.take_parsed::<u64>("--poll-ms")? {
        config.poll = Duration::from_millis(ms);
    }
    config.die_after_leases = opts.take_parsed::<usize>("--die-after-leases")?;
    opts.finish()?;
    let summary = min_serve::run_worker(&config).map_err(io_err)?;
    println!(
        "worker {}: leased {}, executed {}{}",
        config.name,
        summary.leased,
        summary.executed,
        if summary.died {
            ", died (injected)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_submit(opts: &mut Opts) -> Result<(), String> {
    let addr = connect_addr(opts)?;
    let config = load_config(opts)?;
    let points = opts
        .take_parsed::<usize>("--points-per-shard")?
        .unwrap_or(1);
    let wait = opts.take_bool("--wait")?;
    let poll = Duration::from_millis(opts.take_parsed::<u64>("--poll-ms")?.unwrap_or(200));
    let (shards, scenarios) = client::submit(addr.as_str(), &config, points).map_err(io_err)?;
    eprintln!("submitted: {shards} shards, {scenarios} scenarios");
    if wait {
        let report_json = client::wait_for_results(addr.as_str(), poll).map_err(io_err)?;
        write_output(opts, &report_json)?;
    }
    opts.finish()
}

fn cmd_status(opts: &mut Opts) -> Result<(), String> {
    let addr = connect_addr(opts)?;
    opts.finish()?;
    let s = client::status(addr.as_str()).map_err(io_err)?;
    if !s.has_job {
        println!("no job submitted");
        return Ok(());
    }
    println!(
        "shards {}: {} pending, {} running, {} done · {} workers · {} requeues · {}",
        s.shards,
        s.pending,
        s.running,
        s.done,
        s.workers,
        s.requeues,
        if s.complete {
            "complete"
        } else {
            "in progress"
        }
    );
    Ok(())
}

fn cmd_results(opts: &mut Opts) -> Result<(), String> {
    let addr = connect_addr(opts)?;
    match client::results(addr.as_str()).map_err(io_err)? {
        Some(report_json) => {
            write_output(opts, &report_json)?;
            opts.finish()
        }
        None => Err("results not ready (shards still outstanding)".to_string()),
    }
}

fn cmd_shutdown(opts: &mut Opts) -> Result<(), String> {
    let addr = connect_addr(opts)?;
    opts.finish()?;
    client::shutdown(addr.as_str()).map_err(io_err)
}

fn cmd_run_local(opts: &mut Opts) -> Result<(), String> {
    let config = load_config(opts)?;
    let threads = opts.take_parsed::<usize>("--threads")?.unwrap_or(0);
    let report = run_campaign(&config, threads).map_err(|e| e.to_string())?;
    write_output(opts, &report.to_json())?;
    opts.finish()
}

fn cmd_gen_config(opts: &mut Opts) -> Result<(), String> {
    let preset = opts
        .take("--preset")?
        .unwrap_or_else(|| "smoke".to_string());
    let config = preset_config(&preset)?;
    let json = serde_json::to_string(&config).map_err(|e| e.to_string())?;
    write_output(opts, &json)?;
    opts.finish()
}

/// Canonical campaign presets for CI and demos.
fn preset_config(preset: &str) -> Result<CampaignConfig, String> {
    use min_sim::{FaultPlan, TrafficPattern};
    match preset {
        // Small enough to finish in seconds, rich enough to cross every
        // distributed code path: several shards per worker, a fault axis
        // (so path-diversity histograms flow through the wire), and two
        // replications per grid point.
        "smoke" => Ok(CampaignConfig::over_catalog(3..=3)
            .with_traffic(vec![TrafficPattern::Uniform, TrafficPattern::BitReversal])
            .with_loads(vec![0.35, 0.85])
            .with_fault_plans(vec![
                FaultPlan::none(),
                FaultPlan::none().with_dead_link(1, 0, 1, 0),
            ])
            .with_replications(2)
            .with_cycles(150, 20)),
        // The default catalog sweep, unchanged.
        "catalog" => Ok(CampaignConfig::default()),
        other => Err(format!(
            "unknown preset `{other}` (try `smoke` or `catalog`)"
        )),
    }
}
