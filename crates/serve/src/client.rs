//! One-shot client helpers: the `submit` / `status` / `results` verbs.
//!
//! Each helper opens a fresh connection, performs exactly one
//! request/reply exchange (see [`crate::protocol`]) and closes it — the
//! same discipline the workers follow.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use min_sim::campaign::CampaignConfig;

use crate::protocol::{read_frame, write_frame, Reply, Request, StatusReport};

/// Performs one request/reply exchange with the master at `addr`.
pub fn request(addr: impl ToSocketAddrs, req: &Request) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    write_frame(&mut stream, req)?;
    read_frame(&mut stream)
}

fn unexpected(reply: Reply) -> io::Error {
    let message = match reply {
        Reply::Error { message } => message,
        other => format!("unexpected master reply: {other:?}"),
    };
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Submits a campaign; returns `(shards, scenarios)` of the queued plan.
pub fn submit(
    addr: impl ToSocketAddrs,
    config: &CampaignConfig,
    points_per_shard: usize,
) -> io::Result<(usize, usize)> {
    match request(
        addr,
        &Request::Submit {
            config: config.clone(),
            points_per_shard,
        },
    )? {
        Reply::Submitted { shards, scenarios } => Ok((shards, scenarios)),
        other => Err(unexpected(other)),
    }
}

/// Fetches the master's progress snapshot.
pub fn status(addr: impl ToSocketAddrs) -> io::Result<StatusReport> {
    match request(addr, &Request::Status)? {
        Reply::Status { status } => Ok(status),
        other => Err(unexpected(other)),
    }
}

/// Fetches the completed report's canonical JSON, or `None` while shards
/// are still outstanding.
pub fn results(addr: impl ToSocketAddrs) -> io::Result<Option<String>> {
    match request(addr, &Request::Results)? {
        Reply::Results { report_json } => Ok(Some(report_json)),
        Reply::NotReady => Ok(None),
        other => Err(unexpected(other)),
    }
}

/// Polls [`status`] every `poll` until the job completes, then returns the
/// report JSON via [`results`].
pub fn wait_for_results(addr: impl ToSocketAddrs + Clone, poll: Duration) -> io::Result<String> {
    loop {
        if status(addr.clone())?.complete {
            if let Some(report_json) = results(addr.clone())? {
                return Ok(report_json);
            }
        }
        std::thread::sleep(poll);
    }
}

/// Asks the master to exit.
pub fn shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    match request(addr, &Request::Shutdown)? {
        Reply::Ack => Ok(()),
        other => Err(unexpected(other)),
    }
}
