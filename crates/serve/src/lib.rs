//! # `min-serve` — distributed execution of `min-sim` campaign plans
//!
//! The campaign API of `min-sim` splits a run into three phases — `plan()`
//! expands the grid into ordered, index-addressed [`Shard`]s,
//! `execute_shard()` is a pure function from a shard to its slotted
//! results, and `assemble()` slots results back into the report. This crate
//! is the second executor of that plan (the first being the in-process
//! scoped-thread runner): a [`master::Master`] that owns the job state and
//! a results store, [`worker::run_worker`] loops that lease shards over a
//! length-prefixed JSON TCP protocol ([`protocol`]), and one-shot
//! [`client`] verbs (`submit` / `status` / `results`) plus the `min_serve`
//! CLI binary wrapping all three roles.
//!
//! ## Why the determinism invariant makes this easy
//!
//! Every scenario carries a seed derived from `(campaign_seed,
//! scenario_index)`, so executing a shard is reproducible **anywhere**:
//! any worker, any retry, any machine produces byte-identical results for
//! the same shard. Consequences the design leans on:
//!
//! * **slot-addressed results store** — the master folds pushed results
//!   into a `CampaignReport` by canonical scenario index
//!   (`CampaignReport::merge`); arrival order is irrelevant;
//! * **idempotent failover** — when a worker misses its heartbeat deadline
//!   its running shards are simply requeued; if the "dead" worker pushes
//!   after all, the duplicate is discarded, because a re-executed shard
//!   would have produced the same bytes anyway;
//! * **a wire-level oracle** — the finished report (and its canonical
//!   JSON) from a master with any number of workers, including runs where
//!   workers are killed mid-campaign, is byte-identical to
//!   `run_campaign(&config, 1)` in one process. The integration tests and
//!   the CI `serve-smoke` job `cmp` exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod master;
pub mod protocol;
pub mod worker;

pub use client::{results, shutdown, status, submit, wait_for_results};
pub use master::{Master, MasterConfig};
pub use protocol::{Reply, Request, StatusReport};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

// Re-exported so protocol consumers name shard types without a direct
// `min-sim` dependency.
pub use min_sim::campaign::{CampaignConfig, CampaignReport, Shard};
