//! End-to-end distributed execution: a master and several workers on
//! localhost must reproduce the single-process campaign report
//! byte-for-byte — the wire-level form of the determinism oracle.

use std::time::Duration;

use min_serve::{client, Master, MasterConfig, WorkerConfig};
use min_sim::campaign::{run_campaign, CampaignConfig, CampaignReport};
use min_sim::FaultPlan;
use min_sim::TrafficPattern;
use min_sim::{TraceData, TraceRecord};

/// A grid small enough for CI but wide enough to produce many shards and
/// exercise the fault/path-diversity plumbing — and every production-shaped
/// traffic pattern (Zipf, ON/OFF, trace replay) — across the wire.
fn grid() -> CampaignConfig {
    // The n=3 catalog cells have 4 cells per stage = 8 terminals.
    let trace = TraceData {
        cells: 4,
        period: 4,
        records: vec![
            TraceRecord {
                cycle: 0,
                source: 0,
                dest: 3,
            },
            TraceRecord {
                cycle: 0,
                source: 5,
                dest: 3,
            },
            TraceRecord {
                cycle: 2,
                source: 7,
                dest: 0,
            },
        ],
    };
    CampaignConfig::over_catalog(3..=3)
        .with_traffic(vec![
            TrafficPattern::Uniform,
            TrafficPattern::BitReversal,
            TrafficPattern::Zipf { exponent: 1.1 },
            TrafficPattern::OnOff {
                on_dwell: 10.0,
                off_dwell: 5.0,
                on_rate: 0.9,
            },
            TrafficPattern::Trace(trace),
        ])
        .with_loads(vec![0.35, 0.85])
        .with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::none().with_dead_link(1, 0, 1, 0),
        ])
        .with_replications(2)
        .with_cycles(120, 20)
}

fn fast_worker(addr: std::net::SocketAddr, name: &str) -> WorkerConfig {
    let mut config = WorkerConfig::new(addr.to_string(), name);
    config.heartbeat = Duration::from_millis(50);
    config.poll = Duration::from_millis(10);
    config
}

#[test]
fn master_with_two_workers_matches_the_single_process_report() {
    let config = grid();
    let reference = run_campaign(&config, 1).unwrap().to_json();

    let master = Master::bind(
        "127.0.0.1:0",
        MasterConfig {
            heartbeat_timeout: Duration::from_secs(5),
            once: true,
            tick: Duration::from_millis(2),
        },
    )
    .unwrap();
    let addr = master.local_addr();
    let master = std::thread::spawn(move || master.run().unwrap());

    let (shards, scenarios) = client::submit(addr, &config, 2).unwrap();
    assert_eq!(scenarios, config.scenario_count());
    assert!(shards > 2, "want more shards than workers, got {shards}");

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let worker = fast_worker(addr, &format!("w{i}"));
            std::thread::spawn(move || min_serve::run_worker(&worker).unwrap())
        })
        .collect();

    let report_json = client::wait_for_results(addr, Duration::from_millis(20)).unwrap();
    assert_eq!(report_json, reference);
    // The string is the canonical rendering: it parses back to the same
    // report the in-process runner produced.
    let report = CampaignReport::from_json(&report_json).unwrap();
    assert!(report.is_complete_for(&config));

    let summaries: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let executed: usize = summaries.iter().map(|s| s.executed).sum();
    assert_eq!(executed, shards);
    assert!(
        summaries.iter().all(|s| s.executed > 0),
        "both workers should get work: {summaries:?}"
    );
    master.join().unwrap();
}

#[test]
fn status_results_and_resubmission_follow_the_protocol() {
    let config = grid().with_loads(vec![0.5]).with_replications(1);
    let master = Master::bind("127.0.0.1:0", MasterConfig::default()).unwrap();
    let addr = master.local_addr();
    let master_thread = std::thread::spawn(move || master.run().unwrap());

    // Before any submission: no results, empty status.
    let status = client::status(addr).unwrap();
    assert!(!status.has_job);
    assert!(client::results(addr).is_err());

    let (shards, _) = client::submit(addr, &config, 1).unwrap();
    let status = client::status(addr).unwrap();
    assert!(status.has_job);
    assert_eq!(status.pending, shards);
    assert_eq!(client::results(addr).unwrap(), None);

    // A second submission while the first is in flight is refused.
    assert!(client::submit(addr, &config, 1).is_err());

    let worker = fast_worker(addr, "w0");
    let worker = std::thread::spawn(move || min_serve::run_worker(&worker).unwrap());
    let report_json = client::wait_for_results(addr, Duration::from_millis(20)).unwrap();
    assert_eq!(report_json, run_campaign(&config, 1).unwrap().to_json());

    // The master is persistent (once = false): a fresh submission after
    // completion replaces the finished job.
    let (shards2, _) = client::submit(addr, &config, 2).unwrap();
    assert!(shards2 < shards);

    client::shutdown(addr).unwrap();
    master_thread.join().unwrap();
    worker.join().unwrap();
}
