//! Failover oracle: a worker that dies holding a leased shard must not
//! perturb the campaign — the master requeues the shard after the
//! heartbeat deadline, a surviving worker re-executes it, and the final
//! report is byte-identical to the single-process run.

use std::time::{Duration, Instant};

use min_serve::{client, Master, MasterConfig, WorkerConfig};
use min_sim::campaign::{run_campaign, CampaignConfig};
use min_sim::FaultPlan;
use min_sim::TrafficPattern;

#[test]
fn a_worker_killed_mid_campaign_does_not_perturb_the_report() {
    let config = CampaignConfig::over_catalog(3..=3)
        .with_traffic(vec![TrafficPattern::Uniform, TrafficPattern::BitReversal])
        .with_loads(vec![0.4, 0.9])
        .with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::none().with_dead_link(0, 1, 1, 0),
        ])
        .with_replications(2)
        .with_cycles(100, 10);
    let reference = run_campaign(&config, 1).unwrap().to_json();

    let master = Master::bind(
        "127.0.0.1:0",
        MasterConfig {
            // Short enough that the test requeues quickly, long enough
            // that a live worker's 50ms heartbeat can never miss it.
            heartbeat_timeout: Duration::from_millis(400),
            once: true,
            tick: Duration::from_millis(2),
        },
    )
    .unwrap();
    let addr = master.local_addr();
    let master = std::thread::spawn(move || master.run().unwrap());

    let (shards, _) = client::submit(addr, &config, 2).unwrap();

    // The doomed worker runs first, synchronously: it leases one shard and
    // "crashes" — no results, no heartbeats, the shard stuck `Running`.
    let mut doomed = WorkerConfig::new(addr.to_string(), "doomed");
    doomed.poll = Duration::from_millis(10);
    doomed.die_after_leases = Some(1);
    let crash = min_serve::run_worker(&doomed).unwrap();
    assert!(crash.died);
    assert_eq!(crash.leased, 1);
    assert_eq!(crash.executed, 0);

    let before = client::status(addr).unwrap();
    assert_eq!(before.running, 1, "the dead worker's lease is outstanding");

    // The survivor must finish the whole job, including the requeued
    // shard, once the heartbeat deadline passes.
    let mut survivor = WorkerConfig::new(addr.to_string(), "survivor");
    survivor.heartbeat = Duration::from_millis(50);
    survivor.poll = Duration::from_millis(10);
    let survivor = std::thread::spawn(move || min_serve::run_worker(&survivor).unwrap());

    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        let status = client::status(addr).unwrap();
        if status.complete {
            break status;
        }
        assert!(Instant::now() < deadline, "campaign stalled: {status:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        status.requeues >= 1,
        "the doomed worker's shard was never requeued: {status:?}"
    );

    let report_json = client::results(addr).unwrap().expect("job is complete");
    assert_eq!(report_json, reference);

    let summary = survivor.join().unwrap();
    assert_eq!(summary.executed, shards, "survivor ran every shard");
    master.join().unwrap();
}

#[test]
fn duplicate_pushes_for_a_requeued_shard_are_discarded() {
    // Directly exercise push idempotency through the public protocol: two
    // workers race the same shard; the master keeps the first result and
    // acknowledges (discards) the second, and the report is unperturbed.
    use min_serve::{Reply, Request};
    use min_sim::campaign::execute_shard;

    let config = CampaignConfig::over_catalog(3..=3).with_cycles(80, 10);
    let reference = run_campaign(&config, 1).unwrap().to_json();
    let plan = config.plan().unwrap();

    let master = Master::bind(
        "127.0.0.1:0",
        MasterConfig {
            heartbeat_timeout: Duration::from_secs(30),
            once: true,
            tick: Duration::from_millis(2),
        },
    )
    .unwrap();
    let addr = master.local_addr();
    let master = std::thread::spawn(move || master.run().unwrap());

    client::submit(addr, &config, 1).unwrap();
    // Lease every shard under one name, then push each result twice.
    for shard in &plan.shards {
        let reply = client::request(
            addr,
            &Request::Lease {
                worker: "w".to_string(),
            },
        )
        .unwrap();
        let leased = match reply {
            Reply::Assignment { shard, .. } => shard,
            other => panic!("expected an assignment, got {other:?}"),
        };
        assert_eq!(leased.id, shard.id);
        let results = execute_shard(&config, &leased).unwrap();
        for _ in 0..2 {
            let reply = client::request(
                addr,
                &Request::Push {
                    worker: "w".to_string(),
                    shard: leased.id,
                    results: results.clone(),
                },
            )
            .unwrap();
            assert_eq!(reply, Reply::Ack);
        }
    }
    let report_json = client::results(addr).unwrap().expect("all slots filled");
    assert_eq!(report_json, reference);
    master.join().unwrap();
}
