//! Independent connections (paper, §3).
//!
//! > **Definition.** A connection `(f, g)` is *independent* if and only if
//! > for every `α ≠ (0,…,0)` there exists `β` such that for every `x`,
//! > `f(x ⊕ α) = β ⊕ f(x)` and `g(x ⊕ α) = β ⊕ g(x)`.
//!
//! Two checkers are provided:
//!
//! * [`is_independent_naive`] applies the definition verbatim — every `α`,
//!   every `x` — in `O(N²)`. It exists as the ground truth against which the
//!   fast checkers are property-tested.
//! * [`is_independent`] runs the packed affine characterization
//!   ([`crate::affine_form()`]): `(f, g)` is independent iff `f` is affine
//!   over GF(2) and `g = f ⊕ c`. The candidate affine extension is built by
//!   the Gray-code evaluator and compared slice-to-slice, so the decision is
//!   `O(N)` — one XOR and one compare per table entry.
//! * [`independence_certificate`] exploits the closure of the defining
//!   property under `⊕` of the `α`'s: if `α₁` and `α₂` admit translation
//!   vectors `β₁` and `β₂`, then `α₁ ⊕ α₂` admits `β₁ ⊕ β₂`. Checking the
//!   `n-1` canonical basis vectors therefore suffices, giving `O(N·n)` with
//!   an explicit certificate (or violation witness): the β-vector of every
//!   basis direction — equivalently, the linear part of `f`, exposed as a
//!   packed [`LinearMap`] by [`IndependenceCertificate::linear_part`].

use crate::connection::Connection;
use min_labels::{all_labels, Label, LinearMap};

/// The per-basis-direction translation vectors proving independence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependenceCertificate {
    /// Cell-label width.
    pub width: usize,
    /// `beta[j]` is the β associated with the basis vector `e_j = 2^j`.
    /// The β of an arbitrary `α` is the XOR of the `beta[j]` over the set
    /// bits of `α`.
    pub beta: Vec<Label>,
}

impl IndependenceCertificate {
    /// The β-vectors as a packed GF(2) linear map `α ↦ β(α)` — by the
    /// affine characterization this is exactly the linear part of `f` (and
    /// of `g`), ready for the elimination kernels (rank, kernel, inverse).
    pub fn linear_part(&self) -> LinearMap {
        LinearMap::from_columns(self.width, self.width, self.beta.clone())
    }

    /// Reconstructs the β associated with an arbitrary `α`.
    pub fn beta_for(&self, alpha: Label) -> Label {
        let mut acc = 0u64;
        let mut rest = alpha;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            acc ^= self.beta[j];
            rest &= rest - 1;
        }
        acc
    }

    /// Verifies the certificate against a connection (both `f` and `g`, every
    /// `α`, every `x`). Quadratic; intended for tests and audits.
    pub fn verify(&self, conn: &Connection) -> bool {
        if conn.width() != self.width {
            return false;
        }
        for alpha in all_labels(self.width) {
            let beta = self.beta_for(alpha);
            for x in all_labels(self.width) {
                if conn.f(x ^ alpha) != beta ^ conn.f(x) || conn.g(x ^ alpha) != beta ^ conn.g(x) {
                    return false;
                }
            }
        }
        true
    }
}

/// A concrete violation of the independence definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependenceViolation {
    /// The offending translation `α`.
    pub alpha: Label,
    /// The β that was forced by evaluating the definition at `x = 0`.
    pub beta: Label,
    /// A point where the definition fails for that `(α, β)`.
    pub x: Label,
    /// `true` when the failure is on `g` (otherwise on `f`).
    pub on_g: bool,
}

/// Literal `O(N²)` implementation of the definition.
pub fn is_independent_naive(conn: &Connection) -> bool {
    let width = conn.width();
    for alpha in all_labels(width).skip(1) {
        // If any β works, the one forced by x = 0 works: β = f(α) ⊕ f(0).
        let beta = conn.f(alpha) ^ conn.f(0);
        let ok = all_labels(width).all(|x| {
            conn.f(x ^ alpha) == beta ^ conn.f(x) && conn.g(x ^ alpha) == beta ^ conn.g(x)
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Fast `O(N)` independence check via the packed affine characterization.
///
/// Equivalent to `independence_certificate(conn).is_ok()` (the equivalence
/// is the affine characterization proven in [`crate::affine_form()`], and the
/// property tests below pin all three checkers against each other), but one
/// factor `n` cheaper: no per-basis-direction rescan of the tables.
pub fn is_independent(conn: &Connection) -> bool {
    crate::affine_form::affine_form(conn).is_some()
}

/// Fast `O(N·n)` independence check returning either a certificate or a
/// violation witness.
///
/// The check verifies the definition for the `width` canonical basis vectors
/// only; by closure under `⊕` (see the module documentation) this is
/// equivalent to the full definition, and the returned certificate can be
/// audited exhaustively with [`IndependenceCertificate::verify`].
pub fn independence_certificate(
    conn: &Connection,
) -> Result<IndependenceCertificate, IndependenceViolation> {
    let width = conn.width();
    let mut beta = Vec::with_capacity(width);
    for j in 0..width {
        let alpha = 1u64 << j;
        let b = conn.f(alpha) ^ conn.f(0);
        for x in all_labels(width) {
            if conn.f(x ^ alpha) != b ^ conn.f(x) {
                return Err(IndependenceViolation {
                    alpha,
                    beta: b,
                    x,
                    on_g: false,
                });
            }
            if conn.g(x ^ alpha) != b ^ conn.g(x) {
                return Err(IndependenceViolation {
                    alpha,
                    beta: b,
                    x,
                    on_g: true,
                });
            }
        }
        beta.push(b);
    }
    Ok(IndependenceCertificate { width, beta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_labels::{AffineMap, IndexPermutation, LinearMap, Permutation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn baseline_stage0(width: usize) -> Connection {
        let top = 1u64 << (width - 1);
        Connection::from_fn(width, |x| x >> 1, move |x| (x >> 1) | top)
    }

    #[test]
    fn baseline_stage_is_independent() {
        for width in 1..=6 {
            let conn = baseline_stage0(width);
            assert!(is_independent_naive(&conn));
            assert!(is_independent(&conn));
            let cert = independence_certificate(&conn).unwrap();
            assert!(cert.verify(&conn));
        }
    }

    #[test]
    fn omega_stage_is_independent() {
        let sigma = IndexPermutation::perfect_shuffle(4);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        assert!(is_independent_naive(&conn));
        let cert = independence_certificate(&conn).unwrap();
        assert!(cert.verify(&conn));
    }

    #[test]
    fn affine_connections_are_independent() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        for _ in 0..20 {
            let aff = AffineMap::random(4, 4, &mut rng);
            let conn = Connection::from_affine(&aff, 0b0110);
            assert!(is_independent(&conn));
            assert!(is_independent_naive(&conn));
        }
    }

    #[test]
    fn degenerate_equal_pair_is_still_independent() {
        // f = g (difference 0) satisfies the definition; the *Banyan*
        // property is what rules such stages out, not independence.
        let aff = AffineMap::identity(3);
        let conn = Connection::from_affine(&aff, 0);
        assert!(conn.has_parallel_links());
        assert!(is_independent(&conn));
    }

    #[test]
    fn non_affine_connection_is_rejected_with_witness() {
        // f is a non-linear bijection (a swap of two table entries of the
        // identity), g = f ⊕ 1.
        let table: [u64; 8] = [0, 1, 2, 5, 4, 3, 6, 7];
        let conn = Connection::from_fn(
            3,
            move |x| table[x as usize],
            move |x| table[x as usize] ^ 1,
        );
        assert!(!is_independent_naive(&conn));
        assert!(!is_independent(&conn));
        let violation = independence_certificate(&conn).unwrap_err();
        // The witness must indeed violate the definition.
        let lhs = if violation.on_g {
            conn.g(violation.x ^ violation.alpha)
        } else {
            conn.f(violation.x ^ violation.alpha)
        };
        let rhs = if violation.on_g {
            violation.beta ^ conn.g(violation.x)
        } else {
            violation.beta ^ conn.f(violation.x)
        };
        assert_ne!(lhs, rhs);
    }

    #[test]
    fn mismatched_difference_breaks_independence() {
        // f affine but g differs from f by a *non-constant* amount.
        let conn = Connection::from_fn(3, |x| x, |x| if x < 4 { x ^ 1 } else { x ^ 2 });
        assert!(!is_independent_naive(&conn));
        assert!(!is_independent(&conn));
    }

    #[test]
    fn fast_and_naive_checkers_agree_on_random_connections() {
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        let mut independents = 0usize;
        for i in 0..60 {
            let conn = if i % 3 == 0 {
                // random affine pair: independent by construction
                let aff = AffineMap::random(3, 3, &mut rng);
                Connection::from_affine(&aff, rand::Rng::gen_range(&mut rng, 0..8))
            } else {
                // random tables: essentially never independent
                let f = Permutation::random(3, &mut rng);
                let g = Permutation::random(3, &mut rng);
                Connection::from_fn(3, |x| f.apply(x), |x| g.apply(x))
            };
            let a = is_independent_naive(&conn);
            let b = is_independent(&conn);
            assert_eq!(a, b, "checkers disagree on connection {i}");
            assert_eq!(
                independence_certificate(&conn).is_ok(),
                b,
                "certificate checker disagrees on connection {i}"
            );
            if a {
                independents += 1;
            }
        }
        assert!(
            independents >= 10,
            "the affine third must all be independent"
        );
    }

    #[test]
    fn certificate_beta_composes_linearly() {
        let m = LinearMap::from_columns(4, 4, vec![0b0011, 0b0110, 0b1100, 0b1001]);
        let aff = AffineMap::new(m.clone(), 0b0101);
        let conn = Connection::from_affine(&aff, 0b1111);
        let cert = independence_certificate(&conn).unwrap();
        for alpha in all_labels(4) {
            // β(α) must equal f(α) ⊕ f(0).
            assert_eq!(cert.beta_for(alpha), conn.f(alpha) ^ conn.f(0));
        }
        // The packed linear part *is* the linear part of f.
        assert_eq!(cert.linear_part(), m);
        assert_eq!(cert.linear_part().rank(), m.rank());
    }

    #[test]
    fn certificate_verify_rejects_foreign_connections() {
        let conn_a = baseline_stage0(3);
        let cert_a = independence_certificate(&conn_a).unwrap();
        let sigma = IndexPermutation::perfect_shuffle(4);
        let conn_b = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        // Same width, different connection: the certificate must not verify
        // unless the betas coincide (they do not here).
        assert!(!cert_a.verify(&conn_b) || cert_a == independence_certificate(&conn_b).unwrap());
        let narrow = baseline_stage0(2);
        assert!(!cert_a.verify(&narrow), "width mismatch must fail");
    }
}
