//! Networks as sequences of connections.
//!
//! An `n`-stage MIN on `N = 2^n` terminals is, in the paper's model, an
//! MI-digraph whose stages are joined by `n-1` connections. A
//! [`ConnectionNetwork`] is exactly that: the common cell-label width plus
//! the ordered list of connections; it converts to and from the plain
//! [`MiDigraph`] of `min-graph` (the conversion *to* a digraph is always
//! possible, the conversion *from* one requires every interior node to have
//! out-degree exactly 2 so that an `(f, g)` decomposition exists).

use crate::connection::Connection;
use min_graph::MiDigraph;
use min_labels::Width;
use serde::{Deserialize, Serialize};

/// A multistage interconnection network given by its inter-stage
/// connections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionNetwork {
    width: Width,
    connections: Vec<Connection>,
}

impl ConnectionNetwork {
    /// Builds a network from a list of connections (all of the same width).
    ///
    /// `connections.len()` is the number of inter-stage links, so the network
    /// has `connections.len() + 1` stages and `2^{width+1}` terminals.
    pub fn new(width: Width, connections: Vec<Connection>) -> Self {
        min_labels::check_width(width);
        for (i, c) in connections.iter().enumerate() {
            assert_eq!(
                c.width(),
                width,
                "connection {i} has width {} but the network expects {width}",
                c.width()
            );
        }
        ConnectionNetwork { width, connections }
    }

    /// Cell-label width (the paper's `n-1`).
    pub fn width(&self) -> Width {
        self.width
    }

    /// Number of stages (`n`).
    pub fn stages(&self) -> usize {
        self.connections.len() + 1
    }

    /// Number of cells per stage (`N/2`).
    pub fn cells_per_stage(&self) -> usize {
        1usize << self.width
    }

    /// Number of network terminals (`N = 2 · cells_per_stage`).
    pub fn terminals(&self) -> usize {
        self.cells_per_stage() * 2
    }

    /// The connections, first stage first.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// The connection between stage `i` and stage `i+1` (0-based).
    pub fn connection(&self, i: usize) -> &Connection {
        &self.connections[i]
    }

    /// `true` when every connection is 2-regular, i.e. the induced digraph
    /// satisfies the paper's in/out-degree requirements.
    pub fn is_proper(&self) -> bool {
        self.connections.iter().all(Connection::is_two_regular)
    }

    /// `true` when some stage has parallel links (Fig. 5 degeneracy).
    pub fn has_parallel_links(&self) -> bool {
        self.connections.iter().any(Connection::has_parallel_links)
    }

    /// Expands the network into an [`MiDigraph`].
    pub fn to_digraph(&self) -> MiDigraph {
        let cells = self.cells_per_stage();
        let mut g = MiDigraph::new(self.stages(), cells);
        for (s, conn) in self.connections.iter().enumerate() {
            for x in 0..cells as u64 {
                g.add_arc(s, x as u32, conn.f(x) as u32);
                g.add_arc(s, x as u32, conn.g(x) as u32);
            }
        }
        g
    }

    /// Recovers a connection network from a digraph whose interior nodes all
    /// have out-degree 2. The assignment of the two children to `f` and `g`
    /// is arbitrary (first child listed becomes `f`); the induced digraph is
    /// identical either way.
    pub fn from_digraph(g: &MiDigraph) -> Option<ConnectionNetwork> {
        let cells = g.width();
        if !cells.is_power_of_two() {
            return None;
        }
        let width = cells.trailing_zeros() as usize;
        let mut connections = Vec::with_capacity(g.stages().saturating_sub(1));
        for s in 0..g.stages().saturating_sub(1) {
            let mut f = Vec::with_capacity(cells);
            let mut gt = Vec::with_capacity(cells);
            for v in 0..cells as u32 {
                let kids = g.children(s, v);
                if kids.len() != 2 {
                    return None;
                }
                f.push(kids[0]);
                gt.push(kids[1]);
            }
            connections.push(Connection::from_tables(width, f, gt));
        }
        Some(ConnectionNetwork { width, connections })
    }

    /// The reverse network: the connections of `G⁻¹` obtained stage by stage
    /// from the digraph (not via Proposition 1 — use
    /// [`crate::reverse::reverse_connection`] on each stage when an
    /// independence-preserving decomposition is wanted).
    pub fn reverse(&self) -> Option<ConnectionNetwork> {
        ConnectionNetwork::from_digraph(&self.to_digraph().reverse())
    }

    /// The reverse network with every stage decomposed by Proposition 1
    /// (requires every stage to be a proper independent connection).
    pub fn reverse_via_proposition1(
        &self,
    ) -> Result<ConnectionNetwork, crate::error::ReverseError> {
        let mut rev_connections = Vec::with_capacity(self.connections.len());
        for conn in self.connections.iter().rev() {
            rev_connections.push(crate::reverse::reverse_connection(conn)?);
        }
        Ok(ConnectionNetwork {
            width: self.width,
            connections: rev_connections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::is_independent;

    /// The canonical 3-stage Baseline as a connection network.
    fn baseline3() -> ConnectionNetwork {
        let c0 = Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 0b10);
        let c1 = Connection::from_fn(2, |x| x & 0b10, |x| (x & 0b10) | 1);
        ConnectionNetwork::new(2, vec![c0, c1])
    }

    #[test]
    fn shape_accessors() {
        let net = baseline3();
        assert_eq!(net.stages(), 3);
        assert_eq!(net.width(), 2);
        assert_eq!(net.cells_per_stage(), 4);
        assert_eq!(net.terminals(), 8);
        assert!(net.is_proper());
        assert!(!net.has_parallel_links());
        assert_eq!(net.connections().len(), 2);
        assert_eq!(net.connection(0).f(3), 1);
    }

    #[test]
    fn to_digraph_produces_the_expected_arcs() {
        let net = baseline3();
        let g = net.to_digraph();
        assert_eq!(g.stages(), 3);
        assert_eq!(g.width(), 4);
        assert_eq!(g.arc_count(), 16);
        assert!(g.is_proper());
        assert!(g.children(0, 3).contains(&1));
        assert!(g.children(0, 3).contains(&3));
    }

    #[test]
    fn from_digraph_round_trips_the_structure() {
        let net = baseline3();
        let g = net.to_digraph();
        let back = ConnectionNetwork::from_digraph(&g).expect("2-regular digraph decomposes");
        assert!(back.to_digraph().same_arcs(&g));
        assert_eq!(back.stages(), net.stages());
    }

    #[test]
    fn from_digraph_rejects_irregular_graphs() {
        let mut g = MiDigraph::new(2, 2);
        g.add_arc(0, 0, 0);
        assert!(ConnectionNetwork::from_digraph(&g).is_none());
        let h = MiDigraph::new(2, 3);
        assert!(
            ConnectionNetwork::from_digraph(&h).is_none(),
            "width must be a power of two"
        );
    }

    #[test]
    fn reverse_reverses_the_digraph() {
        let net = baseline3();
        let rev = net.reverse().expect("proper network reverses");
        assert!(rev.to_digraph().same_arcs(&net.to_digraph().reverse()));
    }

    #[test]
    fn reverse_via_proposition1_matches_the_digraph_reverse() {
        let net = baseline3();
        let rev = net.reverse_via_proposition1().expect("independent stages");
        assert!(rev.to_digraph().same_arcs(&net.to_digraph().reverse()));
        for conn in rev.connections() {
            assert!(is_independent(conn), "Proposition 1 preserves independence");
        }
    }

    #[test]
    #[should_panic(expected = "has width")]
    fn mismatched_connection_widths_are_rejected() {
        let c0 = Connection::from_fn(2, |x| x, |x| x ^ 1);
        let c1 = Connection::from_fn(3, |x| x, |x| x ^ 1);
        let _ = ConnectionNetwork::new(2, vec![c0, c1]);
    }
}
