//! Constructive, certified isomorphism onto the Baseline MI-digraph.
//!
//! The Section 2 theorem says that Banyan + `P(1,*)` + `P(*,n)` forces a
//! digraph to be isomorphic to the Baseline MI-digraph; the proof lives in
//! the companion paper \[12\]. For the library we want more than a yes/no
//! answer: we want the explicit node bijection, produced in near-linear time
//! and **verified** before being handed to the caller. The construction used
//! here makes the "easy characterization" executable:
//!
//! * In the Baseline network, the connected component of a stage-`i` node
//!   inside the *suffix* `(G)_{i,n}` determines the `i-1` high-order bits of
//!   its label (the left-recursive construction splits the tail of the
//!   network into nested halves), and the component inside the *prefix*
//!   `(G)_{1,i}` determines the `n-i` low-order bits.
//! * For an arbitrary digraph satisfying the characterization, the nested
//!   suffix components form a binary trie (each component of `(G)_{i,n}`
//!   splits into exactly two components of `(G)_{i+1,n}`), and likewise for
//!   prefixes. Numbering the tries top-down assigns every node a
//!   `(high, low)` pair; the concatenated label is the image of the node
//!   under an isomorphism onto the Baseline — *by construction* the arcs
//!   land correctly, and the final verification makes the certificate
//!   unconditional.
//!
//! The algorithm runs two union-find sweeps plus an `O(E)` verification and
//! never backtracks. Any failure (component count off, trie not binary,
//! label collision, verification mismatch) is reported as a specific
//! [`EquivalenceError`], which doubles as a non-equivalence diagnosis.

use crate::error::EquivalenceError;
use min_graph::components::{prefix_sweep, suffix_sweep};
use min_graph::iso::{verify_stage_mapping, StageMapping};
use min_graph::MiDigraph;

/// The canonical left-recursive Baseline MI-digraph with `stages` stages
/// (paper, §2 and Fig. 1).
///
/// Stage `s` (0-based) connects cell `x` to the two cells obtained by
/// shifting the low `n-1-s` bits of `x` right by one position and setting
/// the vacated bit (position `n-2-s`) to 0 (`f`) or 1 (`g`); the high `s`
/// bits are left untouched. This is precisely the "nodes `2i` and `2i+1` of
/// stage 1 are connected to the `i`-th nodes of the two subnetworks"
/// recursion, applied within ever smaller halves.
pub fn baseline_digraph(stages: usize) -> MiDigraph {
    assert!(stages >= 1, "a network needs at least one stage");
    assert!(
        stages <= 33,
        "2^{} cells per stage would not fit in memory",
        stages - 1
    );
    let width_bits = stages - 1;
    let cells = 1usize << width_bits;
    let mut g = MiDigraph::new(stages, cells);
    for s in 0..stages - 1 {
        let low_bits = width_bits - s; // number of bits still being consumed
        let low_mask = (1u64 << low_bits) - 1;
        let high_mask = !low_mask & ((1u64 << width_bits) - 1);
        let new_bit = 1u64 << (low_bits - 1);
        for x in 0..cells as u64 {
            let f = (x & high_mask) | ((x & low_mask) >> 1);
            let g_child = f | new_bit;
            g.add_arc(s, x as u32, f as u32);
            g.add_arc(s, x as u32, g_child as u32);
        }
    }
    g
}

/// A verified isomorphism certificate onto the Baseline MI-digraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineIsomorphism {
    /// Number of stages of the network.
    pub stages: usize,
    /// `mapping[stage][node]` = label of the node's image in the canonical
    /// Baseline digraph of the same size.
    pub mapping: StageMapping,
}

impl BaselineIsomorphism {
    /// The canonical Baseline digraph this certificate maps onto.
    pub fn baseline(&self) -> MiDigraph {
        baseline_digraph(self.stages)
    }

    /// Re-verifies the certificate against `g` (O(E)).
    pub fn verify(&self, g: &MiDigraph) -> bool {
        g.stages() == self.stages && verify_stage_mapping(g, &self.baseline(), &self.mapping)
    }

    /// FNV-1a fingerprint of the full relabelling, stage by stage.
    ///
    /// Classification reports record this per equivalent network: two runs
    /// that produce the same checksum produced the same certificate, so the
    /// JSON carries a compact, diffable witness instead of the
    /// `O(n·2^{n-1})` mapping itself.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.stages as u64);
        for (s, stage_map) in self.mapping.iter().enumerate() {
            mix(s as u64);
            for &img in stage_map {
                mix(u64::from(img));
            }
        }
        h
    }
}

/// Computes the certified constructive isomorphism of `g` onto the Baseline
/// MI-digraph, or explains why none exists.
pub fn baseline_isomorphism(g: &MiDigraph) -> Result<BaselineIsomorphism, EquivalenceError> {
    let n = g.stages();
    let width = g.width();
    if n < 1 || width != (1usize << (n - 1)) {
        return Err(EquivalenceError::WrongWidth { stages: n, width });
    }
    if !g.is_proper() && n > 1 {
        return Err(EquivalenceError::NotTwoRegular);
    }
    let width_bits = n - 1;

    // ---- Suffix trie: high bits ------------------------------------------
    // suffix.stage_ids[i][v] = component of node v of stage i inside (G)_{i,n}.
    let suffix = suffix_sweep(g);
    for (i, &count) in suffix.counts.iter().enumerate() {
        let expected = crate::properties::expected_components(width, i, n - 1);
        if count != expected {
            return Err(EquivalenceError::SuffixComponentCount {
                stage: i,
                expected,
                actual: count,
            });
        }
    }
    // comp_high[i][c] = high-bit value (i bits) of suffix component c at stage i.
    let mut comp_high: Vec<Vec<u64>> = Vec::with_capacity(n);
    {
        // Stage 0: a single component (checked above), value 0 on 0 bits.
        let count0 = component_count(&suffix.stage_ids[0]);
        comp_high.push(vec![0; count0]);
        for i in 1..n {
            let prev_count = comp_high[i - 1].len();
            let cur_count = component_count(&suffix.stage_ids[i]);
            // Which suffix component of stage i-1 contains each suffix
            // component of stage i? Walk the arcs (i-1) -> i.
            let mut parent_of: Vec<Option<u32>> = vec![None; cur_count];
            for v in 0..width as u32 {
                let pc = suffix.stage_ids[i - 1][v as usize];
                for &c in g.children(i - 1, v) {
                    let cc = suffix.stage_ids[i][c as usize];
                    match parent_of[cc as usize] {
                        None => parent_of[cc as usize] = Some(pc),
                        Some(existing) if existing != pc => {
                            // A child component reachable from two distinct
                            // parent components contradicts connectivity.
                            return Err(EquivalenceError::ComponentTreeNotBinary {
                                stage: i,
                                suffix: true,
                            });
                        }
                        _ => {}
                    }
                }
            }
            // Assign the two children of every parent component the values
            // 2h and 2h+1 (order: by child component id, which is
            // deterministic).
            let mut next_bit: Vec<u64> = vec![0; prev_count];
            let mut values = vec![u64::MAX; cur_count];
            for cc in 0..cur_count {
                let pc = match parent_of[cc] {
                    Some(p) => p as usize,
                    None => {
                        return Err(EquivalenceError::ComponentTreeNotBinary {
                            stage: i,
                            suffix: true,
                        })
                    }
                };
                if next_bit[pc] > 1 {
                    return Err(EquivalenceError::ComponentTreeNotBinary {
                        stage: i,
                        suffix: true,
                    });
                }
                values[cc] = (comp_high[i - 1][pc] << 1) | next_bit[pc];
                next_bit[pc] += 1;
            }
            if values.contains(&u64::MAX) {
                return Err(EquivalenceError::ComponentTreeNotBinary {
                    stage: i,
                    suffix: true,
                });
            }
            comp_high.push(values);
        }
    }

    // ---- Prefix trie: low bits -------------------------------------------
    // prefix.stage_ids[j][v] = component of node v of stage j inside (G)_{1,j}.
    let prefix = prefix_sweep(g);
    for (j, &count) in prefix.counts.iter().enumerate() {
        let expected = crate::properties::expected_components(width, 0, j);
        if count != expected {
            return Err(EquivalenceError::PrefixComponentCount {
                stage: j,
                expected,
                actual: count,
            });
        }
    }
    // comp_low[j][c] = low-bit value (width_bits - j bits) of prefix component c at stage j.
    let mut comp_low: Vec<Vec<u64>> = vec![Vec::new(); n];
    {
        let count_last = component_count(&prefix.stage_ids[n - 1]);
        comp_low[n - 1] = vec![0; count_last];
        for j in (0..n - 1).rev() {
            let coarser_count = comp_low[j + 1].len();
            let finer_count = component_count(&prefix.stage_ids[j]);
            // Which prefix component of stage j+1 contains each prefix
            // component of stage j? Walk the arcs j -> j+1.
            let mut parent_of: Vec<Option<u32>> = vec![None; finer_count];
            for v in 0..width as u32 {
                let fc = prefix.stage_ids[j][v as usize];
                for &c in g.children(j, v) {
                    let cc = prefix.stage_ids[j + 1][c as usize];
                    match parent_of[fc as usize] {
                        None => parent_of[fc as usize] = Some(cc),
                        Some(existing) if existing != cc => {
                            return Err(EquivalenceError::ComponentTreeNotBinary {
                                stage: j,
                                suffix: false,
                            });
                        }
                        _ => {}
                    }
                }
            }
            let mut next_bit: Vec<u64> = vec![0; coarser_count];
            let mut values = vec![u64::MAX; finer_count];
            for fc in 0..finer_count {
                let cc = match parent_of[fc] {
                    Some(p) => p as usize,
                    None => {
                        return Err(EquivalenceError::ComponentTreeNotBinary {
                            stage: j,
                            suffix: false,
                        })
                    }
                };
                if next_bit[cc] > 1 {
                    return Err(EquivalenceError::ComponentTreeNotBinary {
                        stage: j,
                        suffix: false,
                    });
                }
                values[fc] = (comp_low[j + 1][cc] << 1) | next_bit[cc];
                next_bit[cc] += 1;
            }
            if values.contains(&u64::MAX) {
                return Err(EquivalenceError::ComponentTreeNotBinary {
                    stage: j,
                    suffix: false,
                });
            }
            comp_low[j] = values;
        }
    }

    // ---- Assemble labels ---------------------------------------------------
    let mut mapping: StageMapping = Vec::with_capacity(n);
    for s in 0..n {
        let low_bits = width_bits - s;
        let mut stage_map = Vec::with_capacity(width);
        let mut seen = vec![false; width];
        for v in 0..width {
            let high = comp_high[s][suffix.stage_ids[s][v] as usize];
            let low = comp_low[s][prefix.stage_ids[s][v] as usize];
            let label = (high << low_bits) | low;
            let label_usize = label as usize;
            if label_usize >= width || seen[label_usize] {
                return Err(EquivalenceError::LabelCollision { stage: s });
            }
            seen[label_usize] = true;
            stage_map.push(label as u32);
        }
        mapping.push(stage_map);
    }

    // ---- Verify -------------------------------------------------------------
    let baseline = baseline_digraph(n);
    if !verify_stage_mapping(g, &baseline, &mapping) {
        return Err(EquivalenceError::VerificationFailed);
    }
    Ok(BaselineIsomorphism { stages: n, mapping })
}

fn component_count(ids: &[u32]) -> usize {
    ids.iter().copied().max().map_or(0, |m| m as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine_form::random_proper_independent_connection;
    use crate::connection::Connection;
    use crate::network::ConnectionNetwork;
    use min_graph::iso::find_isomorphism;
    use min_graph::paths::is_banyan;
    use min_labels::{IndexPermutation, Permutation};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn omega(n: usize) -> MiDigraph {
        let sigma = IndexPermutation::perfect_shuffle(n);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        ConnectionNetwork::new(n - 1, vec![conn; n - 1]).to_digraph()
    }

    #[test]
    fn baseline_digraph_has_the_paper_shape() {
        for n in 1..=6 {
            let g = baseline_digraph(n);
            assert_eq!(g.stages(), n);
            assert_eq!(g.width(), 1usize << (n - 1));
            assert!(g.is_proper());
            if n >= 2 {
                assert!(is_banyan(&g), "baseline n={n} must be Banyan");
                assert!(!g.has_parallel_arcs());
            }
        }
    }

    #[test]
    fn baseline_digraph_matches_the_left_recursive_definition() {
        // "nodes 2i and 2i+1 of stage 1 are connected to the i-th nodes of
        // the two subnetworks"
        let n = 4;
        let g = baseline_digraph(n);
        let half = 1u32 << (n - 2);
        for i in 0..half {
            for &node in &[2 * i, 2 * i + 1] {
                let mut kids = g.children(0, node).to_vec();
                kids.sort_unstable();
                assert_eq!(kids, vec![i, i + half]);
            }
        }
    }

    #[test]
    fn baseline_maps_onto_itself_with_the_identity() {
        for n in 2..=7 {
            let g = baseline_digraph(n);
            let cert = baseline_isomorphism(&g).expect("baseline is baseline-equivalent");
            assert!(cert.verify(&g));
            // The canonical labelling of the Baseline must be the identity:
            // the construction mirrors exactly how the Baseline is built.
            for (s, stage_map) in cert.mapping.iter().enumerate() {
                for (v, &img) in stage_map.iter().enumerate() {
                    assert_eq!(img as usize, v, "stage {s} node {v} should map to itself");
                }
            }
        }
    }

    #[test]
    fn omega_gets_a_valid_certificate() {
        for n in 2..=7 {
            let g = omega(n);
            let cert = baseline_isomorphism(&g).expect("omega is baseline-equivalent");
            assert!(cert.verify(&g));
        }
    }

    #[test]
    fn certificate_agrees_with_exhaustive_search_on_small_instances() {
        for n in 2..=4 {
            let g = omega(n);
            let cert = baseline_isomorphism(&g).unwrap();
            let outcome = find_isomorphism(&g, &baseline_digraph(n), 10_000_000);
            assert!(outcome.is_isomorphic());
            assert!(cert.verify(&g));
        }
    }

    #[test]
    fn random_independent_banyan_networks_are_certified() {
        // Theorem 3 seen constructively: assemble networks from random
        // proper independent connections, keep the Banyan ones, and check
        // that every one of them receives a valid certificate.
        let mut rng = ChaCha8Rng::seed_from_u64(109);
        let width_bits = 3usize;
        let stages = width_bits + 1;
        let mut certified = 0;
        for _ in 0..60 {
            let connections: Vec<Connection> = (0..stages - 1)
                .map(|_| random_proper_independent_connection(width_bits, rng.gen(), &mut rng))
                .collect();
            let net = ConnectionNetwork::new(width_bits, connections);
            let g = net.to_digraph();
            if !is_banyan(&g) {
                continue;
            }
            let cert = baseline_isomorphism(&g).expect("Theorem 3");
            assert!(cert.verify(&g));
            certified += 1;
        }
        assert!(
            certified >= 1,
            "expected at least one Banyan sample, got {certified}"
        );
    }

    #[test]
    fn wrong_width_is_rejected() {
        let g = MiDigraph::new(3, 5);
        assert_eq!(
            baseline_isomorphism(&g),
            Err(EquivalenceError::WrongWidth {
                stages: 3,
                width: 5
            })
        );
    }

    #[test]
    fn irregular_graphs_are_rejected() {
        let mut g = MiDigraph::new(2, 2);
        g.add_arc(0, 0, 0);
        assert_eq!(
            baseline_isomorphism(&g),
            Err(EquivalenceError::NotTwoRegular)
        );
    }

    #[test]
    fn parallel_link_networks_are_rejected_with_a_component_diagnosis() {
        let c0 = Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 0b10);
        let degenerate = Connection::from_fn(2, |x| x, |x| x);
        let g = ConnectionNetwork::new(2, vec![c0, degenerate]).to_digraph();
        let err = baseline_isomorphism(&g).unwrap_err();
        assert!(
            matches!(
                err,
                EquivalenceError::SuffixComponentCount { .. }
                    | EquivalenceError::PrefixComponentCount { .. }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn non_equivalent_random_networks_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(113);
        let mut rejections = 0;
        for _ in 0..10 {
            let connections: Vec<Connection> = (0..3)
                .map(|_| {
                    let p = Permutation::random(4, &mut rng);
                    Connection::from_link_permutation(&p)
                })
                .collect();
            let g = ConnectionNetwork::new(3, connections).to_digraph();
            if baseline_isomorphism(&g).is_err() {
                rejections += 1;
            }
        }
        assert!(rejections >= 8);
    }

    #[test]
    fn single_stage_network_is_trivially_equivalent() {
        let g = MiDigraph::new(1, 1);
        let cert = baseline_isomorphism(&g).expect("the one-node network");
        assert_eq!(cert.mapping, vec![vec![0]]);
    }
}
