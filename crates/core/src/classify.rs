//! Equivalence-classification campaigns: deciding Baseline equivalence for
//! whole families of networks in one deterministic, parallel sweep.
//!
//! The paper's contribution is a *decision procedure* — is this network
//! Baseline-equivalent? — and the rest of the crate answers it one network
//! at a time. This module scales the question to a **campaign**: a list of
//! [`Subject`]s (catalog cells, random samples, anything that builds a
//! [`ConnectionNetwork`]) is fanned out across scoped worker threads, every
//! network is decided with an explicit per-network witness, and the results
//! are partitioned into equivalence classes:
//!
//! * all Baseline-equivalent networks of one stage count form **one** class
//!   (they are mutually equivalent by composing their certificates —
//!   Theorem 3 / the §2 characterization), and the campaign *re-verifies*
//!   that claim by composing every member's certificate with the class
//!   representative's and checking the mapping arc by arc;
//! * networks that are **not** Baseline-equivalent are grouped by their
//!   violated condition (the specific [`crate::EquivalenceError`]
//!   diagnosis). The
//!   paper does not characterize the isomorphism classes *outside* the
//!   Baseline class, so these buckets are diagnostic — two members share the
//!   reason they fail, not necessarily an isomorphism.
//!
//! The per-network [`Witness`] is either the independent-connection
//! certificate (per-stage constant differences and linear-part ranks of the
//! packed affine forms — the §3 objects), the structural certificate alone
//! (for equivalent networks with some non-independent stage), or the
//! violated condition.
//!
//! ## Determinism
//!
//! The design mirrors `min-sim`'s scenario campaigns: subjects carry their
//! position in the canonical grid expansion, random subjects derive their
//! ChaCha8 seed from `(campaign_seed, index)` by the SplitMix64 finalizer
//! ([`derive_seed`]), workers pull indices from an atomic cursor, and
//! results are slotted by index — never by completion order. Class
//! identifiers are assigned in order of first appearance. The
//! [`ClassificationReport`] and its JSON are therefore **byte-identical at
//! any worker-thread count**, which is what lets CI diff the partition
//! across runs.
//!
//! ```
//! use min_core::classify::{classify_subjects, Subject};
//! use min_core::{baseline_digraph, ConnectionNetwork};
//!
//! let subjects: Vec<Subject> = (0..2)
//!     .map(|rep| {
//!         Subject::new("baseline", 3, rep, 0, || {
//!             ConnectionNetwork::from_digraph(&baseline_digraph(3)).unwrap()
//!         })
//!     })
//!     .collect();
//! let one = classify_subjects(&subjects, 1).unwrap();
//! let many = classify_subjects(&subjects, 4).unwrap();
//! assert_eq!(one.to_json(), many.to_json());
//! assert_eq!(one.class_count, 1);
//! assert!(one.classes[0].cross_verified);
//! ```

use crate::affine_form::affine_form;
use crate::baseline_iso::{baseline_isomorphism, BaselineIsomorphism};
use crate::equivalence::compose_baseline_certificates;
use crate::network::ConnectionNetwork;
use min_graph::iso::verify_stage_mapping;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Derives a per-subject seed from the campaign seed and the subject index.
///
/// Same SplitMix64 finalizer as the simulation campaigns
/// (`min_sim::campaign::scenario_seed`): cheap, stateless, and
/// collision-free in practice, so two random subjects never share a ChaCha8
/// stream.
pub fn derive_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One network to classify: descriptive metadata plus a deterministic
/// builder.
///
/// The builder is invoked lazily inside a worker thread (and again during
/// class cross-verification), so a campaign over the full catalog at
/// `n = 2..=16` never holds every network in memory at once.
pub struct Subject {
    family: String,
    stages: usize,
    replication: u32,
    seed: u64,
    builder: Box<dyn Fn() -> ConnectionNetwork + Send + Sync>,
}

impl Subject {
    /// Creates a subject. The builder must be deterministic: it is called
    /// more than once and every call must produce the same network.
    pub fn new<F>(
        family: impl Into<String>,
        stages: usize,
        replication: u32,
        seed: u64,
        builder: F,
    ) -> Self
    where
        F: Fn() -> ConnectionNetwork + Send + Sync + 'static,
    {
        Subject {
            family: family.into(),
            stages,
            replication,
            seed,
            builder: Box::new(builder),
        }
    }

    /// Family label (e.g. `"Omega"` or `"random-pipid"`).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Stage count `n` (the network has `N = 2^n` terminals).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Replication number within the family × stage-count grid point.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// The derived seed (meaningful for random subjects; echoed for all).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the network.
    pub fn build(&self) -> ConnectionNetwork {
        (self.builder)()
    }

    /// Canonical display name, also used by the CI partition differ.
    pub fn name(&self) -> String {
        format!("{}/n={}#{}", self.family, self.stages, self.replication)
    }
}

impl std::fmt::Debug for Subject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subject")
            .field("family", &self.family)
            .field("stages", &self.stages)
            .field("replication", &self.replication)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// The per-network evidence recorded by a classification campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Witness {
    /// Theorem 3 seen end to end: every stage is an independent connection.
    /// `differences[i]` is the constant `c_i = f_i ⊕ g_i` and `ranks[i]` the
    /// rank of the shared linear part of stage `i` (packed affine forms);
    /// `mapping_checksum` fingerprints the verified Baseline certificate.
    IndependentConnections {
        /// Per-stage constant difference `c = f ⊕ g`.
        differences: Vec<u64>,
        /// Per-stage rank of the shared GF(2) linear part.
        ranks: Vec<usize>,
        /// [`BaselineIsomorphism::checksum`] of the verified certificate.
        mapping_checksum: u64,
    },
    /// The network is Baseline-equivalent by the §2 characterization, but
    /// some stage is not an independent connection, so only the structural
    /// certificate is available.
    Characterization {
        /// [`BaselineIsomorphism::checksum`] of the verified certificate.
        mapping_checksum: u64,
    },
    /// The network is not Baseline-equivalent; the rendered
    /// [`crate::EquivalenceError`] names the violated condition.
    Violation {
        /// Human-readable diagnosis (also the class key).
        condition: String,
    },
}

impl Witness {
    /// `true` for the two equivalent variants.
    pub fn is_equivalent(&self) -> bool {
        !matches!(self, Witness::Violation { .. })
    }
}

/// The outcome for one subject, in canonical grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectResult {
    /// Position in the canonical subject list.
    pub index: usize,
    /// Family label.
    pub family: String,
    /// Stage count `n`.
    pub stages: usize,
    /// Replication number within the grid point.
    pub replication: u32,
    /// Derived seed the subject was built with.
    pub seed: u64,
    /// Whether the network is Baseline-equivalent.
    pub equivalent: bool,
    /// Identifier of the equivalence class the subject landed in.
    pub class: usize,
    /// The per-network evidence.
    pub witness: Witness,
}

impl SubjectResult {
    /// Canonical display name (same scheme as [`Subject::name`]).
    pub fn name(&self) -> String {
        format!("{}/n={}#{}", self.family, self.stages, self.replication)
    }
}

/// One cell of the partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceClass {
    /// Class identifier, assigned in order of first appearance.
    pub id: usize,
    /// Stage count shared by every member.
    pub stages: usize,
    /// `true` for the Baseline-equivalent class of this stage count.
    pub equivalent: bool,
    /// Canonical key: `"n=<stages> baseline-equivalent"` or
    /// `"n=<stages> <violated condition>"`.
    pub key: String,
    /// Member subject indices, ascending.
    pub members: Vec<usize>,
    /// For an equivalent class: every member's certificate was composed
    /// with the representative's (first member) and the resulting mapping
    /// verified arc by arc. Vacuously `true` for diagnostic classes.
    pub cross_verified: bool,
}

/// The complete, canonically ordered result of a classification campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Number of subjects classified.
    pub subject_count: usize,
    /// Number of equivalence classes found.
    pub class_count: usize,
    /// Number of Baseline-equivalent subjects.
    pub equivalent_subjects: usize,
    /// Per-subject outcomes, indexed by [`SubjectResult::index`].
    pub subjects: Vec<SubjectResult>,
    /// The partition, class ids ascending.
    pub classes: Vec<EquivalenceClass>,
}

impl ClassificationReport {
    /// Serializes the report to JSON. The rendering is deterministic (field
    /// order is declaration order, no floats), so equal reports yield
    /// byte-identical JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("classification reports are JSON-serializable")
    }

    /// Parses a report back from its [`ClassificationReport::to_json`]
    /// rendering.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// A plain-text summary, one row per class.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:>3} {:>7} {:>9} {:<52} members",
            "class", "n", "size", "verified", "key"
        );
        for class in &self.classes {
            let names: Vec<String> = class
                .members
                .iter()
                .take(4)
                .map(|&i| self.subjects[i].name())
                .collect();
            let suffix = if class.members.len() > 4 { ", …" } else { "" };
            let _ = writeln!(
                out,
                "{:<5} {:>3} {:>7} {:>9} {:<52} {}{}",
                class.id,
                class.stages,
                class.members.len(),
                if class.equivalent {
                    if class.cross_verified {
                        "yes"
                    } else {
                        "FAILED"
                    }
                } else {
                    "n/a"
                },
                class.key,
                names.join(", "),
                suffix
            );
        }
        let _ = writeln!(
            out,
            "{} subjects · {} equivalent · {} classes",
            self.subject_count, self.equivalent_subjects, self.class_count
        );
        out
    }
}

/// Why a classification campaign could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyError {
    /// The subject list is empty.
    NoSubjects,
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::NoSubjects => write!(f, "a classification campaign needs subjects"),
        }
    }
}

impl std::error::Error for ClassifyError {}

/// What a worker produces for one subject.
struct Outcome {
    equivalent: bool,
    key: String,
    witness: Witness,
    certificate: Option<BaselineIsomorphism>,
}

/// Decides one subject: packed affine forms for every stage, then the
/// certified constructive Baseline isomorphism.
fn classify_one(subject: &Subject) -> Outcome {
    let net = subject.build();
    let forms: Option<Vec<_>> = net.connections().iter().map(affine_form).collect();
    let digraph = net.to_digraph();
    match baseline_isomorphism(&digraph) {
        Ok(certificate) => {
            let mapping_checksum = certificate.checksum();
            let witness = match forms {
                Some(forms) => Witness::IndependentConnections {
                    differences: forms.iter().map(|f| f.difference).collect(),
                    ranks: forms.iter().map(|f| f.rank()).collect(),
                    mapping_checksum,
                },
                None => Witness::Characterization { mapping_checksum },
            };
            Outcome {
                equivalent: true,
                key: format!("n={} baseline-equivalent", subject.stages),
                witness,
                certificate: Some(certificate),
            }
        }
        Err(error) => Outcome {
            equivalent: false,
            key: format!("n={} {}", subject.stages, error),
            witness: Witness::Violation {
                condition: error.to_string(),
            },
            certificate: None,
        },
    }
}

/// Runs the campaign across `threads` scoped worker threads (`0` = one
/// worker per available core).
///
/// Workers pull subject indices from a shared atomic cursor and outcomes
/// land in index order, so the report is independent of the thread count;
/// the class-assembly and cross-verification passes are sequential.
pub fn classify_subjects(
    subjects: &[Subject],
    threads: usize,
) -> Result<ClassificationReport, ClassifyError> {
    if subjects.is_empty() {
        return Err(ClassifyError::NoSubjects);
    }
    let workers = effective_threads(threads, subjects.len());

    let cursor = AtomicUsize::new(0);
    let collected: Vec<(usize, Outcome)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(subject) = subjects.get(i) else {
                            break;
                        };
                        local.push((i, classify_one(subject)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("classification worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<Outcome>> = Vec::with_capacity(subjects.len());
    slots.resize_with(subjects.len(), || None);
    for (i, outcome) in collected {
        slots[i] = Some(outcome);
    }
    let outcomes: Vec<Outcome> = slots
        .into_iter()
        .map(|slot| slot.expect("every subject index was claimed exactly once"))
        .collect();

    // Assemble classes in order of first appearance of their key.
    let mut classes: Vec<EquivalenceClass> = Vec::new();
    let mut results: Vec<SubjectResult> = Vec::with_capacity(subjects.len());
    for (index, (subject, outcome)) in subjects.iter().zip(&outcomes).enumerate() {
        let class = match classes.iter().position(|c| c.key == outcome.key) {
            Some(id) => {
                classes[id].members.push(index);
                id
            }
            None => {
                let id = classes.len();
                classes.push(EquivalenceClass {
                    id,
                    stages: subject.stages,
                    equivalent: outcome.equivalent,
                    key: outcome.key.clone(),
                    members: vec![index],
                    cross_verified: true,
                });
                id
            }
        };
        results.push(SubjectResult {
            index,
            family: subject.family.clone(),
            stages: subject.stages,
            replication: subject.replication,
            seed: subject.seed,
            equivalent: outcome.equivalent,
            class,
            witness: outcome.witness.clone(),
        });
    }

    // Cross-verify every equivalent class: compose each member's
    // certificate with the representative's and check the mapping.
    for class in &mut classes {
        if !class.equivalent || class.members.len() < 2 {
            continue;
        }
        let rep = class.members[0];
        let rep_digraph = subjects[rep].build().to_digraph();
        let rep_cert = outcomes[rep]
            .certificate
            .as_ref()
            .expect("equivalent subjects carry a certificate");
        for &member in &class.members[1..] {
            let member_cert = outcomes[member]
                .certificate
                .as_ref()
                .expect("equivalent subjects carry a certificate");
            let verified = compose_baseline_certificates(member_cert, rep_cert)
                .map(|mapping| {
                    let member_digraph = subjects[member].build().to_digraph();
                    verify_stage_mapping(&member_digraph, &rep_digraph, &mapping)
                })
                .unwrap_or(false);
            if !verified {
                class.cross_verified = false;
            }
        }
    }

    let equivalent_subjects = results.iter().filter(|r| r.equivalent).count();
    Ok(ClassificationReport {
        subject_count: results.len(),
        class_count: classes.len(),
        equivalent_subjects,
        subjects: results,
        classes,
    })
}

/// Resolves the worker count: `0` means one per available core, and there
/// is never a point in more workers than subjects.
fn effective_threads(requested: usize, subjects: usize) -> usize {
    let requested = if requested == 0 {
        thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    requested.clamp(1, subjects.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_iso::baseline_digraph;
    use crate::connection::Connection;
    use min_labels::{IndexPermutation, Permutation};

    fn omega_subject(n: usize, replication: u32) -> Subject {
        Subject::new("Omega", n, replication, 0, move || {
            let sigma = IndexPermutation::perfect_shuffle(n);
            let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
            ConnectionNetwork::new(n - 1, vec![conn; n - 1])
        })
    }

    fn baseline_subject(n: usize) -> Subject {
        Subject::new("Baseline", n, 0, 0, move || {
            ConnectionNetwork::from_digraph(&baseline_digraph(n)).unwrap()
        })
    }

    fn degenerate_subject(n: usize) -> Subject {
        Subject::new("degenerate", n, 0, 0, move || {
            let identity = Connection::from_fn(n - 1, |x| x, |x| x);
            ConnectionNetwork::new(n - 1, vec![identity; n - 1])
        })
    }

    #[test]
    fn equivalent_networks_of_one_size_share_one_verified_class() {
        let subjects = vec![
            baseline_subject(3),
            omega_subject(3, 0),
            baseline_subject(4),
            omega_subject(4, 0),
        ];
        let report = classify_subjects(&subjects, 2).unwrap();
        assert_eq!(report.subject_count, 4);
        assert_eq!(report.class_count, 2);
        assert_eq!(report.equivalent_subjects, 4);
        assert_eq!(report.classes[0].members, vec![0, 1]);
        assert_eq!(report.classes[1].members, vec![2, 3]);
        for class in &report.classes {
            assert!(class.equivalent);
            assert!(class.cross_verified);
        }
        // Every stage of Omega and Baseline is independent: the witnesses
        // must be the Theorem 3 certificates.
        for r in &report.subjects {
            match &r.witness {
                Witness::IndependentConnections {
                    differences, ranks, ..
                } => {
                    assert_eq!(differences.len(), r.stages - 1);
                    assert_eq!(ranks.len(), r.stages - 1);
                }
                other => panic!("expected an independence witness, got {other:?}"),
            }
        }
    }

    #[test]
    fn violations_are_bucketed_by_diagnosis() {
        let subjects = vec![
            omega_subject(3, 0),
            degenerate_subject(3),
            degenerate_subject(3),
        ];
        let report = classify_subjects(&subjects, 1).unwrap();
        assert_eq!(report.class_count, 2);
        assert!(report.subjects[0].equivalent);
        assert!(!report.subjects[1].equivalent);
        assert_eq!(report.subjects[1].class, report.subjects[2].class);
        let diagnostic = &report.classes[1];
        assert!(!diagnostic.equivalent);
        assert!(diagnostic.cross_verified, "vacuously true");
        match &report.subjects[1].witness {
            Witness::Violation { condition } => {
                assert!(diagnostic.key.contains(condition.as_str()))
            }
            other => panic!("expected a violation witness, got {other:?}"),
        }
    }

    #[test]
    fn reports_are_thread_count_independent_and_round_trip() {
        let subjects = vec![
            baseline_subject(3),
            omega_subject(3, 0),
            degenerate_subject(3),
            baseline_subject(4),
            omega_subject(4, 1),
        ];
        let one = classify_subjects(&subjects, 1).unwrap();
        let many = classify_subjects(&subjects, 5).unwrap();
        let auto = classify_subjects(&subjects, 0).unwrap();
        assert_eq!(one, many);
        assert_eq!(one.to_json(), many.to_json());
        assert_eq!(one.to_json(), auto.to_json());
        let back = ClassificationReport::from_json(&one.to_json()).unwrap();
        assert_eq!(back, one);
    }

    #[test]
    fn empty_campaigns_are_rejected() {
        assert_eq!(
            classify_subjects(&[], 1).unwrap_err(),
            ClassifyError::NoSubjects
        );
        assert!(!ClassifyError::NoSubjects.to_string().is_empty());
    }

    #[test]
    fn derive_seed_mixes_both_inputs() {
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(7, 3), derive_seed(3, 7));
    }
}
