//! The affine characterization of independent connections.
//!
//! The paper's independence definition quantifies over all translations `α`.
//! Working out what it forces on `f` and `g` gives a crisp algebraic
//! description that the paper uses implicitly in the proofs of
//! Proposition 1 and Lemma 2 (e.g. "the difference between the labels of the
//! nodes in `A_j` and `B_j` is constant"):
//!
//! > A connection `(f, g)` is independent **iff** `f` is affine over GF(2)
//! > (`f(x) = Mx ⊕ t`) and `g = f ⊕ c` for a constant `c`.
//!
//! *Proof sketch.* (⇐) With `β = Mα` the definition holds. (⇒) Taking `x=0`
//! forces `β(α) = f(α) ⊕ f(0)`; applying the definition twice shows `β` is
//! additive, hence linear, so `f(x) = β(x) ⊕ f(0)` is affine; the same `β`
//! works for `g`, so `g(x) ⊕ f(x) = g(0) ⊕ f(0)` is constant. ∎
//!
//! [`affine_form`] extracts the `(M, t, c)` certificate (or reports that the
//! connection is not independent), and [`random_independent_connection`] /
//! [`random_proper_independent_connection`] sample random independent
//! connections for tests and benchmarks — including the two regular shapes
//! distinguished in Proposition 1 (`f, g` both bijections, or the
//! `(f,f)/(g,g)` half-and-half case).

use crate::connection::Connection;
use min_labels::{AffineMap, Label, LinearMap, Width};
use rand::Rng;

/// The `(M, t, c)` certificate of an independent connection:
/// `f(x) = M x ⊕ t` and `g(x) = f(x) ⊕ c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineForm {
    /// The affine map equal to `f`.
    pub f: AffineMap,
    /// The constant difference `c = f(x) ⊕ g(x)`.
    pub difference: Label,
}

impl AffineForm {
    /// Rebuilds the connection tables from the certificate.
    pub fn to_connection(&self) -> Connection {
        Connection::from_affine(&self.f, self.difference)
    }

    /// `true` when both `f` and `g` are bijections (Proposition 1, case 1).
    pub fn is_bijective(&self) -> bool {
        self.f.is_invertible()
    }

    /// Rank of the shared linear part `M`.
    pub fn rank(&self) -> usize {
        self.f.linear().rank()
    }
}

/// Extracts the affine certificate of a connection, or `None` when the
/// connection is not independent.
///
/// The certificate is validated against the full tables before being
/// returned, so `Some(form)` always satisfies
/// `form.to_connection() == *conn`. Validation is `O(N)`: the candidate
/// affine extension is materialized by the packed Gray-code evaluator
/// ([`AffineMap::table`]) and compared to the stored table slice-to-slice,
/// instead of re-applying the map digit by digit at every point.
pub fn affine_form(conn: &Connection) -> Option<AffineForm> {
    let width = conn.width();
    let f_aff = AffineMap::interpolate(width, width, |x| conn.f(x));
    let candidate = f_aff.table();
    if candidate
        .iter()
        .zip(conn.f_table())
        .any(|(&a, &b)| a != u64::from(b))
    {
        return None;
    }
    let c = conn.constant_difference()?;
    // g must equal f ⊕ c everywhere; constant_difference already checked it.
    Some(AffineForm {
        f: f_aff,
        difference: c,
    })
}

/// Samples a random independent connection (not necessarily 2-regular).
pub fn random_independent_connection<R: Rng>(width: Width, rng: &mut R) -> Connection {
    let aff = AffineMap::random(width, width, rng);
    let c = rng.gen::<u64>() & min_labels::mask(width);
    Connection::from_affine(&aff, c)
}

/// Samples a random independent connection that is also **2-regular** (every
/// target cell has in-degree exactly 2), i.e. a legitimate interior stage of
/// an MI-digraph.
///
/// Two shapes exist (they are exactly the two cases of Proposition 1):
///
/// * `bijective = true` — `M` invertible and `c ≠ 0`: every target cell is of
///   type `(f, g)`;
/// * `bijective = false` — `rank(M) = width - 1` and `c ∉ Im(M)`: half the
///   target cells are of type `(f, f)`, half of type `(g, g)`.
pub fn random_proper_independent_connection<R: Rng>(
    width: Width,
    bijective: bool,
    rng: &mut R,
) -> Connection {
    assert!(width >= 1, "a proper stage needs at least 1 label bit");
    if bijective {
        let m = LinearMap::random_invertible(width, rng);
        let t = rng.gen::<u64>() & min_labels::mask(width);
        let mut c = 0u64;
        while c == 0 {
            c = rng.gen::<u64>() & min_labels::mask(width);
        }
        Connection::from_affine(&AffineMap::new(m, t), c)
    } else {
        // Build M of rank width-1 by sampling an invertible map and zeroing
        // the image of one basis direction, then pick c outside Im(M).
        loop {
            let base = LinearMap::random_invertible(width, rng);
            let kill = rng.gen_range(0..width);
            let mut cols = base.columns().to_vec();
            cols[kill] = 0;
            let m = LinearMap::from_columns(width, width, cols);
            debug_assert_eq!(m.rank(), width - 1);
            let image = m.image();
            let candidates: Vec<Label> = min_labels::all_labels(width)
                .filter(|&v| !image.contains(v))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let c = candidates[rng.gen_range(0..candidates.len())];
            let t = rng.gen::<u64>() & min_labels::mask(width);
            let conn = Connection::from_affine(&AffineMap::new(m, t), c);
            debug_assert!(conn.is_two_regular());
            return conn;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::is_independent;
    use min_labels::{IndexPermutation, Permutation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn affine_form_round_trips_on_classical_stages() {
        // Baseline first stage and Omega stage are affine with the expected
        // parameters.
        let top = 0b100u64;
        let baseline = Connection::from_fn(3, |x| x >> 1, move |x| (x >> 1) | top);
        let form = affine_form(&baseline).expect("independent");
        assert_eq!(form.difference, top);
        assert_eq!(form.to_connection(), baseline);
        assert_eq!(form.rank(), 2, "x >> 1 has a 1-dimensional kernel");
        assert!(!form.is_bijective());

        let sigma = IndexPermutation::perfect_shuffle(4);
        let omega = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        let form = affine_form(&omega).expect("independent");
        assert_eq!(form.difference, 1, "the two children differ in the low bit");
        assert_eq!(form.to_connection(), omega);
    }

    #[test]
    fn affine_form_agrees_with_independence_checkers() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        for i in 0..80 {
            let conn = if i % 2 == 0 {
                random_independent_connection(3, &mut rng)
            } else {
                let f = Permutation::random(3, &mut rng);
                let g = Permutation::random(3, &mut rng);
                Connection::from_fn(3, |x| f.apply(x), |x| g.apply(x))
            };
            assert_eq!(
                affine_form(&conn).is_some(),
                is_independent(&conn),
                "affine characterization must coincide with the definition (case {i})"
            );
        }
    }

    #[test]
    fn proper_bijective_connections_are_two_regular_and_independent() {
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        for _ in 0..20 {
            let conn = random_proper_independent_connection(4, true, &mut rng);
            assert!(conn.is_two_regular());
            assert!(is_independent(&conn));
            assert!(!conn.has_parallel_links());
            let form = affine_form(&conn).unwrap();
            assert!(form.is_bijective());
        }
    }

    #[test]
    fn proper_non_bijective_connections_have_the_ff_gg_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        for _ in 0..20 {
            let conn = random_proper_independent_connection(4, false, &mut rng);
            assert!(conn.is_two_regular());
            assert!(is_independent(&conn));
            let form = affine_form(&conn).unwrap();
            assert!(!form.is_bijective());
            assert_eq!(form.rank(), 3);
            // Every target cell must be hit twice by f or twice by g, never
            // once by each (Proposition 1, case 2).
            let cells = conn.cells();
            let mut f_hits = vec![0usize; cells];
            let mut g_hits = vec![0usize; cells];
            for x in 0..cells as u64 {
                f_hits[conn.f(x) as usize] += 1;
                g_hits[conn.g(x) as usize] += 1;
            }
            for y in 0..cells {
                let pair = (f_hits[y], g_hits[y]);
                assert!(
                    pair == (2, 0) || pair == (0, 2),
                    "cell {y} has hit pattern {pair:?}"
                );
            }
        }
    }

    #[test]
    fn random_independent_connections_are_independent() {
        let mut rng = ChaCha8Rng::seed_from_u64(83);
        for _ in 0..30 {
            let conn = random_independent_connection(5, &mut rng);
            assert!(is_independent(&conn));
        }
    }

    #[test]
    fn width_one_proper_connection_is_the_unique_crossbar() {
        let mut rng = ChaCha8Rng::seed_from_u64(89);
        let conn = random_proper_independent_connection(1, true, &mut rng);
        assert!(conn.is_two_regular());
        // On one bit, the only proper bijective shape is {f, g} = {id, not}.
        assert_ne!(conn.f(0), conn.g(0));
    }
}
