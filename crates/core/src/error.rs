//! Error types shared by the crate.

/// Why a connection could not be reversed by Proposition 1's construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReverseError {
    /// Some target node does not have exactly two incoming arcs, so the
    /// reverse adjacency cannot be decomposed into a pair of functions.
    NotTwoRegular {
        /// The offending node of the target stage.
        node: u64,
        /// Its in-degree.
        indegree: usize,
    },
    /// The vertex types are mixed in a way Proposition 1 proves impossible
    /// for independent connections: some vertex is of type `(f,g)` while
    /// another is of type `(f,f)` or `(g,g)`. The input connection cannot be
    /// independent.
    MixedVertexTypes,
    /// In the `(f,f)/(g,g)` case the construction needs a non-zero `α₁` with
    /// `f(x ⊕ α₁) = f(x)`, but `f` is injective: inconsistent input.
    MissingAlphaOne,
    /// The A/B coset decomposition did not split the parents of every node
    /// one-and-one; the input connection is not independent.
    UnbalancedCosets {
        /// The offending node of the target stage.
        node: u64,
    },
}

impl std::fmt::Display for ReverseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReverseError::NotTwoRegular { node, indegree } => write!(
                f,
                "node {node} of the target stage has in-degree {indegree}, expected 2"
            ),
            ReverseError::MixedVertexTypes => write!(
                f,
                "vertex types (f,g) and (f,f)/(g,g) are mixed; the connection is not independent"
            ),
            ReverseError::MissingAlphaOne => write!(
                f,
                "no non-zero α₁ with f(α₁) = f(0) exists although f is not a bijection paired with g"
            ),
            ReverseError::UnbalancedCosets { node } => write!(
                f,
                "node {node} does not have exactly one parent in each coset A and B"
            ),
        }
    }
}

impl std::error::Error for ReverseError {}

/// Why a digraph failed to produce a Baseline-equivalence certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceError {
    /// The digraph does not have `2^{stages-1}` nodes per stage, so it is not
    /// an MI-digraph in the sense of the paper.
    WrongWidth {
        /// Number of stages.
        stages: usize,
        /// Actual nodes per stage.
        width: usize,
    },
    /// Some interior node violates the 2-in/2-out regularity requirement.
    NotTwoRegular,
    /// A `P(i, n)` (suffix) property fails: the number of components of the
    /// suffix sub-digraph is not the required power of two.
    SuffixComponentCount {
        /// 0-based first stage of the suffix.
        stage: usize,
        /// Expected number of components.
        expected: usize,
        /// Actual number of components.
        actual: usize,
    },
    /// A `P(1, j)` (prefix) property fails.
    PrefixComponentCount {
        /// 0-based last stage of the prefix.
        stage: usize,
        /// Expected number of components.
        expected: usize,
        /// Actual number of components.
        actual: usize,
    },
    /// A component of the suffix/prefix trie does not split into exactly two
    /// sub-components at the next level.
    ComponentTreeNotBinary {
        /// 0-based stage at which the split was examined.
        stage: usize,
        /// `true` when the failure is on the suffix (high-bit) trie.
        suffix: bool,
    },
    /// The candidate labelling collides: two nodes of one stage received the
    /// same (high, low) label, so the graph cannot be Baseline-equivalent.
    LabelCollision {
        /// Stage at which the collision occurred.
        stage: usize,
    },
    /// The relabelled digraph does not coincide with the Baseline digraph
    /// (final arc-by-arc verification failed).
    VerificationFailed,
    /// The two digraphs compared have different numbers of stages or widths.
    ShapeMismatch,
    /// The digraph is not Banyan (required by the characterization theorem).
    NotBanyan,
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::WrongWidth { stages, width } => write!(
                f,
                "an MI-digraph with {stages} stages must have 2^{} nodes per stage, found {width}",
                stages - 1
            ),
            EquivalenceError::NotTwoRegular => {
                write!(f, "some interior node is not 2-in/2-out regular")
            }
            EquivalenceError::SuffixComponentCount {
                stage,
                expected,
                actual,
            } => write!(
                f,
                "P(*, n) fails at stage {stage}: expected {expected} components, found {actual}"
            ),
            EquivalenceError::PrefixComponentCount {
                stage,
                expected,
                actual,
            } => write!(
                f,
                "P(1, *) fails at stage {stage}: expected {expected} components, found {actual}"
            ),
            EquivalenceError::ComponentTreeNotBinary { stage, suffix } => write!(
                f,
                "the {} component trie does not split binarily at stage {stage}",
                if *suffix { "suffix" } else { "prefix" }
            ),
            EquivalenceError::LabelCollision { stage } => {
                write!(
                    f,
                    "two nodes of stage {stage} received the same canonical label"
                )
            }
            EquivalenceError::VerificationFailed => {
                write!(f, "final verification of the canonical relabelling failed")
            }
            EquivalenceError::ShapeMismatch => {
                write!(f, "the digraphs have different stage counts or widths")
            }
            EquivalenceError::NotBanyan => write!(f, "the digraph is not Banyan"),
        }
    }
}

impl std::error::Error for EquivalenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ReverseError::NotTwoRegular {
            node: 3,
            indegree: 1,
        };
        assert!(e.to_string().contains("in-degree 1"));
        let e = EquivalenceError::WrongWidth {
            stages: 4,
            width: 7,
        };
        assert!(e.to_string().contains("2^3"));
        let e = EquivalenceError::SuffixComponentCount {
            stage: 2,
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = EquivalenceError::ComponentTreeNotBinary {
            stage: 1,
            suffix: false,
        };
        assert!(e.to_string().contains("prefix"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&ReverseError::MixedVertexTypes);
        assert_err(&EquivalenceError::NotBanyan);
    }
}
