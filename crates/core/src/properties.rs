//! The `P(i,j)` properties and the Section 2 characterization theorem.
//!
//! > **P(i,j).** An MI-digraph with `n` stages satisfies `P(i,j)` (for
//! > `1 ≤ i ≤ j ≤ n`) iff the sub-digraph `(G)_{i,j}` has exactly
//! > `2^{n-1-(j-i)}` connected components.
//! >
//! > **P(1,\*)** holds iff `P(1,j)` holds for every `j`;
//! > **P(\*,n)** holds iff `P(i,n)` holds for every `i`.
//! >
//! > **Theorem (§2).** All MI-digraphs with `n` stages satisfying the Banyan
//! > property, `P(*, n)` and `P(1, *)` are isomorphic (to the Baseline
//! > MI-digraph).
//!
//! Stage indices in this module are 0-based: the paper's `P(i, j)` is
//! `p_property(g, i-1, j-1)`.

use min_graph::components::{component_count_range, prefix_sweep, suffix_sweep};
use min_graph::paths::is_banyan;
use min_graph::MiDigraph;

/// Expected component count of `(G)_{lo,hi}` for a Baseline-equivalent
/// MI-digraph: `width / 2^{hi-lo}`.
///
/// (Equivalently the paper's `2^{n-1-(j-i)}` since `width = 2^{n-1}`.)
pub fn expected_components(width: usize, lo: usize, hi: usize) -> usize {
    let span = hi - lo;
    if span >= usize::BITS as usize {
        return 0;
    }
    width >> span
}

/// `P(lo, hi)` for 0-based stage indices.
pub fn p_property(g: &MiDigraph, lo: usize, hi: usize) -> bool {
    component_count_range(g, lo, hi) == expected_components(g.width(), lo, hi)
}

/// `P(1, *)`: every prefix `(G)_{1,j}` has the required number of
/// components. Computed with one incremental union-find sweep.
pub fn p_one_star(g: &MiDigraph) -> bool {
    let sweep = prefix_sweep(g);
    sweep
        .counts
        .iter()
        .enumerate()
        .all(|(j, &count)| count == expected_components(g.width(), 0, j))
}

/// `P(*, n)`: every suffix `(G)_{i,n}` has the required number of
/// components.
pub fn p_star_n(g: &MiDigraph) -> bool {
    let sweep = suffix_sweep(g);
    let last = g.stages() - 1;
    sweep
        .counts
        .iter()
        .enumerate()
        .all(|(i, &count)| count == expected_components(g.width(), i, last))
}

/// Full evaluation of the characterization hypotheses with per-stage detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharacterizationReport {
    /// Whether the digraph has the shape of a 2×2-cell MI-digraph
    /// (`width = 2^{stages-1}`, 2-in/2-out interior regularity).
    pub proper_shape: bool,
    /// Whether the Banyan property holds.
    pub banyan: bool,
    /// `(expected, actual)` component counts of every prefix `(G)_{1,j}`,
    /// indexed by 0-based `j`.
    pub prefix_components: Vec<(usize, usize)>,
    /// `(expected, actual)` component counts of every suffix `(G)_{i,n}`,
    /// indexed by 0-based `i`.
    pub suffix_components: Vec<(usize, usize)>,
}

impl CharacterizationReport {
    /// `true` when `P(1,*)` holds.
    pub fn p_one_star(&self) -> bool {
        self.prefix_components.iter().all(|&(e, a)| e == a)
    }

    /// `true` when `P(*,n)` holds.
    pub fn p_star_n(&self) -> bool {
        self.suffix_components.iter().all(|&(e, a)| e == a)
    }

    /// `true` when all hypotheses of the characterization theorem hold, i.e.
    /// the digraph is topologically equivalent to the Baseline network.
    pub fn satisfied(&self) -> bool {
        self.proper_shape && self.banyan && self.p_one_star() && self.p_star_n()
    }
}

/// Evaluates every hypothesis of the characterization theorem.
pub fn characterization_report(g: &MiDigraph) -> CharacterizationReport {
    let width_ok = g.stages() >= 1 && g.width() == (1usize << (g.stages() - 1)) && g.is_proper();
    let banyan = is_banyan(g);
    let prefix = prefix_sweep(g);
    let suffix = suffix_sweep(g);
    let last = g.stages() - 1;
    CharacterizationReport {
        proper_shape: width_ok,
        banyan,
        prefix_components: prefix
            .counts
            .iter()
            .enumerate()
            .map(|(j, &c)| (expected_components(g.width(), 0, j), c))
            .collect(),
        suffix_components: suffix
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (expected_components(g.width(), i, last), c))
            .collect(),
    }
}

/// `true` when the digraph satisfies the Banyan property, `P(1,*)` and
/// `P(*,n)` (and is a proper 2×2-cell MI-digraph) — i.e. exactly the
/// hypotheses under which the Section 2 theorem asserts Baseline
/// equivalence.
pub fn satisfies_characterization(g: &MiDigraph) -> bool {
    characterization_report(g).satisfied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::Connection;
    use crate::network::ConnectionNetwork;
    use min_labels::{IndexPermutation, Permutation};

    fn baseline(n: usize) -> MiDigraph {
        crate::baseline_iso::baseline_digraph(n)
    }

    fn omega(n: usize) -> MiDigraph {
        let sigma = IndexPermutation::perfect_shuffle(n);
        let perm = Permutation::from_index_perm(&sigma);
        let conn = Connection::from_link_permutation(&perm);
        ConnectionNetwork::new(n - 1, vec![conn; n - 1]).to_digraph()
    }

    #[test]
    fn expected_component_counts_match_the_paper() {
        // n = 4, width = 8: (G)_{1,1} has 8 components, (G)_{1,4} has 1.
        assert_eq!(expected_components(8, 0, 0), 8);
        assert_eq!(expected_components(8, 0, 3), 1);
        assert_eq!(expected_components(8, 1, 3), 2);
        assert_eq!(expected_components(8, 2, 3), 4);
    }

    #[test]
    fn baseline_satisfies_everything() {
        for n in 2..=6 {
            let g = baseline(n);
            assert!(p_one_star(&g), "P(1,*) fails for baseline n={n}");
            assert!(p_star_n(&g), "P(*,n) fails for baseline n={n}");
            assert!(
                satisfies_characterization(&g),
                "characterization fails n={n}"
            );
            let report = characterization_report(&g);
            assert!(report.proper_shape && report.banyan);
        }
    }

    #[test]
    fn omega_satisfies_everything() {
        for n in 2..=6 {
            let g = omega(n);
            assert!(satisfies_characterization(&g), "omega n={n}");
        }
    }

    #[test]
    fn individual_p_properties_hold_on_the_baseline() {
        let g = baseline(4);
        for lo in 0..4 {
            for hi in lo..4 {
                assert!(p_property(&g, lo, hi), "P({},{}) fails", lo + 1, hi + 1);
            }
        }
    }

    #[test]
    fn parallel_link_network_fails_banyan_but_not_p_properties() {
        // Replace the last Baseline stage with a degenerate double-link
        // stage: components stay right (each pair collapses), but the Banyan
        // property fails — showing the hypotheses are genuinely separate.
        let n = 3usize;
        let width = n - 1;
        let c0 = Connection::from_fn(width, |x| x >> 1, |x| (x >> 1) | 0b10);
        let degenerate = Connection::from_fn(width, |x| x, |x| x);
        let net = ConnectionNetwork::new(width, vec![c0, degenerate]);
        let g = net.to_digraph();
        let report = characterization_report(&g);
        assert!(!report.banyan);
        assert!(!report.satisfied());
        // The degenerate stage still glues each node to one partner, so
        // P(*, n) changes: the suffix (G)_{2,3} now has 4 components
        // (each node only linked to its double partner) — in fact it has 4,
        // which is what a proper network would need at (G)_{3,3} not
        // (G)_{2,3}; assert the report records the mismatch.
        let last_suffix = report.suffix_components[1];
        assert_ne!(last_suffix.0, last_suffix.1);
    }

    #[test]
    fn random_wiring_fails_the_characterization() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(107);
        // A network with 2-regular but random (non-independent) stages is
        // overwhelmingly unlikely to be Baseline-equivalent.
        let width = 3usize;
        let mut fails = 0;
        for _ in 0..10 {
            let connections: Vec<Connection> = (0..3)
                .map(|_| {
                    let p = min_labels::Permutation::random(width + 1, &mut rng);
                    Connection::from_link_permutation(&p)
                })
                .collect();
            let net = ConnectionNetwork::new(width, connections);
            if !satisfies_characterization(&net.to_digraph()) {
                fails += 1;
            }
        }
        assert!(
            fails >= 8,
            "random networks should essentially never qualify"
        );
    }

    #[test]
    fn report_is_detailed_enough_to_locate_failures() {
        let g = MiDigraph::new(3, 4); // no arcs at all
        let report = characterization_report(&g);
        assert!(!report.proper_shape);
        assert!(!report.banyan);
        assert!(!report.p_one_star());
        assert!(!report.p_star_n());
        assert_eq!(report.prefix_components.len(), 3);
        assert_eq!(report.suffix_components.len(), 3);
        assert_eq!(report.prefix_components[1], (2, 8));
    }
}
