//! Agrawal's buddy property.
//!
//! The paper's introduction recalls that Agrawal \[8\] proposed to
//! characterize the class of Baseline-equivalent networks by "Buddy
//! Properties", and that \[10\] showed the characterization to be
//! insufficient. We implement the property so the insufficiency can be
//! demonstrated experimentally (experiment E10): networks exist that are
//! Banyan and satisfy the buddy property in both directions yet are *not*
//! Baseline-equivalent.
//!
//! **Definition used here** (the standard formulation of Agrawal's property
//! for 2×2 cells): *the two children of any cell have exactly the same set of
//! parents* — equivalently, the two cells of stage `i+1` reached from a cell
//! of stage `i` are also both reached from exactly one other common cell of
//! stage `i`. The paper's own Lemma 2 uses the same notion: "two nodes `y`
//! and `y'` are buddy if they have the same father".

use min_graph::MiDigraph;

/// Outcome of a buddy-property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuddyReport {
    /// `true` when the property holds at every stage.
    pub holds: bool,
    /// First violation found, as `(stage, node)` of the offending parent.
    pub violation: Option<(usize, u32)>,
}

/// Checks the buddy property on the forward digraph.
pub fn buddy_property(g: &MiDigraph) -> BuddyReport {
    for s in 0..g.stages().saturating_sub(1) {
        for v in 0..g.width() as u32 {
            let kids = g.children(s, v);
            if kids.len() != 2 {
                return BuddyReport {
                    holds: false,
                    violation: Some((s, v)),
                };
            }
            let (a, b) = (kids[0], kids[1]);
            if a == b {
                // Parallel links: the "two" children are not distinct.
                return BuddyReport {
                    holds: false,
                    violation: Some((s, v)),
                };
            }
            let mut pa: Vec<u32> = g.parents(s + 1, a).to_vec();
            let mut pb: Vec<u32> = g.parents(s + 1, b).to_vec();
            pa.sort_unstable();
            pb.sort_unstable();
            if pa != pb || pa.len() != 2 {
                return BuddyReport {
                    holds: false,
                    violation: Some((s, v)),
                };
            }
        }
    }
    BuddyReport {
        holds: true,
        violation: None,
    }
}

/// Checks the buddy property on the reverse digraph (`G⁻¹`).
pub fn reverse_buddy_property(g: &MiDigraph) -> BuddyReport {
    buddy_property(&g.reverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_iso::baseline_digraph;
    use crate::connection::Connection;
    use crate::network::ConnectionNetwork;
    use min_labels::{IndexPermutation, Permutation};

    fn omega(n: usize) -> MiDigraph {
        let sigma = IndexPermutation::perfect_shuffle(n);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        ConnectionNetwork::new(n - 1, vec![conn; n - 1]).to_digraph()
    }

    #[test]
    fn classical_networks_satisfy_both_buddy_properties() {
        for n in 2..=6 {
            let b = baseline_digraph(n);
            assert!(buddy_property(&b).holds, "baseline forward n={n}");
            assert!(reverse_buddy_property(&b).holds, "baseline reverse n={n}");
            let o = omega(n);
            assert!(buddy_property(&o).holds, "omega forward n={n}");
            assert!(reverse_buddy_property(&o).holds, "omega reverse n={n}");
        }
    }

    #[test]
    fn parallel_links_violate_the_buddy_property() {
        let degenerate = Connection::from_fn(2, |x| x, |x| x);
        let c0 = Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 0b10);
        let g = ConnectionNetwork::new(2, vec![c0, degenerate]).to_digraph();
        let report = buddy_property(&g);
        assert!(!report.holds);
        assert_eq!(
            report.violation.unwrap().0,
            1,
            "violation is in the degenerate stage"
        );
    }

    #[test]
    fn crossed_wiring_without_shared_parents_is_rejected() {
        // Stage where cell x's children are {x, x+1 mod 4}: children's parent
        // sets are shifted, not equal.
        let shifted = Connection::from_fn(2, |x| x, |x| (x + 1) & 0b11);
        let c1 = Connection::from_fn(2, |x| x & 0b10, |x| (x & 0b10) | 1);
        let g = ConnectionNetwork::new(2, vec![shifted, c1]).to_digraph();
        let report = buddy_property(&g);
        assert!(!report.holds);
        assert!(report.violation.is_some());
    }

    #[test]
    fn buddy_violation_reports_a_real_parent() {
        let shifted = Connection::from_fn(2, |x| x, |x| (x + 1) & 0b11);
        let g = ConnectionNetwork::new(2, vec![shifted]).to_digraph();
        let report = buddy_property(&g);
        let (s, v) = report.violation.unwrap();
        assert_eq!(s, 0);
        assert!(v < 4);
    }

    #[test]
    fn forward_and_reverse_buddy_are_computed_on_their_own_graphs() {
        // Sanity check that the two predicates are evaluated on the forward
        // and reversed digraphs respectively and both terminate on a wiring
        // with non-trivial sibling structure.
        let c0 = Connection::from_fn(2, |x| x & 0b10, |x| (x & 0b10) | 1);
        let skew = Connection::from_fn(2, |x| x, |x| x ^ 0b11);
        let g = ConnectionNetwork::new(2, vec![c0, skew]).to_digraph();
        let fwd = buddy_property(&g);
        let rev = reverse_buddy_property(&g);
        // `skew` sends x to {x, x^3}: children x and x^3 have parent sets
        // {x, x^3} — equal, so forward holds; reverse of stage `skew` also
        // pairs the same way. The point of this test is simply that forward
        // and reverse are computed on the right graphs and both terminate.
        assert!(fwd.holds);
        assert!(rev.holds);
    }
}
