//! Topological equivalence between arbitrary MI-digraphs.
//!
//! Two Baseline-equivalent networks are equivalent to each other; composing
//! their certificates ([`crate::baseline_iso`]) yields the explicit
//! network-to-network node bijection — the analogue of the one-to-one
//! mappings Wu & Feng exhibited by hand for the six classical networks.

use crate::baseline_iso::{baseline_isomorphism, BaselineIsomorphism};
use crate::error::EquivalenceError;
use min_graph::iso::{compose_mappings, invert_mapping, verify_stage_mapping, StageMapping};
use min_graph::MiDigraph;

/// Composes two Baseline certificates into the explicit `g → h` mapping
/// without recomputing either isomorphism: `g --cg--> Baseline --ch⁻¹--> h`.
///
/// Classification campaigns hold one certificate per network and call this
/// for every (member, representative) pair of an equivalence class, so the
/// per-pair cost is two mapping passes rather than two fresh sweeps. The
/// returned mapping is *not* verified here — callers that need an
/// unconditional certificate pass it through
/// [`min_graph::iso::verify_stage_mapping`] (as [`equivalence_mapping`]
/// does).
pub fn compose_baseline_certificates(
    cg: &BaselineIsomorphism,
    ch: &BaselineIsomorphism,
) -> Result<StageMapping, EquivalenceError> {
    if cg.stages != ch.stages {
        return Err(EquivalenceError::ShapeMismatch);
    }
    Ok(compose_mappings(&cg.mapping, &invert_mapping(&ch.mapping)))
}

/// Computes an explicit stage-respecting isomorphism `g → h` by composing
/// the Baseline certificates of both digraphs.
///
/// Fails with the diagnosis of whichever digraph is not Baseline-equivalent
/// (or with [`EquivalenceError::ShapeMismatch`] when the sizes differ). The
/// returned mapping is verified before being returned.
pub fn equivalence_mapping(g: &MiDigraph, h: &MiDigraph) -> Result<StageMapping, EquivalenceError> {
    if g.stages() != h.stages() || g.width() != h.width() {
        return Err(EquivalenceError::ShapeMismatch);
    }
    let cg = baseline_isomorphism(g)?;
    let ch = baseline_isomorphism(h)?;
    let mapping = compose_baseline_certificates(&cg, &ch)?;
    if !verify_stage_mapping(g, h, &mapping) {
        return Err(EquivalenceError::VerificationFailed);
    }
    Ok(mapping)
}

/// `true` when the two digraphs are topologically equivalent (both are
/// Baseline-equivalent and of the same size).
///
/// Note: this is *not* a general isomorphism test — two non-Baseline
/// digraphs may be isomorphic to each other; use
/// [`min_graph::iso::find_isomorphism`] for the general (exponential) search.
pub fn are_equivalent(g: &MiDigraph, h: &MiDigraph) -> bool {
    equivalence_mapping(g, h).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_iso::baseline_digraph;
    use crate::connection::Connection;
    use crate::network::ConnectionNetwork;
    use min_labels::{IndexPermutation, Permutation};

    fn omega(n: usize) -> MiDigraph {
        let sigma = IndexPermutation::perfect_shuffle(n);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        ConnectionNetwork::new(n - 1, vec![conn; n - 1]).to_digraph()
    }

    fn flip(n: usize) -> MiDigraph {
        let sigma = IndexPermutation::inverse_shuffle(n);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        ConnectionNetwork::new(n - 1, vec![conn; n - 1]).to_digraph()
    }

    #[test]
    fn omega_is_equivalent_to_baseline_with_an_explicit_mapping() {
        for n in 2..=6 {
            let g = omega(n);
            let b = baseline_digraph(n);
            let m = equivalence_mapping(&g, &b).expect("equivalent");
            assert!(verify_stage_mapping(&g, &b, &m));
            assert!(are_equivalent(&g, &b));
        }
    }

    #[test]
    fn omega_and_flip_are_equivalent_to_each_other() {
        for n in 2..=6 {
            let g = omega(n);
            let h = flip(n);
            let m = equivalence_mapping(&g, &h).expect("equivalent");
            assert!(verify_stage_mapping(&g, &h, &m));
        }
    }

    #[test]
    fn equivalence_is_reflexive_and_symmetric_on_the_catalog() {
        let g = omega(4);
        let h = flip(4);
        assert!(are_equivalent(&g, &g));
        assert!(are_equivalent(&g, &h));
        assert!(are_equivalent(&h, &g));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let g = omega(3);
        let h = omega(4);
        assert_eq!(
            equivalence_mapping(&g, &h),
            Err(EquivalenceError::ShapeMismatch)
        );
        assert!(!are_equivalent(&g, &h));
    }

    #[test]
    fn non_equivalent_networks_are_reported_with_their_diagnosis() {
        let g = omega(3);
        // Replace the last stage with the degenerate parallel-link stage.
        let sigma = IndexPermutation::perfect_shuffle(3);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        let degenerate = Connection::from_fn(2, |x| x, |x| x);
        let h = ConnectionNetwork::new(2, vec![conn, degenerate]).to_digraph();
        let err = equivalence_mapping(&g, &h).unwrap_err();
        assert_ne!(err, EquivalenceError::ShapeMismatch);
        assert!(!are_equivalent(&g, &h));
    }
}
