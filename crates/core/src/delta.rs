//! Delta and bidelta properties (Kruskal & Snir).
//!
//! The paper's introduction contrasts its graph characterization with
//! Kruskal & Snir's *bidelta* condition \[11\], a sufficient condition for
//! isomorphism phrased in terms of digit-controlled routing. For 2×2 cells
//! the operational content is:
//!
//! * a network (with a fixed `(f, g)` port decomposition) is a **delta**
//!   network when the last-stage cell reached from a first-stage cell by
//!   applying the port choices `t_{n-2}, …, t_0` (one bit per connection)
//!   depends only on the tag `t`, never on the starting cell;
//! * it is **bidelta** when both the network and its reverse are delta.
//!
//! The routing-tag machinery itself (computing the tag that reaches a given
//! destination, permutation admissibility, …) lives in `min-routing`; this
//! module only hosts the topological predicates so that experiment E11 can
//! compare the paper's characterization with the bidelta condition.

use crate::network::ConnectionNetwork;
use min_labels::Label;

/// Outcome of a delta-property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReport {
    /// `true` when the property holds.
    pub holds: bool,
    /// When the property holds, `destination[t]` is the last-stage cell
    /// reached by tag `t` (a bijection for Banyan delta networks).
    pub destination: Option<Vec<u32>>,
    /// When the property fails, a witness `(tag, source_a, source_b)` such
    /// that the two sources reach different cells under the same tag.
    pub witness: Option<(Label, Label, Label)>,
}

/// Applies the port choices of `tag` (bit `k` of the tag is consumed at
/// connection `k`, 0 = `f`, 1 = `g`) starting from `source`.
pub fn route_by_tag(net: &ConnectionNetwork, source: Label, tag: Label) -> Label {
    let mut cur = source;
    for (k, conn) in net.connections().iter().enumerate() {
        cur = if (tag >> k) & 1 == 0 {
            conn.f(cur)
        } else {
            conn.g(cur)
        };
    }
    cur
}

/// Checks the delta property with respect to the network's own `(f, g)`
/// decomposition.
pub fn delta_report(net: &ConnectionNetwork) -> DeltaReport {
    let cells = net.cells_per_stage() as u64;
    let tags = 1u64 << net.connections().len();
    let mut destination = Vec::with_capacity(tags as usize);
    for tag in 0..tags {
        let expected = route_by_tag(net, 0, tag);
        for source in 1..cells {
            let got = route_by_tag(net, source, tag);
            if got != expected {
                return DeltaReport {
                    holds: false,
                    destination: None,
                    witness: Some((tag, 0, source)),
                };
            }
        }
        destination.push(expected as u32);
    }
    DeltaReport {
        holds: true,
        destination: Some(destination),
        witness: None,
    }
}

/// `true` when the network is a delta network (destination-tag routable).
pub fn is_delta(net: &ConnectionNetwork) -> bool {
    delta_report(net).holds
}

/// `true` when both the network and its reverse are delta networks.
///
/// The reverse decomposition is obtained by Proposition 1 when every stage
/// is a proper independent connection, and by the generic digraph
/// decomposition otherwise.
pub fn is_bidelta(net: &ConnectionNetwork) -> bool {
    if !is_delta(net) {
        return false;
    }
    let reverse = net
        .reverse_via_proposition1()
        .ok()
        .or_else(|| net.reverse());
    match reverse {
        Some(rev) => is_delta(&rev),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::Connection;
    use min_labels::{IndexPermutation, Permutation};

    fn omega_net(n: usize) -> ConnectionNetwork {
        let sigma = IndexPermutation::perfect_shuffle(n);
        let conn = Connection::from_link_permutation(&Permutation::from_index_perm(&sigma));
        ConnectionNetwork::new(n - 1, vec![conn; n - 1])
    }

    fn baseline_net(n: usize) -> ConnectionNetwork {
        ConnectionNetwork::from_digraph(&crate::baseline_iso::baseline_digraph(n)).unwrap()
    }

    #[test]
    fn omega_is_delta_and_bidelta() {
        for n in 2..=6 {
            let net = omega_net(n);
            let report = delta_report(&net);
            assert!(report.holds, "omega n={n} is a delta network");
            // The tag -> destination map must be a bijection.
            let mut dests = report.destination.unwrap();
            dests.sort_unstable();
            let expected: Vec<u32> = (0..net.cells_per_stage() as u32).collect();
            assert_eq!(dests, expected);
            assert!(is_bidelta(&net), "omega n={n} is bidelta");
        }
    }

    #[test]
    fn baseline_is_delta_and_bidelta() {
        for n in 2..=6 {
            let net = baseline_net(n);
            assert!(is_delta(&net), "baseline n={n}");
            assert!(is_bidelta(&net), "baseline n={n}");
        }
    }

    #[test]
    fn omega_destinations_follow_the_tag_bits() {
        // In the Omega network the destination is the tag read with the
        // first consumed bit as most significant digit.
        let net = omega_net(4);
        let report = delta_report(&net);
        let dests = report.destination.unwrap();
        for tag in 0..8u64 {
            let mut expected = 0u64;
            for k in 0..3 {
                expected = (expected << 1) | ((tag >> k) & 1);
            }
            assert_eq!(u64::from(dests[tag as usize]), expected);
        }
    }

    #[test]
    fn random_wiring_is_not_delta() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(127);
        let mut not_delta = 0;
        for _ in 0..10 {
            let connections: Vec<Connection> = (0..3)
                .map(|_| {
                    let p = Permutation::random(4, &mut rng);
                    Connection::from_link_permutation(&p)
                })
                .collect();
            let net = ConnectionNetwork::new(3, connections);
            if !is_delta(&net) {
                not_delta += 1;
            }
        }
        assert!(not_delta >= 8, "random stages are essentially never delta");
    }

    #[test]
    fn delta_witness_is_a_real_counterexample() {
        // A single non-affine stage breaks the delta property and the
        // witness must demonstrate it.
        let table: [u64; 4] = [0, 1, 3, 2];
        let conn = Connection::from_fn(
            2,
            move |x| table[x as usize],
            move |x| table[x as usize] ^ 2,
        );
        let id_stage = Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 2);
        let net = ConnectionNetwork::new(2, vec![conn, id_stage]);
        let report = delta_report(&net);
        if let Some((tag, a, b)) = report.witness {
            assert_ne!(route_by_tag(&net, a, tag), route_by_tag(&net, b, tag));
            assert!(!report.holds);
        } else {
            // If this particular wiring happens to be delta, the report must
            // say so coherently.
            assert!(report.holds);
        }
    }

    #[test]
    fn route_by_tag_consumes_one_bit_per_connection() {
        let net = omega_net(3);
        // tag 0 routes through f at both stages: f(f(src)).
        for src in 0..4u64 {
            let expected = net.connection(1).f(net.connection(0).f(src));
            assert_eq!(route_by_tag(&net, src, 0), expected);
        }
        // tag 0b10 routes f then g.
        for src in 0..4u64 {
            let expected = net.connection(1).g(net.connection(0).f(src));
            assert_eq!(route_by_tag(&net, src, 0b10), expected);
        }
    }
}
