//! PIPID permutations and the connections they induce (paper, §4).
//!
//! Section 4 relates the classical way of drawing a MIN stage — a
//! permutation `A` of the `N = 2^n` link labels — to the `(f, g)` formalism
//! of Section 3, for the special case where `A` is a **PIPID**: a
//! Permutation Induced by a Permutation `θ` of the Index Digits.
//!
//! Writing `k = θ⁻¹(0)` (the position that receives the out-port digit), the
//! two children of cell `x = (x_{n-1}, …, x_1)` are the θ-permuted label
//! with a `0` (for `f`) or a `1` (for `g`) planted at position `k-1`:
//!
//! ```text
//! f(x) = (x_{θ(n-1)}, …, x_{θ(k+1)}, 0, x_{θ(k-1)}, …, x_{θ(1)})
//! g(x) = (x_{θ(n-1)}, …, x_{θ(k+1)}, 1, x_{θ(k-1)}, …, x_{θ(1)})
//! ```
//!
//! and the paper observes that (1) `k = 0` is degenerate — both links reach
//! the same cell (Fig. 5) and the Banyan property is lost — and (2) for
//! `k ≠ 0` the connection is *independent*, with
//! `β = (α_{θ(n-1)}, …, α_{θ(k+1)}, 0, α_{θ(k-1)}, …, α_{θ(1)})`.
//! [`connection_from_pipid`] implements the construction and
//! the tests check both observations; Theorem 3 then gives the main result
//! of the paper: Banyan networks built from PIPID stages are all equivalent
//! to the Baseline network.

use crate::connection::Connection;
use min_labels::{bit, AffineMap, IndexPermutation, Label, LinearMap};
use serde::{Deserialize, Serialize};

/// A PIPID stage: the digit permutation, the induced connection, and the
/// §4 diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipidStage {
    /// The digit permutation θ on the `n` link-label digits.
    #[serde(skip)]
    theta: Option<IndexPermutation>,
    /// Critical digit `k = θ⁻¹(0)`.
    pub critical_digit: usize,
    /// `true` when `k = 0`: the stage has parallel links (Fig. 5) and cannot
    /// appear in a Banyan network.
    pub degenerate: bool,
    /// The induced connection on cell labels (`n-1` bits).
    pub connection: Connection,
}

impl PipidStage {
    /// The digit permutation θ this stage was built from.
    pub fn theta(&self) -> &IndexPermutation {
        self.theta
            .as_ref()
            .expect("constructed via connection_from_pipid")
    }
}

/// The child cell of `x` on out-port `digit` under the PIPID of `theta`,
/// evaluated positionally from the paper's formula (no permutation table).
fn pipid_child(theta: &IndexPermutation, x: Label, digit: u64) -> Label {
    let n = theta.width();
    let mut z = 0u64;
    for i in 0..n {
        let src = theta.theta(i);
        let d = if src == 0 { digit } else { bit(x, src - 1) };
        z |= d << i;
    }
    // The child cell keeps the n-1 high digits of the permuted link label.
    z >> 1
}

/// Builds the connection induced by the PIPID permutation of `θ` on the
/// link labels (paper, §4).
///
/// A PIPID routes every output digit from a fixed input digit (or from the
/// out-port digit), so `f` is **linear** over GF(2) and
/// `g = f ⊕ 2^{k-1}` for `k = θ⁻¹(0) ≥ 1` (`g = f` in the degenerate
/// `k = 0` case of Fig. 5). The connection is therefore assembled directly
/// from its packed affine certificate — `n-1` basis evaluations plus one
/// Gray-code table pass — instead of materializing and translating the
/// `2^n`-entry link permutation.
pub fn connection_from_pipid(theta: &IndexPermutation) -> PipidStage {
    assert!(theta.width() >= 1, "link labels need at least one digit");
    let width = theta.width() - 1;
    let critical_digit = theta.theta_inv(0);
    let columns: Vec<Label> = (0..width).map(|j| pipid_child(theta, 1 << j, 0)).collect();
    let linear = LinearMap::from_columns(width, width, columns);
    debug_assert_eq!(pipid_child(theta, 0, 0), 0, "a PIPID fixes the zero label");
    let difference = if critical_digit == 0 {
        0
    } else {
        1u64 << (critical_digit - 1)
    };
    let connection = Connection::from_affine(&AffineMap::new(linear, 0), difference);
    PipidStage {
        theta: Some(theta.clone()),
        critical_digit,
        degenerate: critical_digit == 0,
        connection,
    }
}

/// Convenience: the PIPID connections of a whole network given one θ per
/// inter-stage link.
pub fn connections_from_pipids(thetas: &[IndexPermutation]) -> Vec<PipidStage> {
    thetas.iter().map(connection_from_pipid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine_form::affine_form;
    use crate::independence::{is_independent, is_independent_naive};
    use crate::network::ConnectionNetwork;
    use min_graph::paths::is_banyan;
    use min_labels::{bit, Label};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Direct implementation of the paper's formula for the children of a
    /// cell under a PIPID stage, used to cross-check the link-permutation
    /// derivation.
    fn paper_formula(theta: &IndexPermutation, x: Label, port: u64) -> Label {
        let n = theta.width();
        let k = theta.theta_inv(0);
        // Link label of cell x, port b: (x_{n-1},…,x_1,b) = 2x + b.
        // z = A(link); the child cell is the n-1 high digits of z, i.e. we
        // drop digit 0 of z. The paper writes the same thing positionally.
        let mut z = 0u64;
        for i in 0..n {
            let src = theta.theta(i);
            let digit = if src == 0 { port } else { bit(x, src - 1) };
            z |= digit << i;
        }
        let _ = k;
        z >> 1
    }

    #[test]
    fn pipid_connection_matches_the_paper_formula() {
        let mut rng = ChaCha8Rng::seed_from_u64(131);
        for _ in 0..20 {
            let theta = IndexPermutation::random(5, &mut rng);
            let stage = connection_from_pipid(&theta);
            for x in 0..16u64 {
                assert_eq!(stage.connection.f(x), paper_formula(&theta, x, 0));
                assert_eq!(stage.connection.g(x), paper_formula(&theta, x, 1));
            }
        }
    }

    #[test]
    fn affine_construction_matches_the_link_permutation_derivation() {
        // The packed construction (affine certificate + Gray-code table)
        // must reproduce the historical derivation through the explicit
        // 2^n-entry link permutation, bit for bit.
        let mut rng = ChaCha8Rng::seed_from_u64(127);
        for n in 1..=6 {
            for _ in 0..10 {
                let theta = min_labels::IndexPermutation::random(n, &mut rng);
                let stage = connection_from_pipid(&theta);
                let perm = min_labels::Permutation::from_index_perm(&theta);
                let reference = Connection::from_link_permutation(&perm);
                assert_eq!(stage.connection, reference, "theta = {theta:?}");
            }
        }
    }

    #[test]
    fn pipid_connections_are_independent() {
        // §4: "So, we can associate independent connections to the PIPID
        // permutations used to build Banyan networks."
        let mut rng = ChaCha8Rng::seed_from_u64(137);
        for _ in 0..30 {
            let theta = IndexPermutation::random(5, &mut rng);
            let stage = connection_from_pipid(&theta);
            assert!(is_independent(&stage.connection));
            assert!(is_independent_naive(&stage.connection));
            // ... and in fact linear (offset 0), since PIPIDs fix the zero label.
            let form = affine_form(&stage.connection).unwrap();
            assert_eq!(form.f.offset(), 0);
        }
    }

    #[test]
    fn critical_digit_zero_is_degenerate() {
        // Any θ with θ(0) = 0 keeps the port digit in place; dropping it
        // makes both children equal: Fig. 5.
        let theta = IndexPermutation::transposition(4, 1, 3);
        let stage = connection_from_pipid(&theta);
        assert_eq!(stage.critical_digit, 0);
        assert!(stage.degenerate);
        assert!(stage.connection.has_parallel_links());
        // A network containing such a stage cannot be Banyan.
        let other = connection_from_pipid(&IndexPermutation::perfect_shuffle(4));
        let net = ConnectionNetwork::new(3, vec![other.connection, stage.connection]);
        assert!(!is_banyan(&net.to_digraph()));
    }

    #[test]
    fn non_degenerate_pipid_stages_are_two_regular() {
        let mut rng = ChaCha8Rng::seed_from_u64(139);
        for _ in 0..30 {
            let theta = IndexPermutation::random(4, &mut rng);
            let stage = connection_from_pipid(&theta);
            assert!(stage.connection.is_two_regular());
            assert_eq!(stage.degenerate, stage.connection.has_parallel_links());
        }
    }

    #[test]
    fn shuffle_stage_critical_digit_is_one() {
        let stage = connection_from_pipid(&IndexPermutation::perfect_shuffle(4));
        assert_eq!(stage.critical_digit, 1);
        assert!(!stage.degenerate);
        assert_eq!(stage.theta(), &IndexPermutation::perfect_shuffle(4));
    }

    #[test]
    fn connections_from_pipids_builds_whole_networks() {
        let n = 4;
        let thetas = vec![IndexPermutation::perfect_shuffle(n); n - 1];
        let stages = connections_from_pipids(&thetas);
        assert_eq!(stages.len(), 3);
        let net = ConnectionNetwork::new(n - 1, stages.into_iter().map(|s| s.connection).collect());
        assert!(is_banyan(&net.to_digraph()));
        assert!(crate::properties::satisfies_characterization(
            &net.to_digraph()
        ));
    }
}
