//! # `min-core` — independent connections and Baseline equivalence
//!
//! This crate is the executable form of Bermond & Fourneau, *"Independent
//! Connections: An Easy Characterization of Baseline-Equivalent Multistage
//! Interconnection Networks"* (ICPP 1988; journal version TCS 64, 1989,
//! pp. 191–201). Every definition and every result of the paper has a
//! concrete, tested counterpart here:
//!
//! | Paper | Here |
//! |-------|------|
//! | §2 MI-digraph, `P(i,j)`, `P(1,*)`, `P(*,n)`, characterization theorem | [`properties`] |
//! | §3 connection `(f,g)` between stages | [`connection::Connection`] |
//! | §3 independent connection (definition) | [`independence`] |
//! | §3 Proposition 1 (reverse of an independent connection) | [`reverse`] |
//! | §3 Lemma 2 and Theorem 3 (Banyan + independent ⇒ Baseline-equivalent) | [`properties`], [`baseline_iso`], [`equivalence`] |
//! | §4 PIPID permutations, critical digit `k = θ⁻¹(0)`, Fig. 5 degeneracy | [`pipid`] |
//! | §1 discussion of Agrawal's buddy property \[8\]/\[10\] | [`buddy`] |
//! | §1 discussion of Kruskal & Snir's bidelta property \[11\] | [`delta`] |
//!
//! Beyond the paper's text, the crate contributes two engineering pieces a
//! user of the theory needs:
//!
//! * an **affine characterization** of independent connections
//!   ([`affine_form()`]): `(f,g)` is independent iff `f` is affine over GF(2)
//!   and `g = f ⊕ c`. This yields an `O(N·n)` checker with an explicit
//!   certificate and a generator of random independent connections used
//!   throughout the test and benchmark suites;
//! * a **certified constructive Baseline isomorphism**
//!   ([`baseline_iso`]): the nested component structure promised by
//!   `P(1,*)`/`P(*,n)` is turned into an explicit node relabelling onto the
//!   left-recursive Baseline network, and the produced mapping is verified
//!   arc by arc before being returned. Composition of two certificates gives
//!   the explicit equivalence mapping between any two equivalent networks
//!   ([`equivalence`]);
//! * an **equivalence-classification campaign engine** ([`classify`]): whole
//!   families of networks — the classical catalog, random samples — are
//!   decided in one deterministic, parallel sweep, partitioned into
//!   equivalence classes with a per-network witness, and the resulting
//!   [`ClassificationReport`] is byte-identical at any worker-thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine_form;
pub mod baseline_iso;
pub mod buddy;
pub mod classify;
pub mod connection;
pub mod delta;
pub mod equivalence;
pub mod error;
pub mod independence;
pub mod network;
pub mod pipid;
pub mod properties;
pub mod reverse;

pub use affine_form::{affine_form, AffineForm};
pub use baseline_iso::{baseline_digraph, baseline_isomorphism, BaselineIsomorphism};
pub use buddy::{buddy_property, reverse_buddy_property, BuddyReport};
pub use classify::{
    classify_subjects, ClassificationReport, ClassifyError, EquivalenceClass, Subject,
    SubjectResult, Witness,
};
pub use connection::Connection;
pub use delta::{is_bidelta, is_delta, DeltaReport};
pub use equivalence::{are_equivalent, compose_baseline_certificates, equivalence_mapping};
pub use error::{EquivalenceError, ReverseError};
pub use independence::{
    independence_certificate, is_independent, is_independent_naive, IndependenceCertificate,
    IndependenceViolation,
};
pub use network::ConnectionNetwork;
pub use pipid::{connection_from_pipid, PipidStage};
pub use properties::{
    characterization_report, p_one_star, p_property, p_star_n, satisfies_characterization,
    CharacterizationReport,
};
pub use reverse::reverse_connection;
