//! Connections `(f, g)` between two consecutive stages.
//!
//! Paper, §3: *"a connection `(f, g)` between the i-th stage and the
//! (i+1)-st stage of the MI-digraph `G` is a pair of functions `f` and `g`
//! defined on `Z_2^{n-1}` such that, if `x` is a node of the i-th stage then
//! the two children of `x` in the (i+1)-st stage are `f(x)` and `g(x)`."*
//!
//! [`Connection`] stores the two function tables explicitly. Constructors
//! exist for closures, for affine pairs, for PIPID stages (§4) and for
//! arbitrary link permutations (the classical way of drawing a MIN stage,
//! Fig. 4).

use min_labels::{all_labels, mask, AffineMap, Label, Permutation, Width};
use serde::{Deserialize, Serialize};

/// A connection `(f, g)` on cell labels of `width` bits.
///
/// The domain is `Z_2^width` (i.e. `2^width` cells per stage); `f(x)` and
/// `g(x)` are the two children of cell `x`. `f(x) = g(x)` is allowed — that
/// is the degenerate parallel-link situation of the paper's Fig. 5 — and is
/// reported by [`Connection::has_parallel_links`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    width: Width,
    f: Vec<u32>,
    g: Vec<u32>,
}

impl Connection {
    /// Builds a connection from explicit tables.
    pub fn from_tables(width: Width, f: Vec<u32>, g: Vec<u32>) -> Self {
        min_labels::check_width(width);
        let n = 1usize << width;
        assert_eq!(f.len(), n, "f must have 2^width entries");
        assert_eq!(g.len(), n, "g must have 2^width entries");
        assert!(
            f.iter().chain(g.iter()).all(|&y| (y as usize) < n),
            "images must be valid cell labels"
        );
        Connection { width, f, g }
    }

    /// Builds a connection from two closures.
    pub fn from_fn<F, G>(width: Width, f: F, g: G) -> Self
    where
        F: Fn(Label) -> Label,
        G: Fn(Label) -> Label,
    {
        let m = mask(width);
        let ft = all_labels(width).map(|x| (f(x) & m) as u32).collect();
        let gt = all_labels(width).map(|x| (g(x) & m) as u32).collect();
        Connection {
            width,
            f: ft,
            g: gt,
        }
    }

    /// Builds the connection induced by a permutation of the `2^{width+1}`
    /// **link** labels (paper, §4 / Fig. 4).
    ///
    /// The two out-links of cell `x` carry the labels `2x` and `2x + 1`; the
    /// permutation `A` maps out-link labels to in-link labels of the next
    /// stage, and the cell incident to an in-link is given by its `width`
    /// high-order digits, i.e. `A(2x + b) >> 1`.
    pub fn from_link_permutation(perm: &Permutation) -> Self {
        assert!(
            perm.width() >= 1,
            "a link permutation needs at least 1 digit"
        );
        let width = perm.width() - 1;
        let f = all_labels(width)
            .map(|x| (perm.apply(2 * x) >> 1) as u32)
            .collect();
        let g = all_labels(width)
            .map(|x| (perm.apply(2 * x + 1) >> 1) as u32)
            .collect();
        Connection { width, f, g }
    }

    /// Builds the connection `(f, f ⊕ difference)` from an affine map — by
    /// the affine characterization (see [`crate::affine_form()`]) every such
    /// connection is independent.
    ///
    /// The table is produced by the packed Gray-code evaluator
    /// ([`AffineMap::table`]): one XOR per cell instead of one per label
    /// digit.
    pub fn from_affine(f: &AffineMap, difference: Label) -> Self {
        assert_eq!(
            f.width_in(),
            f.width_out(),
            "a stage connection maps a stage onto an equal-sized stage"
        );
        let width = f.width_in();
        let d = difference & mask(width);
        let table = f.table();
        Connection {
            width,
            f: table.iter().map(|&y| y as u32).collect(),
            g: table.iter().map(|&y| (y ^ d) as u32).collect(),
        }
    }

    /// Cell-label width (the paper's `n-1`).
    pub fn width(&self) -> Width {
        self.width
    }

    /// Number of cells per stage, `2^width`.
    pub fn cells(&self) -> usize {
        1usize << self.width
    }

    /// `f(x)`.
    #[inline]
    pub fn f(&self, x: Label) -> Label {
        self.f[x as usize] as Label
    }

    /// `g(x)`.
    #[inline]
    pub fn g(&self, x: Label) -> Label {
        self.g[x as usize] as Label
    }

    /// The two children `{f(x), g(x)}` of cell `x` (possibly equal).
    #[inline]
    pub fn children(&self, x: Label) -> [Label; 2] {
        [self.f(x), self.g(x)]
    }

    /// Raw `f` table.
    pub fn f_table(&self) -> &[u32] {
        &self.f
    }

    /// Raw `g` table.
    pub fn g_table(&self) -> &[u32] {
        &self.g
    }

    /// `true` when some cell has `f(x) = g(x)` (two parallel links towards a
    /// single child — the degenerate situation of Fig. 5, which destroys the
    /// Banyan property).
    pub fn has_parallel_links(&self) -> bool {
        self.f.iter().zip(self.g.iter()).any(|(a, b)| a == b)
    }

    /// In-degree histogram of the target stage: `indegree[y]` counts how many
    /// arcs enter cell `y`.
    pub fn indegrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.cells()];
        for &y in self.f.iter().chain(self.g.iter()) {
            d[y as usize] += 1;
        }
        d
    }

    /// `true` when every target cell has in-degree exactly 2 (the regularity
    /// demanded of interior MI-digraph stages).
    pub fn is_two_regular(&self) -> bool {
        self.indegrees().iter().all(|&d| d == 2)
    }

    /// The constant difference `f ⊕ g` if it is constant, `None` otherwise.
    ///
    /// Lemma 2 observes that for independent connections
    /// `f(x) ⊕ g(x) = f(y) ⊕ g(y)` for all `x, y`; this accessor is the
    /// corresponding diagnostic.
    pub fn constant_difference(&self) -> Option<Label> {
        let d0 = self.f(0) ^ self.g(0);
        if all_labels(self.width).all(|x| self.f(x) ^ self.g(x) == d0) {
            Some(d0)
        } else {
            None
        }
    }

    /// Exchanges the roles of `f` and `g` (the induced digraph is unchanged).
    pub fn swapped(&self) -> Connection {
        Connection {
            width: self.width,
            f: self.g.clone(),
            g: self.f.clone(),
        }
    }

    /// Applies a relabelling `σ` to the *source* stage: the new connection is
    /// `(f ∘ σ, g ∘ σ)`.
    pub fn precompose(&self, sigma: &Permutation) -> Connection {
        assert_eq!(sigma.width(), self.width, "widths must match");
        Connection {
            width: self.width,
            f: all_labels(self.width)
                .map(|x| self.f[sigma.apply(x) as usize])
                .collect(),
            g: all_labels(self.width)
                .map(|x| self.g[sigma.apply(x) as usize])
                .collect(),
        }
    }

    /// Applies a relabelling `σ` to the *target* stage: the new connection is
    /// `(σ ∘ f, σ ∘ g)`.
    pub fn postcompose(&self, sigma: &Permutation) -> Connection {
        assert_eq!(sigma.width(), self.width, "widths must match");
        Connection {
            width: self.width,
            f: self
                .f
                .iter()
                .map(|&y| sigma.apply(y as u64) as u32)
                .collect(),
            g: self
                .g
                .iter()
                .map(|&y| sigma.apply(y as u64) as u32)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_labels::IndexPermutation;

    /// The first Baseline stage at width 2: f(x) = x >> 1, g(x) = (x>>1)|2.
    fn baseline_stage0() -> Connection {
        Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 0b10)
    }

    #[test]
    fn from_fn_and_tables_agree() {
        let a = baseline_stage0();
        let b = Connection::from_tables(2, vec![0, 0, 1, 1], vec![2, 2, 3, 3]);
        assert_eq!(a, b);
        assert_eq!(a.children(1), [0, 2]);
        assert_eq!(a.cells(), 4);
    }

    #[test]
    fn link_permutation_derivation_matches_paper_formula() {
        // Perfect shuffle on 3-digit links: child cell of x on port b is
        // (2x + b) mod 4 — the textbook Omega stage.
        let sigma = IndexPermutation::perfect_shuffle(3);
        let perm = Permutation::from_index_perm(&sigma);
        let conn = Connection::from_link_permutation(&perm);
        assert_eq!(conn.width(), 2);
        for x in 0..4u64 {
            assert_eq!(conn.f(x), (2 * x) % 4);
            assert_eq!(conn.g(x), (2 * x + 1) % 4);
        }
        assert!(conn.is_two_regular());
        assert!(!conn.has_parallel_links());
    }

    #[test]
    fn degenerate_link_permutation_produces_parallel_links() {
        // A permutation fixing digit 0 (θ⁻¹(0) = 0) sends both out-links of
        // a cell to the same child: Fig. 5.
        let theta = IndexPermutation::transposition(3, 1, 2);
        let perm = Permutation::from_index_perm(&theta);
        let conn = Connection::from_link_permutation(&perm);
        assert!(conn.has_parallel_links());
        for x in 0..4u64 {
            assert_eq!(conn.f(x), conn.g(x));
        }
    }

    #[test]
    fn from_affine_builds_constant_difference_pairs() {
        let aff = AffineMap::identity(3);
        let conn = Connection::from_affine(&aff, 0b101);
        assert_eq!(conn.constant_difference(), Some(0b101));
        for x in 0..8u64 {
            assert_eq!(conn.f(x), x);
            assert_eq!(conn.g(x), x ^ 0b101);
        }
        assert!(conn.is_two_regular());
    }

    #[test]
    fn constant_difference_detects_non_constant_pairs() {
        let conn = Connection::from_fn(2, |x| x, |x| if x == 0 { 1 } else { x ^ 1 });
        // f ⊕ g is 1 everywhere except at x = 0 and 1 where it is 1 as well;
        // build a genuinely non-constant example instead:
        let conn2 = Connection::from_fn(2, |x| x, |x| if x < 2 { x ^ 1 } else { x ^ 2 });
        assert_eq!(conn.constant_difference(), Some(1));
        assert_eq!(conn2.constant_difference(), None);
    }

    #[test]
    fn indegree_accounting() {
        let conn = baseline_stage0();
        assert_eq!(conn.indegrees(), vec![2, 2, 2, 2]);
        assert!(conn.is_two_regular());
        let skew = Connection::from_fn(2, |_| 0, |x| x);
        assert_eq!(skew.indegrees(), vec![5, 1, 1, 1]);
        assert!(!skew.is_two_regular());
    }

    #[test]
    fn swapped_exchanges_roles() {
        let conn = baseline_stage0();
        let sw = conn.swapped();
        for x in 0..4u64 {
            assert_eq!(conn.f(x), sw.g(x));
            assert_eq!(conn.g(x), sw.f(x));
        }
    }

    #[test]
    fn pre_and_post_composition_relabel_the_right_side() {
        let conn = baseline_stage0();
        let sigma = Permutation::from_fn(2, |x| x ^ 0b11);
        let pre = conn.precompose(&sigma);
        let post = conn.postcompose(&sigma);
        for x in 0..4u64 {
            assert_eq!(pre.f(x), conn.f(x ^ 0b11));
            assert_eq!(post.f(x), conn.f(x) ^ 0b11);
        }
    }

    #[test]
    #[should_panic(expected = "2^width entries")]
    fn from_tables_rejects_wrong_sizes() {
        let _ = Connection::from_tables(2, vec![0, 1], vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "valid cell labels")]
    fn from_tables_rejects_out_of_range_images() {
        let _ = Connection::from_tables(1, vec![0, 3], vec![1, 0]);
    }
}
