//! Shared helpers for the Criterion benchmark harnesses.
//!
//! Every bench pulls its workload sizes and seeds from here so that the
//! rows reported in EXPERIMENTS.md come from a single, consistent sweep.

/// Default deterministic seed used by every benchmark workload generator.
pub const BENCH_SEED: u64 = 0x1988_0705;

/// Stage counts (`n`, with `N = 2^n` terminals) swept by the near-linear
/// algorithms (independence checks, P-property sweeps, certified
/// isomorphism).
pub const STAGE_SWEEP: &[usize] = &[4, 6, 8, 10, 12];

/// Stage counts used by the quadratic-cost algorithms (exact Banyan check,
/// exhaustive backtracking isomorphism) which cannot reach the larger sizes.
pub const SMALL_STAGE_SWEEP: &[usize] = &[3, 4, 5, 6, 7, 8];

/// Criterion tuning shared by all benches: small sample counts so the whole
/// suite completes in minutes on a laptop while still producing stable
/// medians.
///
/// Setting the `BENCH_QUICK` environment variable to anything but `0` or the
/// empty string switches to smoke-test sizing (3 samples, tens of
/// milliseconds per benchmark) — this is what the CI `bench-smoke` job uses
/// to keep the perf-artifact run fast.
pub fn configure(c: criterion::Criterion) -> criterion::Criterion {
    if quick_mode() {
        c.sample_size(3)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        c.sample_size(10)
            .measurement_time(std::time::Duration::from_millis(800))
            .warm_up_time(std::time::Duration::from_millis(200))
    }
}

/// Whether `BENCH_QUICK` requests smoke-test sizing.
pub fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}
