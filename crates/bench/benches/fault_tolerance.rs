//! Fault-injection throughput ablation.
//!
//! Measures simulated cycles per second of the three switching cores —
//! unbuffered, FIFO and multi-lane wormhole — on a healthy fabric, under a
//! single dead link, and under a seeded 4-fault plan, plus the incremental
//! cost of a dormant (never-firing) plan. The healthy rows double as the
//! regression guard for the fault subsystem's zero-cost-when-unused claim:
//! `fault_throughput/<core>/healthy` should track the corresponding
//! `simulator_ablation` medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use min_bench::{configure, BENCH_SEED};
use min_networks::omega;
use min_sim::{simulate, BufferMode, FaultPlan, SimConfig};

const SIM_CYCLES: u64 = 300;
const STAGES: usize = 5;

fn bench_fault_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_throughput");
    group.throughput(Throughput::Elements(SIM_CYCLES));
    let net = omega(STAGES);
    let cells = net.cells_per_stage();

    let cores: [(&str, BufferMode); 3] = [
        ("unbuffered", BufferMode::Unbuffered),
        ("fifo4", BufferMode::Fifo(4)),
        (
            "worm2x4x4",
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 4,
                flits_per_packet: 4,
            },
        ),
    ];
    let plans: [(&str, FaultPlan); 4] = [
        ("healthy", FaultPlan::none()),
        (
            "dormant",
            FaultPlan::none().with_dead_link(1, 0, 1, SIM_CYCLES + 1),
        ),
        ("1-fault", FaultPlan::none().with_dead_link(1, 0, 1, 0)),
        (
            "4-fault",
            FaultPlan::random_links(BENCH_SEED, 4, STAGES, cells),
        ),
    ];

    for (core_name, mode) in &cores {
        for (plan_name, plan) in &plans {
            let cfg = SimConfig::default()
                .with_load(0.9)
                .with_cycles(SIM_CYCLES, 0)
                .with_seed(BENCH_SEED)
                .with_buffer(*mode)
                .with_faults(plan.clone());
            group.bench_with_input(
                BenchmarkId::new(format!("{core_name}/{plan_name}"), STAGES),
                &cfg,
                |b, cfg| b.iter(|| simulate(net.clone(), cfg.clone()).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_fault_tolerance
}
criterion_main!(group);
