//! E6 / E8 / E13 — constructing the certified Baseline isomorphism.
//!
//! The constructive algorithm (two union-find sweeps + verification) is
//! near-linear; the generic backtracking search it replaces is exponential
//! and only benchmarked at tiny sizes for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use min_bench::{configure, STAGE_SWEEP};
use min_core::baseline_iso::{baseline_digraph, baseline_isomorphism};
use min_core::equivalence::equivalence_mapping;
use min_graph::iso::find_isomorphism;
use min_networks::{flip, omega};

fn bench_baseline_iso(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_isomorphism");
    for &n in STAGE_SWEEP {
        let g = omega(n).to_digraph();
        group.bench_with_input(
            BenchmarkId::new("constructive_certificate", n),
            &g,
            |b, g| b.iter(|| baseline_isomorphism(std::hint::black_box(g)).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("equivalence_mapping_pair");
    for &n in STAGE_SWEEP {
        let a = omega(n).to_digraph();
        let b_net = flip(n).to_digraph();
        group.bench_with_input(
            BenchmarkId::new("omega_vs_flip", n),
            &(a, b_net),
            |b, (x, y)| {
                b.iter(|| {
                    equivalence_mapping(std::hint::black_box(x), std::hint::black_box(y)).unwrap()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("exhaustive_search_contrast");
    for &n in &[3usize, 4] {
        let g = omega(n).to_digraph();
        let base = baseline_digraph(n);
        group.bench_with_input(
            BenchmarkId::new("backtracking", n),
            &(g, base),
            |b, (g, base)| {
                b.iter(|| {
                    assert!(find_isomorphism(
                        std::hint::black_box(g),
                        std::hint::black_box(base),
                        u64::MAX
                    )
                    .is_isomorphic())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_baseline_iso
}
criterion_main!(group);
