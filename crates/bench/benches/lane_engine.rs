//! Bit-parallel replication engine vs. the scalar reference.
//!
//! Measures batched replication sweeps of the unbuffered omega network —
//! the workload the campaign layer hands to `min_sim::batch` — through both
//! routes: the word-packed `LaneEngine` (64 replications per `u64`) and the
//! reseeded scalar simulator. The packed/scalar ratio at each replication
//! count is the headline speedup of the bit-parallel engine; both routes
//! produce bit-identical metrics (pinned by the packed-oracle tests), so
//! the comparison is pure throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use min_bench::{configure, BENCH_SEED};
use min_sim::campaign::scenario_seed;
use min_sim::lane::{LaneEngine, LANE_WIDTH};
use min_sim::{SimConfig, Simulator};

const SIM_CYCLES: u64 = 300;
// A 1024-terminal network: large enough that switching and injection run
// over tens of kilobytes of packed state per cycle, which is the regime the
// campaign sweeps live in and where the word-packed engine's advantage is
// widest.
const STAGES: usize = 10;
const REPLICATIONS: &[usize] = &[64, 256, 1024];

fn workload() -> (min_core::ConnectionNetwork, SimConfig) {
    let net = min_networks::omega(STAGES);
    let cfg = SimConfig::default()
        .with_load(0.9)
        .with_cycles(SIM_CYCLES, 30)
        .with_seed(BENCH_SEED);
    (net, cfg)
}

fn seeds(reps: usize) -> Vec<u64> {
    (0..reps).map(|i| scenario_seed(BENCH_SEED, i)).collect()
}

fn bench_lane_engine(c: &mut Criterion) {
    let (net, cfg) = workload();

    let mut group = c.benchmark_group("lane_engine_packed");
    for &reps in REPLICATIONS {
        // One simulated cycle per replication is one element of work, so
        // packed and scalar throughputs are directly comparable.
        group.throughput(Throughput::Elements(reps as u64 * SIM_CYCLES));
        let seeds = seeds(reps);
        group.bench_with_input(BenchmarkId::new("unbuffered", reps), &seeds, |b, seeds| {
            b.iter(|| {
                let mut out = Vec::with_capacity(seeds.len());
                for chunk in seeds.chunks(LANE_WIDTH) {
                    out.extend(
                        LaneEngine::new(net.clone(), cfg.clone(), chunk)
                            .unwrap()
                            .run(),
                    );
                }
                out
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lane_engine_scalar");
    for &reps in REPLICATIONS {
        group.throughput(Throughput::Elements(reps as u64 * SIM_CYCLES));
        let seeds = seeds(reps);
        group.bench_with_input(BenchmarkId::new("unbuffered", reps), &seeds, |b, seeds| {
            b.iter(|| {
                let mut sim = Simulator::new(net.clone(), cfg.clone().with_seed(seeds[0])).unwrap();
                let mut out = Vec::with_capacity(seeds.len());
                for &seed in seeds {
                    sim.reseed(seed);
                    out.push(sim.run());
                }
                out
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_lane_engine
}
criterion_main!(group);
