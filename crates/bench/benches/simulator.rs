//! E12 — switch-level simulation throughput.
//!
//! Measures simulated cycles per second of the arena-backed switching cores
//! — unbuffered, FIFO and multi-lane wormhole — under uniform and hot-spot
//! traffic, across the catalog: the "behavioural interchangeability"
//! experiment and the buffer-architecture ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use min_bench::{configure, BENCH_SEED};
use min_networks::ClassicalNetwork;
use min_sim::{simulate, BufferMode, SimConfig, TrafficPattern};

const SIM_CYCLES: u64 = 300;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_catalog");
    group.throughput(Throughput::Elements(SIM_CYCLES));
    let n = 6;
    for kind in ClassicalNetwork::ALL {
        let net = kind.build(n);
        group.bench_with_input(
            BenchmarkId::new(kind.name().replace(' ', "_"), n),
            &net,
            |b, net| {
                b.iter(|| {
                    let cfg = SimConfig::default()
                        .with_load(0.9)
                        .with_cycles(SIM_CYCLES, 0)
                        .with_seed(BENCH_SEED);
                    simulate(net.clone(), cfg).unwrap()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("simulator_ablation");
    group.throughput(Throughput::Elements(SIM_CYCLES));
    let net = min_networks::omega(6);
    let scenarios: Vec<(&str, SimConfig)> = vec![
        (
            "unbuffered_uniform",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(SIM_CYCLES, 0),
        ),
        (
            "fifo4_uniform",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(SIM_CYCLES, 0)
                .with_buffer(BufferMode::Fifo(4)),
        ),
        (
            "unbuffered_hotspot",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(SIM_CYCLES, 0)
                .with_traffic(TrafficPattern::Hotspot {
                    fraction: 0.25,
                    target: 0,
                }),
        ),
        (
            "fifo4_bitreversal",
            SimConfig::default()
                .with_load(0.8)
                .with_cycles(SIM_CYCLES, 0)
                .with_buffer(BufferMode::Fifo(4))
                .with_traffic(TrafficPattern::BitReversal),
        ),
        (
            "worm2x4x4_uniform",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(SIM_CYCLES, 0)
                .with_buffer(BufferMode::Wormhole {
                    lanes: 2,
                    lane_depth: 4,
                    flits_per_packet: 4,
                }),
        ),
        (
            "worm4x2x8_hotspot",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(SIM_CYCLES, 0)
                .with_buffer(BufferMode::Wormhole {
                    lanes: 4,
                    lane_depth: 2,
                    flits_per_packet: 8,
                })
                .with_traffic(TrafficPattern::Hotspot {
                    fraction: 0.25,
                    target: 0,
                }),
        ),
    ];
    for (name, cfg) in scenarios {
        group.bench_with_input(BenchmarkId::new(name, 6), &cfg, |b, cfg| {
            b.iter(|| simulate(net.clone(), cfg.clone()).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_simulator
}
criterion_main!(group);
