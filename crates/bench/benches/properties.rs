//! E3 / E6 / E13 — the P-property sweeps and the Banyan check.
//!
//! The incremental union-find sweeps (`P(1,*)`, `P(*,n)`) are near-linear in
//! the number of arcs and scale to large networks; the exact Banyan check is
//! quadratic in the number of cells and is swept over the small sizes only —
//! the crossover is the ablation DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use min_bench::{configure, SMALL_STAGE_SWEEP, STAGE_SWEEP};
use min_core::properties::{p_one_star, p_property, p_star_n, satisfies_characterization};
use min_graph::paths::is_banyan;
use min_networks::omega;

fn bench_properties(c: &mut Criterion) {
    let mut group = c.benchmark_group("p_properties");
    for &n in STAGE_SWEEP {
        let g = omega(n).to_digraph();
        group.bench_with_input(BenchmarkId::new("p_one_star_sweep", n), &g, |b, g| {
            b.iter(|| p_one_star(std::hint::black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("p_star_n_sweep", n), &g, |b, g| {
            b.iter(|| p_star_n(std::hint::black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("p_from_scratch_all", n), &g, |b, g| {
            b.iter(|| {
                // The naive alternative: one union-find per prefix.
                (0..g.stages()).all(|j| p_property(std::hint::black_box(g), 0, j))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("banyan_check");
    for &n in SMALL_STAGE_SWEEP {
        let g = omega(n).to_digraph();
        group.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
            b.iter(|| is_banyan(std::hint::black_box(g)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("full_characterization");
    for &n in SMALL_STAGE_SWEEP {
        let g = omega(n).to_digraph();
        group.bench_with_input(BenchmarkId::new("banyan_plus_p", n), &g, |b, g| {
            b.iter(|| satisfies_characterization(std::hint::black_box(g)))
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_properties
}
criterion_main!(group);
