//! E11 / E12 — routing-layer costs.
//!
//! Self-routing table construction, single-path extraction, full-permutation
//! conflict analysis and the admissibility censuses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use min_bench::{configure, BENCH_SEED, STAGE_SWEEP};
use min_networks::{baseline, omega};
use min_routing::analysis::{admissibility_exhaustive, admissibility_monte_carlo};
use min_routing::path::route_terminals;
use min_routing::permutation_routing::permutation_conflicts;
use min_routing::tag::destination_tags;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("self_routing_table");
    for &n in STAGE_SWEEP {
        let net = omega(n);
        group.bench_with_input(BenchmarkId::new("destination_tags", n), &net, |b, net| {
            b.iter(|| destination_tags(std::hint::black_box(net)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("single_path");
    for &n in STAGE_SWEEP {
        let net = baseline(n);
        let terminals = net.terminals() as u64;
        group.bench_with_input(BenchmarkId::new("route_terminals", n), &net, |b, net| {
            b.iter(|| route_terminals(std::hint::black_box(net), 1, terminals - 2).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("permutation_conflicts");
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    for &n in &[4usize, 6, 8] {
        let net = omega(n);
        let mut perm: Vec<u64> = (0..net.terminals() as u64).collect();
        perm.shuffle(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("full_permutation", n),
            &(net, perm),
            |b, (net, perm)| b.iter(|| permutation_conflicts(std::hint::black_box(net), perm)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("admissibility_census");
    group.bench_function("exhaustive_N8", |b| {
        let net = omega(3);
        b.iter(|| admissibility_exhaustive(std::hint::black_box(&net)))
    });
    group.bench_function("monte_carlo_1000_N32", |b| {
        let net = omega(5);
        let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
        b.iter(|| admissibility_monte_carlo(std::hint::black_box(&net), 1_000, &mut rng))
    });
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_routing
}
criterion_main!(group);
