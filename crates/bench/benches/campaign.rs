//! Scenario-campaign throughput: wall-clock cost of expanding and running a
//! small catalog grid, sequentially and fanned out across worker threads.
//! The scenarios-per-second throughput column is the number the CI perf
//! artifact tracks for the campaign subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use min_bench::{configure, BENCH_SEED};
use min_sim::campaign::{run_campaign, CampaignConfig};
use min_sim::{BufferMode, TrafficPattern};

fn small_campaign() -> CampaignConfig {
    CampaignConfig::over_catalog(3..=4)
        .with_seed(BENCH_SEED)
        .with_traffic(vec![TrafficPattern::Uniform, TrafficPattern::BitReversal])
        .with_loads(vec![0.5, 1.0])
        .with_buffer_modes(vec![
            BufferMode::Unbuffered,
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 2,
                flits_per_packet: 4,
            },
        ])
        .with_cycles(120, 0)
}

fn bench_campaign(c: &mut Criterion) {
    let config = small_campaign();
    let scenarios = config.scenario_count() as u64;

    let mut group = c.benchmark_group("campaign_run");
    group.throughput(Throughput::Elements(scenarios));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("catalog_n3_n4", threads),
            &threads,
            |b, &threads| b.iter(|| run_campaign(&config, threads).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("campaign_expand");
    group.throughput(Throughput::Elements(scenarios));
    group.bench_function("scenarios", |b| b.iter(|| config.scenarios().unwrap()));
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_campaign
}
criterion_main!(group);
