//! E9 — the paper's headline corollary as a benchmark.
//!
//! Builds the six classical networks and computes the full 6×6 pairwise
//! equivalence matrix (36 verified certificates) at two sizes, plus the cost
//! of constructing each network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use min_bench::configure;
use min_core::equivalence::equivalence_mapping;
use min_networks::ClassicalNetwork;

fn bench_catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_construction");
    for &n in &[6usize, 10] {
        for kind in ClassicalNetwork::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), n),
                &n,
                |b, &n| b.iter(|| std::hint::black_box(kind.build(n))),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("catalog_equivalence_matrix");
    for &n in &[5usize, 7] {
        let digraphs: Vec<_> = ClassicalNetwork::ALL
            .iter()
            .map(|k| k.build(n).to_digraph())
            .collect();
        group.bench_with_input(BenchmarkId::new("full_6x6", n), &digraphs, |b, digraphs| {
            b.iter(|| {
                let mut ok = 0usize;
                for a in digraphs {
                    for bb in digraphs {
                        if equivalence_mapping(a, bb).is_ok() {
                            ok += 1;
                        }
                    }
                }
                assert_eq!(ok, 36);
                ok
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_catalog
}
criterion_main!(group);
