//! E13 / ablation — the three independence checkers.
//!
//! Compares the definitional `O(N²)` check, the basis `O(N·n)` check and the
//! affine-form extraction on the stages of the Omega network and on random
//! proper independent connections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use min_bench::{configure, BENCH_SEED, SMALL_STAGE_SWEEP, STAGE_SWEEP};
use min_core::affine_form::{affine_form, random_proper_independent_connection};
use min_core::independence::{is_independent, is_independent_naive};
use min_core::pipid::connection_from_pipid;
use min_labels::IndexPermutation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_independence(c: &mut Criterion) {
    let mut group = c.benchmark_group("independence_check");
    for &n in STAGE_SWEEP {
        let theta = IndexPermutation::perfect_shuffle(n);
        let conn = connection_from_pipid(&theta).connection;
        group.bench_with_input(BenchmarkId::new("basis", n), &conn, |b, conn| {
            b.iter(|| is_independent(std::hint::black_box(conn)))
        });
        group.bench_with_input(BenchmarkId::new("affine_form", n), &conn, |b, conn| {
            b.iter(|| affine_form(std::hint::black_box(conn)).is_some())
        });
    }
    for &n in SMALL_STAGE_SWEEP {
        let theta = IndexPermutation::perfect_shuffle(n);
        let conn = connection_from_pipid(&theta).connection;
        group.bench_with_input(BenchmarkId::new("naive", n), &conn, |b, conn| {
            b.iter(|| is_independent_naive(std::hint::black_box(conn)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("independence_random_proper");
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    for &n in STAGE_SWEEP {
        let conn = random_proper_independent_connection(n - 1, true, &mut rng);
        group.bench_with_input(BenchmarkId::new("basis", n), &conn, |b, conn| {
            b.iter(|| is_independent(std::hint::black_box(conn)))
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_independence
}
criterion_main!(group);
