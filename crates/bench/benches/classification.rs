//! Classification campaigns and the packed GF(2) kernels under them.
//!
//! Two groups:
//!
//! * `classification_campaign` — the end-to-end equivalence-classification
//!   campaign over the classical catalog (the workload of the CI
//!   `classify-smoke` job, at bench-friendly sizes);
//! * `classification_kernels` — the GF(2) kernel suite the classification
//!   decision procedure leans on (rank, kernel, solve, inverse, compose),
//!   run packed (`min_labels::bitmat`) versus the retained scalar baseline
//!   (`min_labels::scalar`) on identical random matrix batches. The CI
//!   delta table tracks `packed/<n>` against `scalar/<n>`; the packed path
//!   is expected to stay ≥2× ahead at n = 12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use min_bench::{configure, BENCH_SEED};
use min_core::classify::classify_subjects;
use min_labels::{mask, scalar, BitMatrix, Label};
use min_networks::ClassificationGrid;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Batch size for the kernel suite: enough work per iteration to dwarf the
/// measurement overhead, small enough to stay cache-resident.
const KERNEL_BATCH: usize = 24;

fn random_batch(width: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<Label>> {
    (0..KERNEL_BATCH)
        .map(|_| (0..width).map(|_| rng.gen::<u64>() & mask(width)).collect())
        .collect()
}

/// The packed kernel suite over one batch: rank + kernel + solve + inverse
/// per matrix, plus a composition with the batch neighbour.
///
/// The accumulator folds in only outputs that are *unique* (rank, kernel
/// dimension, solvability, the inverse, the product); kernel generators and
/// particular solutions are algorithm-dependent representatives, so they
/// pass through `black_box` instead.
fn packed_suite(width: usize, batch: &[Vec<Label>], targets: &[Label]) -> u64 {
    let mut acc = 0u64;
    let mats: Vec<BitMatrix> = batch
        .iter()
        .map(|cols| BitMatrix::from_rows(width, cols.clone()))
        .collect();
    for (i, m) in mats.iter().enumerate() {
        acc = acc.wrapping_add(m.rank() as u64);
        acc = acc.wrapping_add(black_box(m.row_relations()).len() as u64);
        acc = acc.wrapping_add(u64::from(
            black_box(m.solve_combination(targets[i])).is_some(),
        ));
        if let Some(inv) = m.combination_inverse() {
            acc ^= inv[0];
        }
        let product = mats[(i + 1) % mats.len()].mul(m);
        acc ^= product.row(0);
    }
    acc
}

/// The identical logical suite through the retained scalar reference path.
fn scalar_suite(width: usize, batch: &[Vec<Label>], targets: &[Label]) -> u64 {
    let mut acc = 0u64;
    for (i, cols) in batch.iter().enumerate() {
        acc = acc.wrapping_add(scalar::rank(width, cols) as u64);
        acc = acc.wrapping_add(black_box(scalar::kernel(width, cols)).len() as u64);
        acc = acc.wrapping_add(u64::from(
            black_box(scalar::solve(width, cols, targets[i])).is_some(),
        ));
        if let Some(inv) = scalar::inverse(width, cols) {
            acc ^= inv[0];
        }
        let next = &batch[(i + 1) % batch.len()];
        let product = scalar::compose(cols, next);
        acc ^= product[0];
    }
    acc
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification_campaign");
    for &max_stages in &[4usize, 6, 8] {
        let grid = ClassificationGrid::over_catalog(2..=max_stages).with_seed(BENCH_SEED);
        let subjects = grid.subjects();
        group.bench_with_input(
            BenchmarkId::new("catalog", max_stages),
            &subjects,
            |b, subjects| b.iter(|| classify_subjects(black_box(subjects), 1).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("classification_kernels");
    for &width in &[8usize, 12, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED ^ width as u64);
        let batch = random_batch(width, &mut rng);
        let targets: Vec<Label> = (0..KERNEL_BATCH)
            .map(|_| rng.gen::<u64>() & mask(width))
            .collect();
        // The two suites must agree before we time them.
        assert_eq!(
            packed_suite(width, &batch, &targets),
            scalar_suite(width, &batch, &targets),
            "packed and scalar kernel suites diverged at width {width}"
        );
        group.bench_with_input(BenchmarkId::new("packed", width), &batch, |b, batch| {
            b.iter(|| packed_suite(black_box(width), black_box(batch), black_box(&targets)))
        });
        group.bench_with_input(BenchmarkId::new("scalar", width), &batch, |b, batch| {
            b.iter(|| scalar_suite(black_box(width), black_box(batch), black_box(&targets)))
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = configure(Criterion::default());
    targets = bench_classification
}
criterion_main!(group);
