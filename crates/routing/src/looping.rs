//! The looping algorithm: conflict-free switch settings for rearrangeable
//! networks.
//!
//! A Benes network (2n−1 stages) realises *every* permutation of its 2^n
//! terminals without link conflicts — but unlike the delta networks of §4 it
//! is not self-routing: the port taken at a stage depends on the whole
//! permutation, not just the destination. The classical looping algorithm
//! (Opferman & Tsao-Wu 1971) computes such a setting recursively: the outer
//! stages partition the circuits between the two half-size subnetworks (a
//! 2-colouring of the circuit constraint graph, whose components are paths
//! and even cycles), then each half is solved independently.
//!
//! [`loop_setup`] implements this *structurally*: instead of assuming the
//! textbook wiring it discovers the two interior subnetworks by a union-find
//! sweep over the window's inner connections, so any network with the
//! recursive split/merge shape — the Baseline-based Benes, its
//! shuffle-based 2024 variant, or a relabelled rewrite — loops correctly,
//! and networks without that shape fail with a typed [`LoopingError`]
//! instead of a wrong setting.
//!
//! The result is a per-source-terminal routing tag (bit `s` = out-port at
//! connection `s`, the same encoding as [`crate::path_tag`]), which plugs
//! directly into the simulator's tag-driven switch cores via
//! [`crate::router::LoopingRouter`].

use min_core::ConnectionNetwork;
use serde::{Deserialize, Serialize};

/// Why the looping algorithm could not configure the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopingError {
    /// The permutation has the wrong number of entries (must equal the
    /// terminal count, two per first-stage cell).
    WrongLength {
        /// Expected entry count (`2 × cells`).
        expected: usize,
        /// Actual entry count.
        found: usize,
    },
    /// The requested mapping repeats or skips a destination terminal.
    NotPermutation {
        /// First source terminal whose image collides with an earlier one.
        terminal: usize,
    },
    /// Looping needs an odd stage count (outer stage pair + recursive
    /// middle); delta networks have an even count and are self-routing
    /// instead.
    EvenStageCount {
        /// The network's stage count.
        stages: usize,
    },
    /// A connection is not 2-regular in both directions, so the recursive
    /// split/merge structure cannot exist.
    NotProper,
    /// The two out-links of a cell at the window's first stage land in the
    /// same interior subnetwork — the stage does not split.
    SplitNotDisjoint {
        /// Stage window `(lo, hi)` being configured.
        window: (usize, usize),
        /// Offending cell at stage `lo`.
        cell: u64,
    },
    /// The two in-links of a cell at the window's last stage come from the
    /// same interior subnetwork — the stage does not merge.
    MergeNotDisjoint {
        /// Stage window `(lo, hi)` being configured.
        window: (usize, usize),
        /// Offending cell at stage `hi`.
        cell: u64,
    },
    /// The window's interior does not decompose into exactly two
    /// subnetworks reachable from the circuits.
    ComponentCount {
        /// Stage window `(lo, hi)` being configured.
        window: (usize, usize),
        /// Number of interior components found.
        found: usize,
    },
}

impl std::fmt::Display for LoopingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopingError::WrongLength { expected, found } => {
                write!(f, "permutation has {found} entries, expected {expected}")
            }
            LoopingError::NotPermutation { terminal } => {
                write!(f, "terminal {terminal} maps onto an already-used output")
            }
            LoopingError::EvenStageCount { stages } => {
                write!(f, "looping needs an odd stage count, found {stages}")
            }
            LoopingError::NotProper => write!(f, "a connection is not 2-regular"),
            LoopingError::SplitNotDisjoint { window, cell } => write!(
                f,
                "stage {} cell {cell} does not split between the two subnetworks of window {:?}",
                window.0, window
            ),
            LoopingError::MergeNotDisjoint { window, cell } => write!(
                f,
                "stage {} cell {cell} does not merge the two subnetworks of window {:?}",
                window.1, window
            ),
            LoopingError::ComponentCount { window, found } => write!(
                f,
                "window {window:?} interior has {found} components, expected 2"
            ),
        }
    }
}

impl std::error::Error for LoopingError {}

/// A complete conflict-free switch setting for one permutation: the routing
/// tag of every source terminal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopingSetting {
    /// `tags[t]` routes source terminal `t` (bit `s` = out-port at
    /// connection `s`).
    pub tags: Vec<u32>,
    /// `destinations[t]` = destination terminal of source terminal `t` (the
    /// permutation the setting realises).
    pub destinations: Vec<u32>,
}

impl LoopingSetting {
    /// Number of terminals configured.
    pub fn terminals(&self) -> usize {
        self.tags.len()
    }

    /// The routing tag of source terminal `t`.
    pub fn tag(&self, terminal: usize) -> u32 {
        self.tags[terminal]
    }

    /// Follows the tag of terminal `t` through the fabric, returning the
    /// cell visited at every stage.
    pub fn trace(&self, net: &ConnectionNetwork, terminal: usize) -> Vec<u64> {
        let tag = self.tags[terminal];
        let mut cell = (terminal as u64) >> 1;
        let mut cells = Vec::with_capacity(net.stages());
        cells.push(cell);
        for (s, conn) in net.connections().iter().enumerate() {
            cell = if (tag >> s) & 1 == 0 {
                conn.f(cell)
            } else {
                conn.g(cell)
            };
            cells.push(cell);
        }
        cells
    }

    /// Checks the setting end-to-end: every terminal's tag must arrive at
    /// its destination cell and no two circuits may share a link (the
    /// conflict-freedom the looping algorithm guarantees).
    pub fn verify(&self, net: &ConnectionNetwork) -> bool {
        let cells = net.cells_per_stage();
        let connections = net.connections().len();
        if self.tags.len() != 2 * cells || self.destinations.len() != 2 * cells {
            return false;
        }
        // One flag per (connection, cell, port) link.
        let mut used = vec![false; connections * cells * 2];
        for t in 0..self.tags.len() {
            let trace = self.trace(net, t);
            if *trace.last().unwrap() != u64::from(self.destinations[t]) >> 1 {
                return false;
            }
            for s in 0..connections {
                let port = ((self.tags[t] >> s) & 1) as usize;
                let slot = (s * cells + trace[s] as usize) * 2 + port;
                if used[slot] {
                    return false; // two circuits on one link
                }
                used[slot] = true;
            }
        }
        true
    }
}

/// One source→destination circuit threaded through a recursion window.
#[derive(Clone, Copy)]
struct Circuit {
    /// Cell at the window's first stage.
    src: u64,
    /// Cell at the window's last stage.
    dst: u64,
    /// Source terminal whose tag this circuit writes.
    terminal: usize,
}

/// Union-find over the interior cells of one recursion window.
struct Interior {
    /// Parent pointers, indexed `(stage - lo_interior) * cells + cell`.
    parent: Vec<u32>,
    lo: usize,
    cells: usize,
}

impl Interior {
    /// Builds the components of stages `lo..=hi` joined by every connection
    /// lying entirely inside the range.
    fn new(net: &ConnectionNetwork, lo: usize, hi: usize) -> Self {
        let cells = net.cells_per_stage();
        let mut uf = Interior {
            parent: (0..((hi - lo + 1) * cells) as u32).collect(),
            lo,
            cells,
        };
        for s in lo..hi {
            let conn = net.connection(s);
            for x in 0..cells as u64 {
                uf.union(uf.index(s, x), uf.index(s + 1, conn.f(x)));
                uf.union(uf.index(s, x), uf.index(s + 1, conn.g(x)));
            }
        }
        uf
    }

    fn index(&self, stage: usize, cell: u64) -> usize {
        (stage - self.lo) * self.cells + cell as usize
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] as usize != i {
            let up = self.parent[self.parent[i] as usize];
            self.parent[i] = up;
            i = up as usize;
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }

    fn root(&mut self, stage: usize, cell: u64) -> usize {
        let i = self.index(stage, cell);
        self.find(i)
    }
}

/// Computes a conflict-free switch setting realising `permutation` (source
/// terminal `t` → destination terminal `permutation[t]`) on a rearrangeable
/// network with the recursive Benes split/merge structure.
///
/// The network's shape is *discovered*, not assumed: at every recursion
/// window the two interior subnetworks are found by union-find, so the
/// Baseline-based Benes, shuffle-based variants and relabelled rewrites
/// all loop with the same code. A typed [`LoopingError`] reports exactly
/// which structural precondition failed otherwise.
pub fn loop_setup(
    net: &ConnectionNetwork,
    permutation: &[u32],
) -> Result<LoopingSetting, LoopingError> {
    let cells = net.cells_per_stage();
    let terminals = 2 * cells;
    if permutation.len() != terminals {
        return Err(LoopingError::WrongLength {
            expected: terminals,
            found: permutation.len(),
        });
    }
    let mut hit = vec![false; terminals];
    for (t, &d) in permutation.iter().enumerate() {
        if (d as usize) >= terminals || hit[d as usize] {
            return Err(LoopingError::NotPermutation { terminal: t });
        }
        hit[d as usize] = true;
    }
    if net.stages() % 2 == 0 {
        return Err(LoopingError::EvenStageCount {
            stages: net.stages(),
        });
    }
    if !net.is_proper() {
        return Err(LoopingError::NotProper);
    }

    let mut tags = vec![0u32; terminals];
    let circuits: Vec<Circuit> = (0..terminals)
        .map(|t| Circuit {
            src: (t as u64) >> 1,
            dst: u64::from(permutation[t]) >> 1,
            terminal: t,
        })
        .collect();
    configure(net, 0, net.stages() - 1, circuits, &mut tags)?;
    Ok(LoopingSetting {
        tags,
        destinations: permutation.to_vec(),
    })
}

/// Predecessors of `dst` under `conn`, as `(cell, port)` pairs.
fn predecessors(conn: &min_core::Connection, cells: usize, dst: u64) -> Vec<(u64, u8)> {
    let mut preds = Vec::with_capacity(2);
    for y in 0..cells as u64 {
        if conn.f(y) == dst {
            preds.push((y, 0));
        }
        if conn.g(y) == dst {
            preds.push((y, 1));
        }
    }
    preds
}

/// Recursively configures the circuits of one stage window `[lo, hi]`.
fn configure(
    net: &ConnectionNetwork,
    lo: usize,
    hi: usize,
    circuits: Vec<Circuit>,
    tags: &mut [u32],
) -> Result<(), LoopingError> {
    if circuits.is_empty() || lo == hi {
        // A single middle stage: circuits pass straight through its 2×2
        // cells; the adjacent ports were fixed by the enclosing window.
        return Ok(());
    }
    let window = (lo, hi);
    let cells = net.cells_per_stage();
    let mut interior = Interior::new(net, lo + 1, hi - 1);
    let first = net.connection(lo);
    let last = net.connection(hi - 1);

    // Out-links of every window-entry cell must split between two interior
    // components; collect the two component roots as the recursion targets.
    let mut roots: Vec<usize> = Vec::with_capacity(2);
    let mut split = vec![(0usize, 0usize); cells]; // (root via f, root via g)
    for c in &circuits {
        let rf = interior.root(lo + 1, first.f(c.src));
        let rg = interior.root(lo + 1, first.g(c.src));
        if rf == rg {
            return Err(LoopingError::SplitNotDisjoint {
                window,
                cell: c.src,
            });
        }
        for r in [rf, rg] {
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
        split[c.src as usize] = (rf, rg);
    }
    if roots.len() != 2 {
        return Err(LoopingError::ComponentCount {
            window,
            found: roots.len(),
        });
    }
    roots.sort_unstable();

    // In-links of every window-exit cell must merge the same two components;
    // remember which predecessor serves which component.
    let mut merge = vec![[(0u64, 0u8); 2]; cells]; // per dst, pred for roots[0] / roots[1]
    for c in &circuits {
        let preds = predecessors(last, cells, c.dst);
        if preds.len() != 2 {
            return Err(LoopingError::NotProper);
        }
        let r0 = interior.root(hi - 1, preds[0].0);
        let r1 = interior.root(hi - 1, preds[1].0);
        if r0 == r1 || !roots.contains(&r0) || !roots.contains(&r1) {
            return Err(LoopingError::MergeNotDisjoint {
                window,
                cell: c.dst,
            });
        }
        if r0 == roots[0] {
            merge[c.dst as usize] = [preds[0], preds[1]];
        } else {
            merge[c.dst as usize] = [preds[1], preds[0]];
        }
    }

    // 2-colour the circuit constraint graph: circuits sharing an entry cell
    // or an exit cell must use different subnetworks. Degrees are at most 2
    // (≤2 circuits per cell each side), so components are paths or even
    // cycles and a BFS colouring always succeeds on a full permutation.
    let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); cells];
    let mut by_dst: Vec<Vec<usize>> = vec![Vec::new(); cells];
    for (i, c) in circuits.iter().enumerate() {
        by_src[c.src as usize].push(i);
        by_dst[c.dst as usize].push(i);
    }
    let neighbours = |i: usize| -> Vec<usize> {
        let c = &circuits[i];
        by_src[c.src as usize]
            .iter()
            .chain(by_dst[c.dst as usize].iter())
            .copied()
            .filter(|&j| j != i)
            .collect()
    };
    let mut colour = vec![u8::MAX; circuits.len()];
    for start in 0..circuits.len() {
        if colour[start] != u8::MAX {
            continue;
        }
        colour[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(i) = queue.pop_front() {
            for j in neighbours(i) {
                if colour[j] == u8::MAX {
                    colour[j] = 1 - colour[i];
                    queue.push_back(j);
                } else if colour[j] == colour[i] {
                    // Odd constraint cycle: impossible for a full
                    // permutation, reachable only through a duplicated
                    // circuit multiset.
                    return Err(LoopingError::ComponentCount {
                        window,
                        found: roots.len(),
                    });
                }
            }
        }
    }

    // Record the outer ports and hand the shrunken circuits to each half.
    let mut halves: [Vec<Circuit>; 2] = [Vec::new(), Vec::new()];
    for (i, c) in circuits.iter().enumerate() {
        let half = colour[i] as usize;
        let target = roots[half];
        let (rf, _) = split[c.src as usize];
        let entry_port = u8::from(rf != target);
        let child = if entry_port == 0 {
            first.f(c.src)
        } else {
            first.g(c.src)
        };
        let (pred, exit_port) = merge[c.dst as usize][half];
        tags[c.terminal] |= (u32::from(entry_port) << lo) | (u32::from(exit_port) << (hi - 1));
        halves[half].push(Circuit {
            src: child,
            dst: pred,
            terminal: c.terminal,
        });
    }
    let [a, b] = halves;
    configure(net, lo + 1, hi - 1, a, tags)?;
    configure(net, lo + 1, hi - 1, b, tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::rearrangeable::{benes, benes_variant};
    use min_networks::{baseline, omega};

    fn identity(terminals: usize) -> Vec<u32> {
        (0..terminals as u32).collect()
    }

    fn rotation(terminals: usize, by: usize) -> Vec<u32> {
        (0..terminals)
            .map(|t| ((t + by) % terminals) as u32)
            .collect()
    }

    #[test]
    fn identity_and_rotations_loop_on_benes() {
        for n in 2..=5 {
            let net = benes(n);
            let terminals = 2 * net.cells_per_stage();
            for perm in [
                identity(terminals),
                rotation(terminals, 1),
                rotation(terminals, 3),
            ] {
                let setting = loop_setup(&net, &perm).expect("benes loops");
                assert!(setting.verify(&net), "n={n}");
            }
        }
    }

    #[test]
    fn the_shuffle_based_variant_loops_too() {
        for n in 2..=5 {
            let net = benes_variant(n);
            let terminals = 2 * net.cells_per_stage();
            let setting = loop_setup(&net, &rotation(terminals, 1)).expect("variant loops");
            assert!(setting.verify(&net), "n={n}");
        }
    }

    #[test]
    fn every_permutation_of_the_smallest_benes_is_realised() {
        // benes(2): 4 terminals, 24 permutations — exhaustive.
        let net = benes(2);
        let mut perm = [0u32, 1, 2, 3];
        permute_all(&mut perm, 0, &mut |p| {
            let setting = loop_setup(&net, p).expect("realisable");
            assert!(setting.verify(&net), "{p:?}");
        });
    }

    fn permute_all(p: &mut [u32; 4], k: usize, visit: &mut impl FnMut(&[u32])) {
        if k == p.len() {
            visit(p);
            return;
        }
        for i in k..p.len() {
            p.swap(k, i);
            permute_all(p, k + 1, visit);
            p.swap(k, i);
        }
    }

    #[test]
    fn non_rearrangeable_inputs_fail_with_typed_errors() {
        let net = benes(3);
        let terminals = 2 * net.cells_per_stage();
        assert_eq!(
            loop_setup(&net, &identity(3)),
            Err(LoopingError::WrongLength {
                expected: terminals,
                found: 3
            })
        );
        let mut doubled = identity(terminals);
        doubled[1] = doubled[0];
        assert_eq!(
            loop_setup(&net, &doubled),
            Err(LoopingError::NotPermutation { terminal: 1 })
        );
        // Delta networks have even stage counts.
        let even = baseline(4);
        assert_eq!(
            loop_setup(&even, &identity(2 * even.cells_per_stage())),
            Err(LoopingError::EvenStageCount { stages: 4 })
        );
        // An odd-stage unique-path network has no interior split: the Omega
        // at n=3 is 3-stage but its middle window is a single component.
        let odd_omega = omega(3);
        let res = loop_setup(&odd_omega, &identity(2 * odd_omega.cells_per_stage()));
        assert!(
            matches!(
                res,
                Err(LoopingError::SplitNotDisjoint { .. })
                    | Err(LoopingError::ComponentCount { .. })
                    | Err(LoopingError::MergeNotDisjoint { .. })
            ),
            "{res:?}"
        );
    }

    #[test]
    fn tags_use_one_bit_per_connection() {
        let net = benes(4);
        let terminals = 2 * net.cells_per_stage();
        let setting = loop_setup(&net, &rotation(terminals, 5)).unwrap();
        let mask = (1u32 << (net.stages() - 1)) - 1;
        for &tag in &setting.tags {
            assert_eq!(tag & !mask, 0);
        }
    }
}
