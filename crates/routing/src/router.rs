//! A uniform routing interface over self-routing, multi-path and
//! permutation-configured fabrics.
//!
//! Before this module the engine reached for a different entry point per
//! situation: [`crate::destination_tags`] for delta networks,
//! [`crate::route_around`] / [`crate::surviving_path`] when links die, and
//! nothing at all for rearrangeable fabrics. [`Router`] folds them into one
//! question — *which tag does the packet at `(source, terminal)` use to
//! reach `destination`?* — so the simulator picks an implementation per
//! scenario instead of growing network-specific branches:
//!
//! * [`DeltaRouter`] — the classical bit-directed routing of §4: the tag
//!   depends only on the destination. Exists iff the network is delta.
//! * [`MultiPathRouter`] — per-pair link-disjoint path tags (the PR 5
//!   machinery); the two terminals of a cell spread across the disjoint
//!   paths. Works on any proper network, including the full Benes, and
//!   [`MultiPathRouter::avoiding`] builds the same table around a
//!   [`FaultDigest`] via [`crate::surviving_path`].
//! * [`LoopingRouter`] — a conflict-free setting for one full permutation,
//!   computed by [`crate::looping::loop_setup`].
//!
//! ## Migration from the pre-trait API
//!
//! Code that called `destination_tags(net)` and threaded the
//! [`SelfRoutingTable`] around can construct a [`DeltaRouter`] instead; code
//! that matched on fault state to pick `route` vs `route_around` can hold a
//! `Box<dyn Router>` / `Arc<dyn Router>` and let construction-time selection
//! do the matching. The tag encoding is unchanged (bit `s` = out-port at
//! connection `s`), so existing switch cores consume the result as-is.

use crate::disjoint::{disjoint_paths, path_tag, route_all_to, FaultDigest};
use crate::looping::{loop_setup, LoopingError, LoopingSetting};
use crate::tag::{destination_tags, SelfRoutingTable};
use min_core::ConnectionNetwork;

/// Source-aware tag routing: everything the injection path needs to know
/// about how packets traverse a fabric.
pub trait Router: Send + Sync {
    /// The routing tag for a packet entering at `(source, terminal)` bound
    /// for last-stage cell `destination`, or `None` when the router cannot
    /// reach it (the engine counts an unroutable drop).
    fn tag(&self, source: u64, terminal: usize, destination: u64) -> Option<u32>;

    /// Short stable label for diagnostics and reports.
    fn label(&self) -> &'static str;
}

/// Destination-tag routing for delta networks ([`crate::tag`]): the tag is a
/// function of the destination alone.
#[derive(Debug, Clone)]
pub struct DeltaRouter {
    table: SelfRoutingTable,
}

impl DeltaRouter {
    /// Builds the router; `None` when the network is not delta.
    pub fn new(net: &ConnectionNetwork) -> Option<Self> {
        destination_tags(net).map(|table| DeltaRouter { table })
    }

    /// Wraps an already-computed self-routing table.
    pub fn from_table(table: SelfRoutingTable) -> Self {
        DeltaRouter { table }
    }

    /// The underlying tag↔destination bijection.
    pub fn table(&self) -> &SelfRoutingTable {
        &self.table
    }
}

impl Router for DeltaRouter {
    fn tag(&self, _source: u64, _terminal: usize, destination: u64) -> Option<u32> {
        self.table
            .tag_of_destination
            .get(destination as usize)
            .copied()
    }

    fn label(&self) -> &'static str {
        "delta"
    }
}

/// Per-pair multi-path routing: every `(source, destination)` pair holds its
/// link-disjoint path tags and the two terminals of a source cell spread
/// across them, so multi-path fabrics (e.g. the full Benes) are driven
/// without a permutation-level setup.
#[derive(Debug, Clone)]
pub struct MultiPathRouter {
    cells: usize,
    /// `tags[source * cells + destination]` = the disjoint path tags.
    tags: Vec<Vec<u32>>,
    label: &'static str,
}

impl MultiPathRouter {
    /// Enumerates the link-disjoint paths of every pair. Quadratic in the
    /// cell count (with a path sweep per pair) — intended for the moderate
    /// fabric sizes the simulation campaigns drive.
    pub fn new(net: &ConnectionNetwork) -> Self {
        let cells = net.cells_per_stage();
        let mut tags = Vec::with_capacity(cells * cells);
        for src in 0..cells as u64 {
            for dst in 0..cells as u64 {
                tags.push(disjoint_paths(net, src, dst).iter().map(path_tag).collect());
            }
        }
        MultiPathRouter {
            cells,
            tags,
            label: "multi-path",
        }
    }

    /// Builds the table around a fault digest: each pair keeps the tag of
    /// its surviving path (via [`crate::route_all_to`]), or no tag at all
    /// when the pair is severed — the router-level face of `route_around` /
    /// `surviving_path`.
    pub fn avoiding(net: &ConnectionNetwork, digest: &FaultDigest) -> Self {
        let cells = net.cells_per_stage();
        let mut tags = vec![Vec::new(); cells * cells];
        for dst in 0..cells as u64 {
            for (src, route) in route_all_to(net, dst, digest).iter().enumerate() {
                if let Some(path) = route.path() {
                    tags[src * cells + dst as usize].push(path_tag(path));
                }
            }
        }
        MultiPathRouter {
            cells,
            tags,
            label: "multi-path-avoiding",
        }
    }

    /// Number of stored paths for a pair.
    pub fn path_count(&self, source: u64, destination: u64) -> usize {
        self.tags[source as usize * self.cells + destination as usize].len()
    }
}

impl Router for MultiPathRouter {
    fn tag(&self, source: u64, terminal: usize, destination: u64) -> Option<u32> {
        let list = &self.tags[source as usize * self.cells + destination as usize];
        if list.is_empty() {
            None
        } else {
            Some(list[terminal % list.len()])
        }
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

/// Permutation-configured routing: the conflict-free setting computed by the
/// looping algorithm, keyed by source terminal. Requests for any other
/// destination than the configured one are refused (`None`) — the setting
/// realises exactly one permutation.
#[derive(Debug, Clone)]
pub struct LoopingRouter {
    setting: LoopingSetting,
}

impl LoopingRouter {
    /// Runs the looping algorithm for `permutation` (one destination
    /// terminal per source terminal).
    pub fn new(net: &ConnectionNetwork, permutation: &[u32]) -> Result<Self, LoopingError> {
        loop_setup(net, permutation).map(|setting| LoopingRouter { setting })
    }

    /// Wraps an existing setting.
    pub fn from_setting(setting: LoopingSetting) -> Self {
        LoopingRouter { setting }
    }

    /// The underlying switch setting.
    pub fn setting(&self) -> &LoopingSetting {
        &self.setting
    }
}

impl Router for LoopingRouter {
    fn tag(&self, source: u64, terminal: usize, destination: u64) -> Option<u32> {
        let t = (source as usize) * 2 + (terminal & 1);
        if t >= self.setting.terminals() {
            return None;
        }
        if u64::from(self.setting.destinations[t]) >> 1 != destination {
            return None;
        }
        Some(self.setting.tags[t])
    }

    fn label(&self) -> &'static str {
        "looping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_around;
    use min_core::delta::route_by_tag;
    use min_networks::rearrangeable::benes;
    use min_networks::{baseline, omega};

    #[test]
    fn delta_router_reproduces_destination_tags() {
        let net = omega(4);
        let router = DeltaRouter::new(&net).expect("omega is delta");
        let table = destination_tags(&net).unwrap();
        for dst in 0..net.cells_per_stage() as u64 {
            for src in [0u64, 3, 7] {
                for terminal in 0..2 {
                    assert_eq!(
                        router.tag(src, terminal, dst),
                        Some(table.tag_of_destination[dst as usize])
                    );
                }
            }
        }
        assert_eq!(router.label(), "delta");
    }

    #[test]
    fn benes_is_not_delta_but_is_multi_path_routable() {
        let net = benes(3);
        assert!(DeltaRouter::new(&net).is_none());
        let router = MultiPathRouter::new(&net);
        let cells = net.cells_per_stage() as u64;
        for src in 0..cells {
            for dst in 0..cells {
                assert!(router.path_count(src, dst) >= 2, "{src}->{dst}");
                for terminal in 0..2 {
                    let tag = router.tag(src, terminal, dst).unwrap();
                    assert_eq!(route_by_tag(&net, src, u64::from(tag)), dst);
                }
                // The two terminals ride different disjoint paths.
                assert_ne!(router.tag(src, 0, dst), router.tag(src, 1, dst));
            }
        }
    }

    #[test]
    fn avoiding_router_agrees_with_route_around() {
        let net = baseline(4);
        let mut digest = FaultDigest::new(net.stages(), net.cells_per_stage());
        digest.kill_link(1, 0, 0);
        digest.kill_cell(2, 3);
        let router = MultiPathRouter::avoiding(&net, &digest);
        let cells = net.cells_per_stage() as u64;
        for src in 0..cells {
            for dst in 0..cells {
                let expected = route_around(&net, src, dst, &digest);
                match (expected.path(), router.tag(src, 0, dst)) {
                    (Some(path), Some(tag)) => assert_eq!(tag, path_tag(path)),
                    (None, None) => {}
                    other => panic!("{src}->{dst}: {other:?}"),
                }
            }
        }
        assert_eq!(router.label(), "multi-path-avoiding");
    }

    #[test]
    fn looping_router_serves_exactly_the_configured_permutation() {
        let net = benes(3);
        let terminals = 2 * net.cells_per_stage();
        let perm: Vec<u32> = (0..terminals as u32).map(|t| t ^ 5).collect();
        let router = LoopingRouter::new(&net, &perm).unwrap();
        for t in 0..terminals {
            let (src, terminal) = ((t as u64) >> 1, t & 1);
            let configured = u64::from(perm[t]) >> 1;
            let tag = router
                .tag(src, terminal, configured)
                .expect("configured pair routes");
            assert_eq!(route_by_tag(&net, src, u64::from(tag)), configured);
            // Any other destination is refused.
            let other = (configured + 1) % net.cells_per_stage() as u64;
            if other != configured {
                assert_eq!(router.tag(src, terminal, other), None);
            }
        }
        assert_eq!(router.label(), "looping");
    }
}
