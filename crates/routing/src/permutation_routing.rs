//! Permutation routing and conflict (blocking) analysis.
//!
//! When all `N` inputs transmit simultaneously according to a permutation
//! `π` (input terminal `i` sends to output terminal `π(i)`), an `n`-stage
//! Banyan network may or may not be able to establish all `N` circuits at
//! once: two paths that share a link block each other. The admissible
//! permutations of the Omega network are the classic example (Lawrie 1975);
//! topological equivalence implies that the *number* of admissible
//! permutations is identical across the six classical networks, even though
//! the admissible *sets* differ (experiment E12).

use crate::path::{route_terminals, TerminalRoute};
use min_core::ConnectionNetwork;
use serde::{Deserialize, Serialize};

/// Result of routing a full permutation through the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictReport {
    /// Number of input/output pairs routed.
    pub circuits: usize,
    /// Number of links carrying more than one circuit, summed over stages
    /// (each over-subscribed link counts once).
    pub conflicting_links: usize,
    /// The worst over-subscription of any single link.
    pub max_link_load: usize,
    /// `true` when the permutation is admissible (no link carries two
    /// circuits).
    pub admissible: bool,
    /// One example of a blocked pair of inputs, when a conflict exists.
    pub example_conflict: Option<(u64, u64)>,
}

/// Identifier of a link: after the cells of stage `s`, the out-port `port`
/// of cell `cell` leads to stage `s+1`.
fn link_id(net: &ConnectionNetwork, stage: usize, cell: u32, port: u8) -> usize {
    let cells = net.cells_per_stage();
    (stage * cells + cell as usize) * 2 + port as usize
}

/// Routes the permutation `perm` (`perm[i]` = output terminal of input
/// terminal `i`) and reports the conflict structure.
///
/// Panics unless `perm` has exactly `N = terminals()` entries; the entries
/// need not form a bijection (partial/duplicate traffic patterns are
/// analysed the same way).
pub fn permutation_conflicts(net: &ConnectionNetwork, perm: &[u64]) -> ConflictReport {
    assert_eq!(
        perm.len(),
        net.terminals(),
        "one destination per input terminal required"
    );
    let stages = net.stages();
    let cells = net.cells_per_stage();
    let mut link_load = vec![0usize; (stages - 1) * cells * 2];
    let mut link_first_user: Vec<Option<u64>> = vec![None; (stages - 1) * cells * 2];
    let mut conflicting_links = 0usize;
    let mut max_link_load = 0usize;
    let mut example_conflict = None;
    let mut circuits = 0usize;

    for (input, &output) in perm.iter().enumerate() {
        let input = input as u64;
        let route: TerminalRoute = match route_terminals(net, input, output) {
            Some(r) => r,
            None => continue,
        };
        circuits += 1;
        for (s, &port) in route.path.ports.iter().enumerate() {
            let id = link_id(net, s, route.path.cells[s], port);
            link_load[id] += 1;
            max_link_load = max_link_load.max(link_load[id]);
            match link_first_user[id] {
                None => link_first_user[id] = Some(input),
                Some(first) => {
                    if link_load[id] == 2 {
                        conflicting_links += 1;
                        if example_conflict.is_none() {
                            example_conflict = Some((first, input));
                        }
                    }
                }
            }
        }
    }
    ConflictReport {
        circuits,
        conflicting_links,
        max_link_load,
        admissible: conflicting_links == 0 && circuits == perm.len(),
        example_conflict,
    }
}

/// Convenience: `true` when the permutation is admissible.
pub fn is_admissible(net: &ConnectionNetwork, perm: &[u64]) -> bool {
    permutation_conflicts(net, perm).admissible
}

/// The identity permutation on the network's terminals.
pub fn identity_permutation(net: &ConnectionNetwork) -> Vec<u64> {
    (0..net.terminals() as u64).collect()
}

/// The bit-reversal permutation on the network's terminals.
pub fn bit_reversal_permutation(net: &ConnectionNetwork) -> Vec<u64> {
    let bits = net.width() + 1;
    (0..net.terminals() as u64)
        .map(|x| {
            let mut r = 0u64;
            for k in 0..bits {
                r |= ((x >> k) & 1) << (bits - 1 - k);
            }
            r
        })
        .collect()
}

/// The perfect-shuffle permutation on the network's terminals.
pub fn shuffle_permutation(net: &ConnectionNetwork) -> Vec<u64> {
    let bits = net.width() + 1;
    let mask = (1u64 << bits) - 1;
    (0..net.terminals() as u64)
        .map(|x| ((x << 1) | (x >> (bits - 1))) & mask)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::{baseline, omega};

    #[test]
    fn identity_is_blocked_because_sibling_inputs_share_their_paths() {
        // In the MI-digraph model (no input-side link permutation) the two
        // terminals attached to a first-stage cell that address the same
        // last-stage cell necessarily use the same links — so the identity
        // permutation is blocked on every network with at least two stages.
        for n in 2..=5 {
            let net = omega(n);
            let report = permutation_conflicts(&net, &identity_permutation(&net));
            assert!(!report.admissible, "identity on omega n={n}");
            assert!(report.conflicting_links > 0);
        }
    }

    #[test]
    fn admissible_and_blocked_permutations_both_exist() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(179);
        // N = 8: a meaningful fraction of the 8! permutations is realizable,
        // so a few hundred random samples reliably hit both classes. (At
        // N = 16 the admissible fraction is already far too small for random
        // sampling — that is precisely why the networks are called
        // "blocking".)
        let net = omega(3);
        let n = net.terminals() as u64;
        let mut admissible = 0usize;
        let mut blocked = 0usize;
        for _ in 0..400 {
            let mut perm: Vec<u64> = (0..n).collect();
            perm.shuffle(&mut rng);
            if is_admissible(&net, &perm) {
                admissible += 1;
            } else {
                blocked += 1;
            }
        }
        assert!(
            admissible > 0,
            "omega realizes ~2^(n·N/2) of the N! permutations"
        );
        assert!(blocked > 0, "omega is a blocking network");
    }

    #[test]
    fn conflict_report_details_are_consistent() {
        let net = omega(3);
        // Everyone sends to output 0: maximal congestion.
        let perm = vec![0u64; net.terminals()];
        let report = permutation_conflicts(&net, &perm);
        assert!(!report.admissible);
        assert!(report.conflicting_links > 0);
        assert_eq!(report.max_link_load, net.terminals() / 2);
        assert!(report.example_conflict.is_some());
        let (a, b) = report.example_conflict.unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn admissibility_can_depend_on_the_network_labelling() {
        // The admissible *sets* of two equivalent networks generally differ
        // (only their sizes must coincide). Scan random permutations for a
        // pattern on which Omega and Baseline disagree.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(181);
        let o = omega(3);
        let b = baseline(3);
        let n = o.terminals() as u64;
        let mut differs = false;
        for _ in 0..500 {
            let mut perm: Vec<u64> = (0..n).collect();
            perm.shuffle(&mut rng);
            if is_admissible(&o, &perm) != is_admissible(&b, &perm) {
                differs = true;
                break;
            }
        }
        assert!(
            differs,
            "expected some pattern to distinguish the labellings"
        );
        // The named patterns below are exercised for coverage regardless of
        // which network accepts them.
        for perm in [
            identity_permutation(&o),
            bit_reversal_permutation(&o),
            shuffle_permutation(&o),
        ] {
            let _ = permutation_conflicts(&o, &perm);
            let _ = permutation_conflicts(&b, &perm);
        }
    }

    #[test]
    #[should_panic(expected = "one destination per input")]
    fn wrong_length_permutations_are_rejected() {
        let net = omega(3);
        let _ = permutation_conflicts(&net, &[0, 1, 2]);
    }
}
