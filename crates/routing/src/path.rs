//! Unique paths in Banyan networks.
//!
//! Terminals are numbered `0 .. N-1`; input terminal `t` is wired to port
//! `t mod 2` of first-stage cell `t div 2`, and output terminal `t` to port
//! `t mod 2` of last-stage cell `t div 2` (the natural order of the paper's
//! drawings).

use min_core::ConnectionNetwork;
use min_graph::paths::unique_path;
use serde::{Deserialize, Serialize};

/// A path through the network at cell granularity: one cell per stage and
/// the out-port (0 = `f`, 1 = `g`) taken after each non-final stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellPath {
    /// The cell visited at every stage.
    pub cells: Vec<u32>,
    /// The out-port taken at every non-final stage (`ports.len() ==
    /// cells.len() - 1`).
    pub ports: Vec<u8>,
}

/// A terminal-to-terminal route: the input/output terminals plus the cell
/// path between them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TerminalRoute {
    /// Input terminal (`0 .. N-1`).
    pub input: u64,
    /// Output terminal (`0 .. N-1`).
    pub output: u64,
    /// The path through the cells.
    pub path: CellPath,
}

/// Computes the cell-level path from first-stage cell `src` to last-stage
/// cell `dst`, if one exists.
pub fn route_cells(net: &ConnectionNetwork, src: u64, dst: u64) -> Option<CellPath> {
    let g = net.to_digraph();
    let cells = unique_path(&g, src as u32, dst as u32)?;
    let mut ports = Vec::with_capacity(cells.len().saturating_sub(1));
    for (s, window) in cells.windows(2).enumerate() {
        let conn = net.connection(s);
        let (from, to) = (u64::from(window[0]), u64::from(window[1]));
        // Prefer reporting port 0 when both functions reach the child
        // (parallel links).
        let port = if conn.f(from) == to {
            0
        } else if conn.g(from) == to {
            1
        } else {
            return None;
        };
        ports.push(port);
    }
    Some(CellPath { cells, ports })
}

/// Computes the terminal-to-terminal route.
pub fn route_terminals(net: &ConnectionNetwork, input: u64, output: u64) -> Option<TerminalRoute> {
    let n_terminals = net.terminals() as u64;
    if input >= n_terminals || output >= n_terminals {
        return None;
    }
    let path = route_cells(net, input >> 1, output >> 1)?;
    Some(TerminalRoute {
        input,
        output,
        path,
    })
}

/// Checks that a [`CellPath`] is consistent with the network (every hop is a
/// real arc reached through the recorded port).
pub fn verify_cell_path(net: &ConnectionNetwork, path: &CellPath) -> bool {
    if path.cells.len() != net.stages() || path.ports.len() + 1 != path.cells.len() {
        return false;
    }
    for (s, window) in path.cells.windows(2).enumerate() {
        let conn = net.connection(s);
        let from = u64::from(window[0]);
        let to = u64::from(window[1]);
        let via = if path.ports[s] == 0 {
            conn.f(from)
        } else {
            conn.g(from)
        };
        if via != to {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::{baseline, omega};

    #[test]
    fn every_terminal_pair_routes_in_a_banyan_network() {
        for n in 2..=5 {
            let net = omega(n);
            let terminals = net.terminals() as u64;
            for input in 0..terminals {
                for output in 0..terminals {
                    let route = route_terminals(&net, input, output)
                        .unwrap_or_else(|| panic!("no route {input}->{output} in omega {n}"));
                    assert_eq!(route.path.cells.len(), n);
                    assert_eq!(route.path.cells[0] as u64, input >> 1);
                    assert_eq!(*route.path.cells.last().unwrap() as u64, output >> 1);
                    assert!(verify_cell_path(&net, &route.path));
                }
            }
        }
    }

    #[test]
    fn baseline_routes_follow_the_recursive_halving() {
        let net = baseline(4);
        // From any source cell, choosing port 0 at stage 0 keeps the path in
        // the top half of the remaining stages.
        let route = route_cells(&net, 5, 0).unwrap();
        assert_eq!(route.ports[0], 0, "destination 0 lies in the top half");
        let route = route_cells(&net, 5, 7).unwrap();
        assert_eq!(route.ports[0], 1, "destination 7 lies in the bottom half");
    }

    #[test]
    fn out_of_range_terminals_are_rejected() {
        let net = omega(3);
        assert!(route_terminals(&net, 99, 0).is_none());
        assert!(route_terminals(&net, 0, 99).is_none());
    }

    #[test]
    fn verify_rejects_corrupted_paths() {
        let net = omega(3);
        let mut route = route_cells(&net, 0, 3).unwrap();
        assert!(verify_cell_path(&net, &route));
        route.ports[0] ^= 1;
        assert!(!verify_cell_path(&net, &route));
        let short = CellPath {
            cells: vec![0, 1],
            ports: vec![0],
        };
        assert!(!verify_cell_path(&net, &short));
    }

    #[test]
    fn ports_encode_the_f_or_g_choice() {
        let net = omega(3);
        for src in 0..4u64 {
            for dst in 0..4u64 {
                let p = route_cells(&net, src, dst).unwrap();
                for (s, &port) in p.ports.iter().enumerate() {
                    let conn = net.connection(s);
                    let from = u64::from(p.cells[s]);
                    let expected = if port == 0 {
                        conn.f(from)
                    } else {
                        conn.g(from)
                    };
                    assert_eq!(expected, u64::from(p.cells[s + 1]));
                }
            }
        }
    }
}
