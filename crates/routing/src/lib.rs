//! # `min-routing` — bit-directed routing and permutation analysis
//!
//! The practical payoff of the paper's §4 is that PIPID-built networks come
//! with "a very simple bit directed routing": the port taken at every stage
//! is a bit of the destination address, independent of the source. This
//! crate provides that routing machinery, plus the analysis layer a network
//! architect actually uses:
//!
//! * [`path`] — the unique source→destination path of a Banyan network, at
//!   cell and at terminal granularity;
//! * [`tag`] — destination-tag routing for delta networks: computing the tag
//!   that reaches a given output, routing by tag, verifying self-routability;
//! * [`permutation_routing`] — conflict analysis when all `N` inputs send
//!   simultaneously according to a permutation: admissibility, conflict
//!   counting, the blocking structure;
//! * [`disjoint`] — link-disjoint path enumeration per (source,
//!   destination) pair and fault-aware rerouting: fall back across the
//!   disjoint paths when links or switches die, with a typed
//!   [`disjoint::FaultRoute::Unroutable`] outcome when a pair's last path
//!   is severed;
//! * [`looping`] — the looping algorithm: conflict-free switch settings for
//!   any full permutation on rearrangeable (Benes-structured) fabrics;
//! * [`router`] — the [`router::Router`] trait unifying delta, multi-path,
//!   fault-avoiding and permutation-configured routing behind one
//!   per-scenario interface;
//! * [`analysis`] — aggregate admissibility statistics (exhaustive for small
//!   `N`, Monte-Carlo beyond) used to demonstrate that topologically
//!   equivalent networks have identical admissibility *profiles* up to
//!   relabelling (experiment E12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod disjoint;
pub mod looping;
pub mod path;
pub mod permutation_routing;
pub mod router;
pub mod tag;

pub use looping::{loop_setup, LoopingError, LoopingSetting};
pub use router::{DeltaRouter, LoopingRouter, MultiPathRouter, Router};

pub use disjoint::{
    all_paths, disjoint_path_count, disjoint_paths, path_diversity_histogram, path_tag,
    route_all_to, route_around, surviving_path, FaultDigest, FaultRoute,
};
pub use path::{route_terminals, CellPath, TerminalRoute};
pub use permutation_routing::{permutation_conflicts, ConflictReport};
pub use tag::{destination_tags, route_with_tag, tag_for_destination, SelfRoutingTable};
