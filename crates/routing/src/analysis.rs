//! Aggregate admissibility analysis.
//!
//! Topological equivalence is a statement about unlabeled structure; its
//! observable consequence for a network operator is that *counts* of
//! routable patterns coincide across equivalent networks (the admissible
//! sets themselves differ, being tied to the terminal labelling). This
//! module measures those counts, exhaustively for small `N` and by
//! Monte-Carlo sampling beyond, and is the engine behind experiment E12.

use crate::permutation_routing::is_admissible;
use min_core::ConnectionNetwork;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of an admissibility census.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissibilityCensus {
    /// Number of permutations examined.
    pub examined: u64,
    /// Number found admissible.
    pub admissible: u64,
    /// `true` when the census enumerated all `N!` permutations (otherwise it
    /// is a Monte-Carlo estimate).
    pub exhaustive: bool,
}

impl AdmissibilityCensus {
    /// Fraction of examined permutations that were admissible.
    pub fn fraction(&self) -> f64 {
        if self.examined == 0 {
            0.0
        } else {
            self.admissible as f64 / self.examined as f64
        }
    }
}

/// Exhaustively counts the admissible permutations of a network.
///
/// Practical only for `N ≤ 8` (8! = 40 320 permutations); panics on larger
/// networks to avoid accidental multi-hour runs — use
/// [`admissibility_monte_carlo`] instead.
pub fn admissibility_exhaustive(net: &ConnectionNetwork) -> AdmissibilityCensus {
    let n = net.terminals();
    assert!(n <= 8, "exhaustive census is limited to N <= 8 terminals");
    let mut perm: Vec<u64> = (0..n as u64).collect();
    let mut examined = 0u64;
    let mut admissible = 0u64;
    permute(&mut perm, 0, &mut |p| {
        examined += 1;
        if is_admissible(net, p) {
            admissible += 1;
        }
    });
    AdmissibilityCensus {
        examined,
        admissible,
        exhaustive: true,
    }
}

/// Heap-style recursive permutation enumeration.
fn permute<F: FnMut(&[u64])>(v: &mut Vec<u64>, k: usize, visit: &mut F) {
    if k == v.len() {
        visit(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, visit);
        v.swap(k, i);
    }
}

/// Estimates the admissible fraction by sampling `samples` uniform random
/// permutations.
pub fn admissibility_monte_carlo<R: Rng>(
    net: &ConnectionNetwork,
    samples: u64,
    rng: &mut R,
) -> AdmissibilityCensus {
    let n = net.terminals() as u64;
    let mut admissible = 0u64;
    let mut perm: Vec<u64> = (0..n).collect();
    for _ in 0..samples {
        perm.shuffle(rng);
        if is_admissible(net, &perm) {
            admissible += 1;
        }
    }
    AdmissibilityCensus {
        examined: samples,
        admissible,
        exhaustive: false,
    }
}

/// Counts how many of the `N` cyclic-shift patterns (`t ↦ t + k mod N`) the
/// network can route without conflict — a cheap deterministic fingerprint
/// used by the benchmarks.
pub fn admissible_shift_count(net: &ConnectionNetwork) -> usize {
    let n = net.terminals() as u64;
    (0..n)
        .filter(|&k| {
            let perm: Vec<u64> = (0..n).map(|i| (i + k) % n).collect();
            is_admissible(net, &perm)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::{
        baseline, flip, indirect_binary_cube, modified_data_manipulator, omega, reverse_baseline,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exhaustive_census_counts_are_equal_across_the_six_networks() {
        // Equivalent networks must have the same *number* of admissible
        // permutations (the sets differ, the counts cannot).
        let n = 3; // N = 8 terminals, 8! = 40 320 permutations
        let counts: Vec<u64> = [
            omega(n),
            flip(n),
            baseline(n),
            reverse_baseline(n),
            indirect_binary_cube(n),
            modified_data_manipulator(n),
        ]
        .iter()
        .map(|net| admissibility_exhaustive(net).admissible)
        .collect();
        assert!(counts.iter().all(|&c| c == counts[0]), "counts: {counts:?}");
        assert!(counts[0] > 0, "some permutations must be admissible");
        assert!(counts[0] < 40_320, "the networks are blocking");
    }

    #[test]
    fn exhaustive_census_examines_the_whole_symmetric_group() {
        let net = omega(2); // N = 4, 4! = 24
        let census = admissibility_exhaustive(&net);
        assert_eq!(census.examined, 24);
        assert!(census.exhaustive);
        assert!(census.fraction() > 0.0 && census.fraction() <= 1.0);
    }

    #[test]
    fn monte_carlo_estimate_is_in_the_right_ballpark() {
        let net = omega(3);
        let exact = admissibility_exhaustive(&net).fraction();
        let mut rng = ChaCha8Rng::seed_from_u64(191);
        let estimate = admissibility_monte_carlo(&net, 4_000, &mut rng).fraction();
        assert!(
            (estimate - exact).abs() < 0.05,
            "estimate {estimate} too far from exact {exact}"
        );
    }

    #[test]
    fn shift_fingerprint_is_stable() {
        let a = admissible_shift_count(&omega(4));
        let b = admissible_shift_count(&omega(4));
        assert_eq!(a, b);
        assert!(a <= 16);
    }

    #[test]
    #[should_panic(expected = "limited to N <= 8")]
    fn exhaustive_census_refuses_large_networks() {
        let _ = admissibility_exhaustive(&omega(4));
    }
}
