//! Link-disjoint path enumeration and fault-aware rerouting.
//!
//! The stability literature around the paper's networks — 3-disjoint-path
//! Omega variants, wormhole MINs under switch failures — measures a fabric
//! by how much *path redundancy* it offers each (source, destination) pair
//! and how routing degrades when links die. This module provides that
//! analysis layer on top of [`min_graph::paths`]-style stage-monotone
//! reachability:
//!
//! * [`all_paths`] — every stage-monotone path between a first-stage and a
//!   last-stage cell, in lexicographic port order;
//! * [`disjoint_paths`] — a maximal pairwise *link-disjoint* subset of those
//!   paths (greedy in enumeration order, so the destination-tag path of a
//!   Banyan network is always the first entry);
//! * [`FaultDigest`] — a set of dead links and dead switches;
//! * [`route_around`] — destination-tag-style rerouting under a digest:
//!   fall back across the disjoint paths in order, then across any surviving
//!   path, with a typed [`FaultRoute::Unroutable`] when the pair's last path
//!   is severed;
//! * [`path_diversity_histogram`] — the per-pair disjoint-path counts of the
//!   whole fabric, the "how redundant is this topology" summary statistic.
//!
//! For a Banyan network every pair has exactly one path, so the disjoint set
//! is a singleton and a single well-placed dead link always severs some
//! pairs; the machinery is written for general proper MI-fabrics (including
//! the parallel-link and stuck-cell variants of `min-networks`), where real
//! fallback happens.

use crate::path::CellPath;
use min_core::ConnectionNetwork;

/// Flat index of the inter-stage link leaving `cell` of connection `stage`
/// through `port` (0 = `f`, 1 = `g`).
#[inline]
fn link_index(cells: usize, stage: usize, cell: u32, port: u8) -> usize {
    (stage * cells + cell as usize) * 2 + port as usize
}

/// Backward reachability table: `reach[s][v]` is true when last-stage cell
/// `dst` can be reached from cell `v` of stage `s`. When `digest` is given,
/// dead cells and dead links are excluded, so the table answers "can `dst`
/// still be reached" under the faults.
fn reaches_dst(net: &ConnectionNetwork, dst: u64, digest: Option<&FaultDigest>) -> Vec<Vec<bool>> {
    let stages = net.stages();
    let cells = net.cells_per_stage();
    let mut reach = vec![vec![false; cells]; stages];
    let dst_alive = !digest.is_some_and(|d| d.cell_dead(stages - 1, dst as u32));
    reach[stages - 1][dst as usize] = dst_alive;
    for s in (0..stages - 1).rev() {
        let conn = net.connection(s);
        for v in 0..cells as u64 {
            if digest.is_some_and(|d| d.cell_dead(s, v as u32)) {
                continue;
            }
            for port in 0..2u8 {
                if digest.is_some_and(|d| d.link_dead(s, v as u32, port)) {
                    continue;
                }
                let child = if port == 0 { conn.f(v) } else { conn.g(v) };
                if reach[s + 1][child as usize] {
                    reach[s][v as usize] = true;
                    break;
                }
            }
        }
    }
    reach
}

/// Every stage-monotone path from first-stage cell `src` to last-stage cell
/// `dst`, in lexicographic port order (port 0 explored before port 1 at
/// every stage). A Banyan network yields exactly one path per pair; networks
/// with parallel links or extra redundancy yield more.
///
/// The enumeration is pruned by backward reachability, so its cost is
/// proportional to the number of paths actually returned (times the stage
/// count), not to the full `2^{stages-1}` fan-out.
pub fn all_paths(net: &ConnectionNetwork, src: u64, dst: u64) -> Vec<CellPath> {
    let cells = net.cells_per_stage() as u64;
    if src >= cells || dst >= cells {
        return Vec::new();
    }
    all_paths_with_reach(net, src, dst, &reaches_dst(net, dst, None))
}

/// [`all_paths`] against a precomputed fault-free reachability table for
/// `dst`, so per-destination batch callers share the table across sources.
fn all_paths_with_reach(
    net: &ConnectionNetwork,
    src: u64,
    dst: u64,
    reach: &[Vec<bool>],
) -> Vec<CellPath> {
    if !reach[0][src as usize] {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cur = CellPath {
        cells: vec![src as u32],
        ports: Vec::new(),
    };
    walk_paths(net, reach, dst, &mut cur, &mut out);
    out
}

/// Depth-first path enumeration behind [`all_paths`], restricted to cells
/// that still reach `dst`.
fn walk_paths(
    net: &ConnectionNetwork,
    reach: &[Vec<bool>],
    dst: u64,
    cur: &mut CellPath,
    out: &mut Vec<CellPath>,
) {
    let stage = cur.cells.len() - 1;
    let from = u64::from(*cur.cells.last().expect("paths start at src"));
    if stage == net.stages() - 1 {
        if from == dst {
            out.push(cur.clone());
        }
        return;
    }
    let conn = net.connection(stage);
    for port in 0..2u8 {
        let next = if port == 0 {
            conn.f(from)
        } else {
            conn.g(from)
        };
        if !reach[stage + 1][next as usize] {
            continue;
        }
        cur.cells.push(next as u32);
        cur.ports.push(port);
        walk_paths(net, reach, dst, cur, out);
        cur.cells.pop();
        cur.ports.pop();
    }
}

/// A maximal pairwise **link-disjoint** subset of the `src → dst` paths,
/// chosen greedily in the [`all_paths`] enumeration order (two paths are
/// link-disjoint when they share no `(stage, cell, port)` arc; they may
/// share cells). The first entry is always the lexicographically first path
/// — for a delta network, the destination-tag path.
pub fn disjoint_paths(net: &ConnectionNetwork, src: u64, dst: u64) -> Vec<CellPath> {
    greedy_disjoint(net, all_paths(net, src, dst))
}

/// The greedy maximal link-disjoint filter behind [`disjoint_paths`].
fn greedy_disjoint(net: &ConnectionNetwork, candidates: Vec<CellPath>) -> Vec<CellPath> {
    let cells = net.cells_per_stage();
    let stages = net.stages();
    let mut used = vec![false; stages.saturating_sub(1) * cells * 2];
    let mut kept = Vec::new();
    'candidates: for path in candidates {
        for (s, &port) in path.ports.iter().enumerate() {
            if used[link_index(cells, s, path.cells[s], port)] {
                continue 'candidates;
            }
        }
        for (s, &port) in path.ports.iter().enumerate() {
            used[link_index(cells, s, path.cells[s], port)] = true;
        }
        kept.push(path);
    }
    kept
}

/// Number of pairwise link-disjoint `src → dst` paths (the pair's fault
/// tolerance: it survives any `count - 1` link failures).
pub fn disjoint_path_count(net: &ConnectionNetwork, src: u64, dst: u64) -> usize {
    disjoint_paths(net, src, dst).len()
}

/// Histogram of the per-pair disjoint-path counts over every (first-stage,
/// last-stage) cell pair: `hist[k]` is the number of pairs joined by exactly
/// `k` pairwise link-disjoint paths (`hist[0]` counts disconnected pairs).
/// For a Banyan network the histogram is `[0, cells²]`.
pub fn path_diversity_histogram(net: &ConnectionNetwork) -> Vec<u64> {
    let cells = net.cells_per_stage() as u64;
    let mut hist = vec![0u64; 2];
    for src in 0..cells {
        for dst in 0..cells {
            let k = disjoint_path_count(net, src, dst);
            if k >= hist.len() {
                hist.resize(k + 1, 0);
            }
            hist[k] += 1;
        }
    }
    hist
}

/// Encodes a path's port choices as a destination-tag-style routing tag:
/// bit `s` of the tag is the out-port taken at connection `s`. Every
/// stage-monotone path is expressible this way, which is what lets a
/// rerouted path ride the existing bit-directed switching hardware.
pub fn path_tag(path: &CellPath) -> u32 {
    path.ports
        .iter()
        .enumerate()
        .fold(0u32, |tag, (s, &port)| tag | (u32::from(port) << s))
}

/// A set of dead links and dead switches against which routes are computed.
///
/// Stage/cell indexing matches the fabric: switches live at
/// `(stage 0..stages, cell)`, links at `(stage 0..stages-1, cell, port)` —
/// the arc leaving `cell` through `port` of connection `stage`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDigest {
    stages: usize,
    cells: usize,
    dead_link: Vec<bool>,
    dead_cell: Vec<bool>,
}

impl FaultDigest {
    /// A digest with no faults for a `stages × cells` fabric.
    pub fn new(stages: usize, cells: usize) -> Self {
        FaultDigest {
            stages,
            cells,
            dead_link: vec![false; stages.saturating_sub(1) * cells * 2],
            dead_cell: vec![false; stages * cells],
        }
    }

    /// Marks the link leaving `cell` through `port` of connection `stage`
    /// as dead.
    pub fn kill_link(&mut self, stage: usize, cell: u32, port: u8) {
        assert!(stage + 1 < self.stages, "link stage {stage} out of range");
        self.dead_link[link_index(self.cells, stage, cell, port)] = true;
    }

    /// Marks the switch at `(stage, cell)` as dead.
    pub fn kill_cell(&mut self, stage: usize, cell: u32) {
        assert!(stage < self.stages, "switch stage {stage} out of range");
        self.dead_cell[stage * self.cells + cell as usize] = true;
    }

    /// Whether the link at `(stage, cell, port)` is dead.
    #[inline]
    pub fn link_dead(&self, stage: usize, cell: u32, port: u8) -> bool {
        self.dead_link[link_index(self.cells, stage, cell, port)]
    }

    /// Whether the switch at `(stage, cell)` is dead.
    #[inline]
    pub fn cell_dead(&self, stage: usize, cell: u32) -> bool {
        self.dead_cell[stage * self.cells + cell as usize]
    }

    /// Whether the digest holds no faults at all.
    pub fn is_clean(&self) -> bool {
        !self.dead_link.iter().any(|&d| d) && !self.dead_cell.iter().any(|&d| d)
    }

    /// Whether `path` avoids every dead link and dead switch.
    pub fn path_ok(&self, path: &CellPath) -> bool {
        for (s, &cell) in path.cells.iter().enumerate() {
            if self.cell_dead(s, cell) {
                return false;
            }
        }
        for (s, &port) in path.ports.iter().enumerate() {
            if self.link_dead(s, path.cells[s], port) {
                return false;
            }
        }
        true
    }
}

/// The outcome of routing a pair under faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRoute {
    /// A surviving path (its ports encode the routing tag via [`path_tag`]).
    Routed(CellPath),
    /// Every `src → dst` path crosses a dead link or a dead switch.
    Unroutable,
}

impl FaultRoute {
    /// The surviving path, if any.
    pub fn path(&self) -> Option<&CellPath> {
        match self {
            FaultRoute::Routed(path) => Some(path),
            FaultRoute::Unroutable => None,
        }
    }

    /// Whether the pair is still routable.
    pub fn is_routable(&self) -> bool {
        matches!(self, FaultRoute::Routed(_))
    }
}

/// The lexicographically first `src → dst` path that survives the digest,
/// computed exactly (backward reachability restricted to live cells and
/// links, then a greedy forward walk) — `None` when the pair is severed.
pub fn surviving_path(
    net: &ConnectionNetwork,
    src: u64,
    dst: u64,
    digest: &FaultDigest,
) -> Option<CellPath> {
    let cells = net.cells_per_stage() as u64;
    if src >= cells || dst >= cells || digest.cell_dead(0, src as u32) {
        return None;
    }
    forward_walk(net, src, &reaches_dst(net, dst, Some(digest)), digest)
}

/// The greedy forward walk behind [`surviving_path`], against a precomputed
/// fault-aware reachability table for the destination.
fn forward_walk(
    net: &ConnectionNetwork,
    src: u64,
    reach: &[Vec<bool>],
    digest: &FaultDigest,
) -> Option<CellPath> {
    if !reach[0][src as usize] {
        return None;
    }
    let mut path = CellPath {
        cells: vec![src as u32],
        ports: Vec::new(),
    };
    let mut cur = src;
    for s in 0..net.stages() - 1 {
        let conn = net.connection(s);
        let (next, port) = (0..2u8).find_map(|port| {
            if digest.link_dead(s, cur as u32, port) {
                return None;
            }
            let child = if port == 0 { conn.f(cur) } else { conn.g(cur) };
            reach[s + 1][child as usize].then_some((child, port))
        })?;
        path.cells.push(next as u32);
        path.ports.push(port);
        cur = next;
    }
    Some(path)
}

/// Routes `src → dst` under the digest: try the pair's link-disjoint paths
/// in enumeration order (the destination-tag path first), and when none of
/// them survives fall back to *any* surviving path — a surviving path can
/// lie outside the greedy disjoint set in redundant fabrics. Returns
/// [`FaultRoute::Unroutable`] only when the pair's last path is severed.
pub fn route_around(
    net: &ConnectionNetwork,
    src: u64,
    dst: u64,
    digest: &FaultDigest,
) -> FaultRoute {
    let last = net.stages() - 1;
    let cells = net.cells_per_stage() as u64;
    if src >= cells || dst >= cells {
        return FaultRoute::Unroutable;
    }
    if digest.cell_dead(0, src as u32) || digest.cell_dead(last, dst as u32) {
        return FaultRoute::Unroutable;
    }
    for path in disjoint_paths(net, src, dst) {
        if digest.path_ok(&path) {
            return FaultRoute::Routed(path);
        }
    }
    match surviving_path(net, src, dst, digest) {
        Some(path) => FaultRoute::Routed(path),
        None => FaultRoute::Unroutable,
    }
}

/// [`route_around`] for every source at once: one entry per first-stage
/// cell, routed to `dst` under the digest. The two per-destination
/// reachability tables (fault-free for the disjoint enumeration,
/// fault-aware for the fallback walk) are computed once and shared across
/// all sources, which is what the engine's per-epoch pair-table rebuild
/// wants — per pair the results are identical to [`route_around`].
pub fn route_all_to(net: &ConnectionNetwork, dst: u64, digest: &FaultDigest) -> Vec<FaultRoute> {
    let cells = net.cells_per_stage();
    let last = net.stages() - 1;
    if dst >= cells as u64 || digest.cell_dead(last, dst as u32) {
        return vec![FaultRoute::Unroutable; cells];
    }
    let reach_free = reaches_dst(net, dst, None);
    let reach_fault = reaches_dst(net, dst, Some(digest));
    (0..cells as u64)
        .map(|src| {
            if digest.cell_dead(0, src as u32) {
                return FaultRoute::Unroutable;
            }
            let candidates = greedy_disjoint(net, all_paths_with_reach(net, src, dst, &reach_free));
            for path in candidates {
                if digest.path_ok(&path) {
                    return FaultRoute::Routed(path);
                }
            }
            match forward_walk(net, src, &reach_fault, digest) {
                Some(path) => FaultRoute::Routed(path),
                None => FaultRoute::Unroutable,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::verify_cell_path;
    use crate::tag::destination_tags;
    use min_networks::{baseline, omega};

    #[test]
    fn banyan_pairs_have_exactly_one_path_and_it_is_the_tag_path() {
        let net = omega(4);
        let table = destination_tags(&net).unwrap();
        for src in 0..8u64 {
            for dst in 0..8u64 {
                let paths = all_paths(&net, src, dst);
                assert_eq!(paths.len(), 1, "{src}->{dst}");
                let disjoint = disjoint_paths(&net, src, dst);
                assert_eq!(disjoint, paths);
                assert!(verify_cell_path(&net, &paths[0]));
                assert_eq!(
                    path_tag(&paths[0]),
                    table.tag_of_destination[dst as usize],
                    "the unique path is the destination-tag path"
                );
            }
        }
    }

    #[test]
    fn parallel_links_create_two_disjoint_paths() {
        // A fabric whose every connection jams both ports onto the same
        // target (parallel arcs at each stage): each connected pair has
        // four paths, of which exactly two are pairwise link-disjoint.
        let twin = min_core::Connection::from_fn(2, |x| x, |x| x);
        let net = min_core::ConnectionNetwork::new(2, vec![twin.clone(), twin]);
        assert_eq!(all_paths(&net, 0, 0).len(), 4);
        let paths = disjoint_paths(&net, 0, 0);
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0].ports, paths[1].ports);
        assert_eq!(paths[0].cells, paths[1].cells, "cells shared, links not");
        assert_eq!(disjoint_path_count(&net, 0, 0), 2);
    }

    #[test]
    fn diversity_histogram_of_a_banyan_network_is_all_ones() {
        let net = baseline(4);
        let hist = path_diversity_histogram(&net);
        assert_eq!(hist, vec![0, 64]);
    }

    #[test]
    fn a_dead_link_severs_exactly_half_a_cell_column_of_pairs() {
        // In a Banyan fabric the link leaving (stage s, cell c) through port
        // p carries 2^s sources × cells/2^{s+1} destinations = cells/2 pairs.
        for n in 3..=5usize {
            let net = omega(n);
            let cells = net.cells_per_stage() as u64;
            let mut digest = FaultDigest::new(net.stages(), cells as usize);
            digest.kill_link(1, 0, 1);
            let severed = (0..cells)
                .flat_map(|s| (0..cells).map(move |d| (s, d)))
                .filter(|&(s, d)| !route_around(&net, s, d, &digest).is_routable())
                .count() as u64;
            assert_eq!(severed, cells / 2, "omega n={n}");
        }
    }

    #[test]
    fn route_around_prefers_a_surviving_disjoint_path() {
        // Parallel-link fabric: killing one of the twin arcs leaves the
        // sibling, so the pair reroutes instead of dying.
        let twin = min_core::Connection::from_fn(2, |x| x, |x| x);
        let net = min_core::ConnectionNetwork::new(2, vec![twin.clone(), twin]);
        let mut digest = FaultDigest::new(net.stages(), net.cells_per_stage());
        digest.kill_link(0, 0, 0);
        match route_around(&net, 0, 0, &digest) {
            FaultRoute::Routed(path) => {
                assert_eq!(path.ports[0], 1, "rerouted onto the sibling link");
                assert!(digest.path_ok(&path));
            }
            FaultRoute::Unroutable => panic!("a disjoint sibling path survives"),
        }
        // Killing both parallel arcs of the first stage severs the pair.
        digest.kill_link(0, 0, 1);
        assert_eq!(route_around(&net, 0, 0, &digest), FaultRoute::Unroutable);
    }

    #[test]
    fn dead_switches_sever_everything_through_them() {
        let net = omega(3);
        let mut digest = FaultDigest::new(net.stages(), net.cells_per_stage());
        digest.kill_cell(0, 2);
        for dst in 0..4u64 {
            assert_eq!(route_around(&net, 2, dst, &digest), FaultRoute::Unroutable);
        }
        // Other sources lose exactly the pairs routed through the mid-stage
        // cells they share with nothing here: source 0 keeps all its pairs.
        for dst in 0..4u64 {
            assert!(route_around(&net, 0, dst, &digest).is_routable());
        }
        assert!(!digest.is_clean());
        assert!(FaultDigest::new(3, 4).is_clean());
    }

    #[test]
    fn batched_routing_agrees_with_the_per_pair_api() {
        let net = omega(4);
        let cells = net.cells_per_stage();
        let mut digest = FaultDigest::new(net.stages(), cells);
        digest.kill_link(1, 0, 1);
        digest.kill_cell(0, 3);
        for dst in 0..cells as u64 {
            let batched = route_all_to(&net, dst, &digest);
            assert_eq!(batched.len(), cells);
            for src in 0..cells as u64 {
                assert_eq!(
                    batched[src as usize],
                    route_around(&net, src, dst, &digest),
                    "{src}->{dst}"
                );
            }
        }
        assert!(route_all_to(&net, 99, &digest)
            .iter()
            .all(|r| !r.is_routable()));
    }

    #[test]
    fn path_tags_encode_ports_bit_per_stage() {
        let path = CellPath {
            cells: vec![0, 1, 2, 3],
            ports: vec![1, 0, 1],
        };
        assert_eq!(path_tag(&path), 0b101);
        assert_eq!(
            path_tag(&CellPath {
                cells: vec![7],
                ports: vec![],
            }),
            0
        );
    }

    #[test]
    fn out_of_range_pairs_are_unroutable_and_pathless() {
        let net = omega(3);
        let digest = FaultDigest::new(net.stages(), net.cells_per_stage());
        assert!(all_paths(&net, 99, 0).is_empty());
        assert_eq!(route_around(&net, 0, 99, &digest), FaultRoute::Unroutable);
        assert!(surviving_path(&net, 99, 0, &digest).is_none());
    }
}
