//! Destination-tag (bit-directed) routing.
//!
//! For a delta network the cell reached from *any* source after applying the
//! port choices `t_0, t_1, …` depends only on the tag `t`; §4 of the paper
//! points out that PIPID-built networks admit exactly this kind of routing
//! ("a very simple bit directed routing"), which is why the classical
//! networks were designed with PIPID stages in the first place.

use min_core::delta::{delta_report, route_by_tag};
use min_core::ConnectionNetwork;
use min_labels::Label;
use serde::{Deserialize, Serialize};

/// The self-routing table of a delta network: the bijection between routing
/// tags and destination cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfRoutingTable {
    /// `destination_of_tag[t]` = last-stage cell reached with tag `t`.
    pub destination_of_tag: Vec<u32>,
    /// `tag_of_destination[d]` = tag reaching last-stage cell `d`.
    pub tag_of_destination: Vec<u32>,
}

impl SelfRoutingTable {
    /// Number of destinations / tags.
    pub fn len(&self) -> usize {
        self.destination_of_tag.len()
    }

    /// `true` when the table is empty (never the case for real networks).
    pub fn is_empty(&self) -> bool {
        self.destination_of_tag.is_empty()
    }
}

/// Computes the self-routing table of a delta network; `None` when the
/// network is not delta (with respect to its own `(f,g)` decomposition) or
/// when the tag→destination map is not a bijection.
pub fn destination_tags(net: &ConnectionNetwork) -> Option<SelfRoutingTable> {
    let report = delta_report(net);
    let destination_of_tag = report.destination?;
    let cells = net.cells_per_stage();
    if destination_of_tag.len() != cells {
        return None;
    }
    let mut tag_of_destination = vec![u32::MAX; cells];
    for (tag, &dest) in destination_of_tag.iter().enumerate() {
        if tag_of_destination[dest as usize] != u32::MAX {
            return None; // not a bijection
        }
        tag_of_destination[dest as usize] = tag as u32;
    }
    Some(SelfRoutingTable {
        destination_of_tag,
        tag_of_destination,
    })
}

/// The routing tag that reaches last-stage cell `destination` (delta
/// networks only).
pub fn tag_for_destination(net: &ConnectionNetwork, destination: Label) -> Option<Label> {
    let table = destination_tags(net)?;
    table
        .tag_of_destination
        .get(destination as usize)
        .map(|&t| u64::from(t))
}

/// Routes from `source` using `tag` (one bit per connection, bit `k`
/// consumed at connection `k`); re-exported from `min-core` for convenience.
pub fn route_with_tag(net: &ConnectionNetwork, source: Label, tag: Label) -> Label {
    route_by_tag(net, source, tag)
}

/// Verifies that the network is self-routing: for every source and every
/// destination, routing with the destination's tag really ends at that
/// destination.
pub fn verify_self_routing(net: &ConnectionNetwork) -> bool {
    let Some(table) = destination_tags(net) else {
        return false;
    };
    let cells = net.cells_per_stage() as u64;
    for dst in 0..cells {
        let tag = u64::from(table.tag_of_destination[dst as usize]);
        for src in 0..cells {
            if route_with_tag(net, src, tag) != dst {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::{
        baseline, flip, indirect_binary_cube, modified_data_manipulator, omega, reverse_baseline,
    };

    #[test]
    fn all_classical_networks_are_self_routing() {
        for n in 2..=6 {
            for (name, net) in [
                ("omega", omega(n)),
                ("flip", flip(n)),
                ("baseline", baseline(n)),
                ("reverse-baseline", reverse_baseline(n)),
                ("cube", indirect_binary_cube(n)),
                ("mdm", modified_data_manipulator(n)),
            ] {
                assert!(verify_self_routing(&net), "{name} n={n}");
            }
        }
    }

    #[test]
    fn omega_tags_are_the_destination_bits_reversed() {
        let net = omega(4);
        let table = destination_tags(&net).unwrap();
        for dst in 0..8u64 {
            let tag = u64::from(table.tag_of_destination[dst as usize]);
            // Destination bit j is consumed at connection (n-2-j): reversing
            // the 3 bits of dst gives the tag.
            let mut reversed = 0u64;
            for k in 0..3 {
                reversed |= ((dst >> k) & 1) << (2 - k);
            }
            assert_eq!(tag, reversed);
        }
    }

    #[test]
    fn cube_tags_equal_the_destination_address() {
        // The indirect binary cube consumes destination bit s at stage s, so
        // the tag *is* the destination.
        let net = indirect_binary_cube(4);
        let table = destination_tags(&net).unwrap();
        for dst in 0..8u32 {
            assert_eq!(table.tag_of_destination[dst as usize], dst);
        }
    }

    #[test]
    fn tag_for_destination_is_consistent_with_the_table() {
        let net = baseline(4);
        for dst in 0..8u64 {
            let tag = tag_for_destination(&net, dst).unwrap();
            assert_eq!(route_with_tag(&net, 3, tag), dst);
            assert_eq!(route_with_tag(&net, 6, tag), dst);
        }
    }

    #[test]
    fn non_delta_networks_have_no_table() {
        // A network with a non-affine stage is not destination-tag routable.
        let table: [u64; 4] = [0, 1, 3, 2];
        let weird = min_core::Connection::from_fn(
            2,
            move |x| table[x as usize],
            move |x| table[x as usize] ^ 2,
        );
        let second = min_core::Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 2);
        let net = min_core::ConnectionNetwork::new(2, vec![weird, second]);
        assert!(destination_tags(&net).is_none());
        assert!(!verify_self_routing(&net));
        assert!(tag_for_destination(&net, 0).is_none());
    }

    #[test]
    fn routing_table_is_a_bijection() {
        let net = flip(5);
        let table = destination_tags(&net).unwrap();
        assert_eq!(table.len(), 16);
        assert!(!table.is_empty());
        let mut dests = table.destination_of_tag.clone();
        dests.sort_unstable();
        assert_eq!(dests, (0..16u32).collect::<Vec<_>>());
    }
}
