//! Property tests for the looping algorithm: on Benes fabrics up to n = 6,
//! **every** full terminal permutation admits a conflict-free switch
//! setting, and the setting the algorithm returns realises exactly the
//! requested permutation — the rearrangeability theorem the construction
//! exists for, checked sample by sample.

use min_networks::rearrangeable::{benes, benes_variant};
use min_routing::looping::{loop_setup, LoopingError};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A uniformly random permutation of the `terminals` terminal labels.
fn random_permutation(terminals: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..terminals as u32).collect();
    perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random full permutations on Benes(n), n ≤ 6: the setup succeeds and
    /// the setting is conflict-free (no two circuits share a link) with
    /// every terminal delivered to its requested destination.
    #[test]
    fn looping_configures_random_permutations_on_benes(n in 2usize..=6, seed in any::<u64>()) {
        let net = benes(n);
        let perm = random_permutation(2 * net.cells_per_stage(), seed);
        let setting = loop_setup(&net, &perm).expect("Benes is rearrangeable");
        prop_assert_eq!(setting.destinations.clone(), perm);
        prop_assert!(setting.verify(&net), "conflicting or misrouted setting");
    }

    /// The 2024 shuffle-based variant is rearrangeable too: same guarantee
    /// through the same algorithm.
    #[test]
    fn looping_configures_random_permutations_on_the_variant(n in 2usize..=5, seed in any::<u64>()) {
        let net = benes_variant(n);
        let perm = random_permutation(2 * net.cells_per_stage(), seed);
        let setting = loop_setup(&net, &perm).expect("the Benes variant is rearrangeable");
        prop_assert_eq!(setting.destinations.clone(), perm);
        prop_assert!(setting.verify(&net), "conflicting or misrouted setting");
    }

    /// Malformed patterns are typed errors, never panics: a repeated
    /// destination is `NotPermutation`, a truncated one `WrongLength`.
    #[test]
    fn malformed_patterns_are_typed_errors(n in 2usize..=4, seed in any::<u64>()) {
        let net = benes(n);
        let terminals = 2 * net.cells_per_stage();
        let mut repeated = random_permutation(terminals, seed);
        repeated[0] = repeated[1];
        prop_assert!(matches!(
            loop_setup(&net, &repeated).unwrap_err(),
            LoopingError::NotPermutation { .. }
        ));
        let short = random_permutation(terminals - 1, seed);
        prop_assert_eq!(
            loop_setup(&net, &short).unwrap_err(),
            LoopingError::WrongLength {
                expected: terminals,
                found: terminals - 1
            }
        );
    }
}
