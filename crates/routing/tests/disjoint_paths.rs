//! Property tests for the disjoint-path enumeration: on random PIPID
//! networks and on damaged stuck-cell fabrics, every enumerated
//! disjoint-path set is pairwise link-disjoint, and every member is a valid
//! stage-monotone path of the fabric — checked both against the `(f, g)`
//! port semantics (`verify_cell_path`) and against the raw arcs of the
//! MI-digraph.

use min_core::ConnectionNetwork;
use min_graph::paths::is_banyan;
use min_networks::{random::random_pipid_network, stuck_cell, ClassicalNetwork};
use min_routing::disjoint::{all_paths, disjoint_paths, path_diversity_histogram};
use min_routing::path::verify_cell_path;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Asserts the disjoint-path invariants for every (src, dst) pair of `net`,
/// returning an error message on the first violation (proptest style).
fn check_disjoint_invariants(net: &ConnectionNetwork) -> Result<(), String> {
    let g = net.to_digraph();
    let cells = net.cells_per_stage() as u64;
    for src in 0..cells {
        for dst in 0..cells {
            let paths = disjoint_paths(net, src, dst);
            let mut used = std::collections::HashSet::new();
            for path in &paths {
                // Endpoints and shape.
                if path.cells.first() != Some(&(src as u32))
                    || path.cells.last() != Some(&(dst as u32))
                {
                    return Err(format!("{src}->{dst}: wrong endpoints {path:?}"));
                }
                // Valid under the (f, g) port semantics…
                if !verify_cell_path(net, path) {
                    return Err(format!("{src}->{dst}: invalid cell path {path:?}"));
                }
                // …and every hop is a real arc of the fabric digraph.
                for (s, window) in path.cells.windows(2).enumerate() {
                    if !g.children(s, window[0]).contains(&window[1]) {
                        return Err(format!(
                            "{src}->{dst}: hop {window:?} at stage {s} is not an arc"
                        ));
                    }
                }
                // Pairwise link-disjoint across the whole set.
                for (s, &port) in path.ports.iter().enumerate() {
                    if !used.insert((s, path.cells[s], port)) {
                        return Err(format!(
                            "{src}->{dst}: link ({s}, {}, {port}) shared between \
                             two 'disjoint' paths",
                            path.cells[s]
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random non-degenerate-PIPID networks (Banyan or not) keep every
    /// disjoint-path invariant, their diversity histogram accounts for every
    /// pair, and the Banyan instances among them have exactly one path per
    /// pair.
    #[test]
    fn random_pipid_disjoint_sets_are_valid_and_singleton_when_banyan(
        seed in any::<u64>(),
        n in 3usize..=5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = random_pipid_network(n, &mut rng);
        check_disjoint_invariants(&net)?;
        let cells = net.cells_per_stage() as u64;
        let hist = path_diversity_histogram(&net);
        prop_assert_eq!(hist.iter().sum::<u64>(), cells * cells);
        if is_banyan(&net.to_digraph()) {
            prop_assert_eq!(hist, vec![0, cells * cells]);
        }
    }

    /// Stuck-cell fabrics gain parallel-arc multipath pairs, but the twin
    /// paths re-merge immediately and share every downstream link — so the
    /// invariants still hold, some pair has ≥ 2 raw paths yet only 1
    /// link-disjoint one, and the bypassed target severs other pairs.
    #[test]
    fn stuck_cell_fabrics_keep_the_invariants_under_multipath(
        kind_index in 0usize..6,
        n in 3usize..=4,
        cell in 0u32..4,
        port in 0u8..2,
    ) {
        let kind = ClassicalNetwork::ALL[kind_index];
        // Jamming a first-stage cell guarantees the parallel arcs sit on
        // live source→destination paths.
        let net = stuck_cell(&kind.build(n), 0, cell, port);
        check_disjoint_invariants(&net)?;
        let cells = net.cells_per_stage() as u64;
        let hist = path_diversity_histogram(&net);
        prop_assert_eq!(hist.iter().sum::<u64>(), cells * cells);
        prop_assert!(hist[0] > 0, "the bypassed target severs some pairs");
        // Parallel links alone buy no end-to-end redundancy: the twin paths
        // share all links past the jammed stage, so no pair gains a second
        // disjoint path.
        prop_assert_eq!(hist.len(), 2);
        let multipath = (0..cells).flat_map(|s| (0..cells).map(move |d| (s, d)))
            .any(|(s, d)| {
                all_paths(&net, s, d).len() >= 2 && disjoint_paths(&net, s, d).len() == 1
            });
        prop_assert!(multipath, "some pair must be multipath but not disjoint");
    }
}
