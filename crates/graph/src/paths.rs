//! Path counting and the Banyan property.
//!
//! The paper: *"We say that a network has the Banyan property if and only if
//! for any input and any output there exists a unique path connecting
//! them."* In the MI-digraph model (no explicit input/output nodes) this is
//! the statement that between every first-stage node and every last-stage
//! node there is exactly one directed path.
//!
//! Because every interior node of a proper MI-digraph has out-degree 2, the
//! number of maximal paths leaving a first-stage node is `2^{n-1}`, which
//! equals the number of last-stage nodes; hence "exactly one path to every
//! output" is equivalent to "at most one path to every output", and also to
//! "the forward-reachable set doubles at every stage". The functions below
//! expose all three views because different callers (tests, benchmarks,
//! counterexample search) want different granularity.

use crate::digraph::MiDigraph;

/// Number of distinct directed paths from node `src` of the first stage to
/// each node of the last stage.
///
/// Counts saturate at `u64::MAX` (irrelevant in practice: a proper
/// MI-digraph has at most `2^{n-1}` paths from a node).
pub fn path_counts_from(g: &MiDigraph, src: u32) -> Vec<u64> {
    let w = g.width();
    let mut counts = vec![0u64; w];
    counts[src as usize] = 1;
    for s in 0..g.stages().saturating_sub(1) {
        let mut next = vec![0u64; w];
        for v in 0..w as u32 {
            let c = counts[v as usize];
            if c == 0 {
                continue;
            }
            for &child in g.children(s, v) {
                next[child as usize] = next[child as usize].saturating_add(c);
            }
        }
        counts = next;
    }
    counts
}

/// Sizes of the forward-reachable set of `src` at every stage.
///
/// For a Banyan MI-digraph built from 2×2 cells these sizes are
/// `1, 2, 4, …, 2^{n-1}`.
pub fn reachable_per_stage(g: &MiDigraph, src: u32) -> Vec<usize> {
    let w = g.width();
    let mut reach = vec![false; w];
    reach[src as usize] = true;
    let mut sizes = vec![1usize];
    for s in 0..g.stages().saturating_sub(1) {
        let mut next = vec![false; w];
        for v in 0..w as u32 {
            if reach[v as usize] {
                for &child in g.children(s, v) {
                    next[child as usize] = true;
                }
            }
        }
        sizes.push(next.iter().filter(|&&b| b).count());
        reach = next;
    }
    sizes
}

/// Exact Banyan-property test: every (first-stage, last-stage) pair is
/// joined by exactly one directed path.
///
/// Runs a per-source dynamic program with early exit as soon as two paths
/// converge; `O(stages · width²)` in the worst case.
pub fn is_banyan(g: &MiDigraph) -> bool {
    banyan_violation(g).is_none()
}

/// Returns a witness of a Banyan violation, if any: either a pair that is
/// connected by ≥ 2 paths or a pair with no path at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BanyanViolation {
    /// `(source, sink, count)` with `count >= 2` paths.
    MultiplePaths(u32, u32, u64),
    /// `(source, sink)` with no connecting path.
    NoPath(u32, u32),
}

/// Finds a Banyan violation if one exists (see [`BanyanViolation`]).
pub fn banyan_violation(g: &MiDigraph) -> Option<BanyanViolation> {
    let w = g.width();
    for src in 0..w as u32 {
        let mut counts = vec![0u64; w];
        counts[src as usize] = 1;
        for s in 0..g.stages().saturating_sub(1) {
            let mut next = vec![0u64; w];
            for v in 0..w as u32 {
                let c = counts[v as usize];
                if c == 0 {
                    continue;
                }
                for &child in g.children(s, v) {
                    next[child as usize] = next[child as usize].saturating_add(c);
                }
            }
            counts = next;
        }
        for (dst, &c) in counts.iter().enumerate() {
            if c == 0 {
                return Some(BanyanViolation::NoPath(src, dst as u32));
            }
            if c > 1 {
                return Some(BanyanViolation::MultiplePaths(src, dst as u32, c));
            }
        }
    }
    None
}

/// The unique directed path from first-stage node `src` to last-stage node
/// `dst` in a Banyan MI-digraph, as the sequence of node indices (one per
/// stage). Returns `None` when no path exists.
///
/// If the digraph is not Banyan the function still returns *some* path when
/// one exists (the lexicographically first one in child order).
pub fn unique_path(g: &MiDigraph, src: u32, dst: u32) -> Option<Vec<u32>> {
    let w = g.width();
    let n = g.stages();
    // Backward reachability from dst so the forward walk can be greedy.
    let mut reaches_dst = vec![vec![false; w]; n];
    reaches_dst[n - 1][dst as usize] = true;
    for s in (0..n.saturating_sub(1)).rev() {
        for v in 0..w as u32 {
            if g.children(s, v)
                .iter()
                .any(|&c| reaches_dst[s + 1][c as usize])
            {
                reaches_dst[s][v as usize] = true;
            }
        }
    }
    if !reaches_dst[0][src as usize] {
        return None;
    }
    let mut path = vec![src];
    let mut cur = src;
    for s in 0..n - 1 {
        let next = g
            .children(s, cur)
            .iter()
            .copied()
            .find(|&c| reaches_dst[s + 1][c as usize])?;
        path.push(next);
        cur = next;
    }
    Some(path)
}

/// Total number of (first-stage, last-stage) ordered pairs joined by at
/// least one path. For a Banyan graph this is `width²`.
pub fn connected_pairs(g: &MiDigraph) -> usize {
    (0..g.width() as u32)
        .map(|src| path_counts_from(g, src).iter().filter(|&&c| c > 0).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline8() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            g.add_arc(0, v, v >> 1);
            g.add_arc(0, v, (v >> 1) | 2);
        }
        for v in 0..4u32 {
            let high = v & 2;
            g.add_arc(1, v, high);
            g.add_arc(1, v, high | 1);
        }
        g
    }

    /// A graph where two paths converge: both stage-0 nodes send both arcs
    /// to the same pair, and stage 1 funnels into node 0.
    fn convergent() -> MiDigraph {
        let mut g = MiDigraph::new(3, 2);
        g.add_arc(0, 0, 0);
        g.add_arc(0, 0, 1);
        g.add_arc(0, 1, 0);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 0, 0);
        g.add_arc(1, 0, 0); // parallel arcs -> 2 paths to node 0
        g.add_arc(1, 1, 1);
        g.add_arc(1, 1, 1);
        g
    }

    #[test]
    fn baseline_is_banyan() {
        let g = baseline8();
        assert!(is_banyan(&g));
        assert_eq!(banyan_violation(&g), None);
        for src in 0..4u32 {
            assert_eq!(path_counts_from(&g, src), vec![1, 1, 1, 1]);
            assert_eq!(reachable_per_stage(&g, src), vec![1, 2, 4]);
        }
        assert_eq!(connected_pairs(&g), 16);
    }

    #[test]
    fn convergent_graph_is_not_banyan() {
        let g = convergent();
        assert!(!is_banyan(&g));
        match banyan_violation(&g).unwrap() {
            BanyanViolation::MultiplePaths(_, _, c) => assert!(c >= 2),
            other => panic!("expected MultiplePaths, got {other:?}"),
        }
    }

    #[test]
    fn missing_arcs_yield_no_path_violation() {
        let mut g = MiDigraph::new(3, 2);
        // Only connect node 0 forward; node 1 of stage 0 is a dead end.
        g.add_arc(0, 0, 0);
        g.add_arc(0, 0, 1);
        g.add_arc(1, 0, 0);
        g.add_arc(1, 1, 1);
        let v = banyan_violation(&g).unwrap();
        assert!(matches!(v, BanyanViolation::NoPath(1, _)));
        assert!(!is_banyan(&g));
    }

    #[test]
    fn unique_path_walks_the_baseline() {
        let g = baseline8();
        for src in 0..4u32 {
            for dst in 0..4u32 {
                let p = unique_path(&g, src, dst).expect("banyan graph: path exists");
                assert_eq!(p.len(), 3);
                assert_eq!(p[0], src);
                assert_eq!(p[2], dst);
                // Every consecutive pair must be an arc.
                for s in 0..2 {
                    assert!(g.children(s, p[s]).contains(&p[s + 1]));
                }
            }
        }
    }

    #[test]
    fn unique_path_returns_none_when_unreachable() {
        let mut g = MiDigraph::new(2, 2);
        g.add_arc(0, 0, 0);
        assert!(unique_path(&g, 0, 1).is_none());
        assert!(unique_path(&g, 1, 1).is_none());
        assert_eq!(unique_path(&g, 0, 0), Some(vec![0, 0]));
    }

    #[test]
    fn single_stage_graph_is_trivially_banyan_on_diagonal_only() {
        let g = MiDigraph::new(1, 4);
        // With one stage there are no arcs; each node reaches only itself.
        assert_eq!(path_counts_from(&g, 2), vec![0, 0, 1, 0]);
        assert!(!is_banyan(&g), "off-diagonal pairs have no path");
        assert_eq!(reachable_per_stage(&g, 0), vec![1]);
    }

    #[test]
    fn reachable_per_stage_reports_saturation() {
        let g = convergent();
        // The reachable set saturates at width 2 instead of doubling to 4,
        // and the path counts show the convergence (2 paths per sink).
        assert_eq!(reachable_per_stage(&g, 0), vec![1, 2, 2]);
        assert_eq!(path_counts_from(&g, 0), vec![2, 2]);
    }
}
