//! Stage-aware colour refinement (1-dimensional Weisfeiler–Leman).
//!
//! Colour refinement is used by the isomorphism machinery in two ways:
//!
//! * as a cheap *non-isomorphism* certificate — if the multisets of stable
//!   colours of two MI-digraphs differ on any stage, the digraphs cannot be
//!   isomorphic;
//! * as a pruning order for the exact backtracking search in [`crate::iso`].
//!
//! Nodes start with their stage as colour (an MI-digraph isomorphism must
//! preserve stages) and are repeatedly split by the multiset of child and
//! parent colours until a fixed point.

use crate::digraph::MiDigraph;
use std::collections::HashMap;

/// Stable colouring of an MI-digraph. `colors[stage][node]` is a small
/// integer; equal colours mean "not distinguished by 1-WL".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Per-stage, per-node colour.
    pub colors: Vec<Vec<u32>>,
    /// Total number of distinct colours.
    pub color_count: u32,
    /// Number of refinement rounds performed before stabilising.
    pub rounds: usize,
}

impl Coloring {
    /// Histogram of colours per stage (sorted), a stage-respecting
    /// isomorphism invariant.
    pub fn stage_histograms(&self) -> Vec<Vec<(u32, usize)>> {
        self.colors
            .iter()
            .map(|stage| {
                let mut h: HashMap<u32, usize> = HashMap::new();
                for &c in stage {
                    *h.entry(c).or_default() += 1;
                }
                let mut v: Vec<(u32, usize)> = h.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }
}

/// Per-node refinement signature: own colour, sorted child colours, sorted
/// parent colours.
type NodeSignature = (u32, Vec<u32>, Vec<u32>);

/// Runs colour refinement to a fixed point.
pub fn color_refinement(g: &MiDigraph) -> Coloring {
    let n = g.stages();
    let w = g.width();
    // Initial colour = stage index.
    let mut colors: Vec<Vec<u32>> = (0..n).map(|s| vec![s as u32; w]).collect();
    let mut color_count = n as u32;
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        // Signature of each node: (own colour, sorted child colours, sorted parent colours).
        let mut signatures: Vec<Vec<NodeSignature>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut stage_sigs = Vec::with_capacity(w);
            for v in 0..w as u32 {
                let mut kid_colors: Vec<u32> = g
                    .children(s, v)
                    .iter()
                    .map(|&c| colors[s + 1][c as usize])
                    .collect();
                kid_colors.sort_unstable();
                let mut parent_colors: Vec<u32> = g
                    .parents(s, v)
                    .iter()
                    .map(|&p| colors[s - 1][p as usize])
                    .collect();
                parent_colors.sort_unstable();
                stage_sigs.push((colors[s][v as usize], kid_colors, parent_colors));
            }
            signatures.push(stage_sigs);
        }
        // Canonicalise signatures to new colours.
        let mut sig_to_color: HashMap<NodeSignature, u32> = HashMap::new();
        let mut next_color = 0u32;
        let mut new_colors: Vec<Vec<u32>> = Vec::with_capacity(n);
        for stage_sigs in signatures {
            let mut stage_colors = Vec::with_capacity(w);
            for sig in stage_sigs {
                let c = *sig_to_color.entry(sig).or_insert_with(|| {
                    let c = next_color;
                    next_color += 1;
                    c
                });
                stage_colors.push(c);
            }
            new_colors.push(stage_colors);
        }
        let stabilized = next_color == color_count && partition_equal(&colors, &new_colors);
        colors = new_colors;
        color_count = next_color;
        if stabilized || rounds > n * w + 2 {
            break;
        }
    }
    Coloring {
        colors,
        color_count,
        rounds,
    }
}

/// `true` if the two colourings induce the same partition of the nodes
/// (colour *names* may differ).
fn partition_equal(a: &[Vec<u32>], b: &[Vec<u32>]) -> bool {
    let mut fwd: HashMap<u32, u32> = HashMap::new();
    let mut bwd: HashMap<u32, u32> = HashMap::new();
    for (sa, sb) in a.iter().zip(b.iter()) {
        for (&ca, &cb) in sa.iter().zip(sb.iter()) {
            match fwd.get(&ca) {
                Some(&expected) if expected != cb => return false,
                None => {
                    fwd.insert(ca, cb);
                }
                _ => {}
            }
            match bwd.get(&cb) {
                Some(&expected) if expected != ca => return false,
                None => {
                    bwd.insert(cb, ca);
                }
                _ => {}
            }
        }
    }
    true
}

/// Quick necessary condition for stage-respecting isomorphism: the stable
/// colour histograms of the two digraphs must match stage by stage.
pub fn refinement_compatible(g: &MiDigraph, h: &MiDigraph) -> bool {
    if g.stages() != h.stages() || g.width() != h.width() {
        return false;
    }
    // Refine the disjoint union so colour names are comparable.
    let mut union = MiDigraph::new(g.stages(), g.width() + h.width());
    for (s, from, to) in g.arcs() {
        union.add_arc(s, from, to);
    }
    let offset = g.width() as u32;
    for (s, from, to) in h.arcs() {
        union.add_arc(s, from + offset, to + offset);
    }
    let coloring = color_refinement(&union);
    for s in 0..g.stages() {
        let mut hg: HashMap<u32, i64> = HashMap::new();
        for v in 0..g.width() {
            *hg.entry(coloring.colors[s][v]).or_default() += 1;
        }
        for v in 0..h.width() {
            *hg.entry(coloring.colors[s][g.width() + v]).or_default() -= 1;
        }
        if hg.values().any(|&c| c != 0) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline8() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            g.add_arc(0, v, v >> 1);
            g.add_arc(0, v, (v >> 1) | 2);
        }
        for v in 0..4u32 {
            let high = v & 2;
            g.add_arc(1, v, high);
            g.add_arc(1, v, high | 1);
        }
        g
    }

    #[test]
    fn refinement_terminates_and_reports_counts() {
        let g = baseline8();
        let c = color_refinement(&g);
        assert!(c.color_count >= 3, "stages are always distinguished");
        assert_eq!(c.colors.len(), 3);
        assert!(c.rounds >= 1);
    }

    #[test]
    fn vertex_transitive_stages_stay_monochromatic() {
        // In the Baseline, all nodes of a stage look alike to 1-WL.
        let g = baseline8();
        let c = color_refinement(&g);
        for s in 0..3 {
            let first = c.colors[s][0];
            assert!(c.colors[s].iter().all(|&x| x == first));
        }
    }

    #[test]
    fn irregular_nodes_get_split() {
        let mut g = MiDigraph::new(2, 3);
        g.add_arc(0, 0, 0);
        g.add_arc(0, 0, 1);
        g.add_arc(0, 1, 1);
        // node 2 of stage 0 has out-degree 0 and must receive its own colour.
        let c = color_refinement(&g);
        assert_ne!(c.colors[0][0], c.colors[0][2]);
        assert_ne!(c.colors[0][1], c.colors[0][2]);
    }

    #[test]
    fn compatible_graphs_pass_the_filter() {
        let g = baseline8();
        // A relabelled copy is certainly compatible.
        let mapping = vec![vec![1, 0, 3, 2], vec![2, 3, 0, 1], vec![0, 1, 2, 3]];
        let h = g.relabel(&mapping);
        assert!(refinement_compatible(&g, &h));
    }

    #[test]
    fn incompatible_graphs_fail_the_filter() {
        let g = baseline8();
        let mut h = MiDigraph::new(3, 4);
        // Same number of arcs per stage overall, but an irregular degree
        // distribution (one node of out-degree 3, one of out-degree 1).
        h.add_arc(0, 0, 0);
        h.add_arc(0, 0, 1);
        h.add_arc(0, 0, 2);
        h.add_arc(0, 1, 3);
        h.add_arc(0, 2, 0);
        h.add_arc(0, 2, 1);
        h.add_arc(0, 3, 2);
        h.add_arc(0, 3, 3);
        for v in 0..4u32 {
            h.add_arc(1, v, v);
            h.add_arc(1, v, v ^ 1);
        }
        assert!(!refinement_compatible(&g, &h));
    }

    #[test]
    fn refinement_is_only_a_necessary_condition() {
        // 1-WL cannot tell the Baseline from the "parallel-arc" graph in
        // which every cell sends both outputs to the same child: both are
        // 2-in/2-out regular and stage-monochromatic. The exact search in
        // `iso` is what separates them; here we only document the weakness.
        let g = baseline8();
        let mut h = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            h.add_arc(0, v, v);
            h.add_arc(0, v, v);
            h.add_arc(1, v, v);
            h.add_arc(1, v, v ^ 1);
        }
        assert!(refinement_compatible(&g, &h));
    }

    #[test]
    fn size_mismatch_is_incompatible() {
        let g = baseline8();
        let h = MiDigraph::new(3, 8);
        assert!(!refinement_compatible(&g, &h));
        let k = MiDigraph::new(4, 4);
        assert!(!refinement_compatible(&g, &k));
    }
}
