//! Compact text serialization of MI-digraphs.
//!
//! [`MiDigraph`] also derives `serde::{Serialize, Deserialize}` for JSON and
//! friends; the format here is a minimal, human-readable line format that is
//! convenient for golden-file tests and for pasting networks into issue
//! reports:
//!
//! ```text
//! mi-digraph v1 stages=3 width=4
//! 0 0 -> 0 2
//! 0 1 -> 0 2
//! …
//! ```
//!
//! Each arc line is `STAGE FROM -> CHILD CHILD …` (children of one node on a
//! single line, omitted when the node has none).

use crate::digraph::MiDigraph;
use std::fmt::Write as _;

/// Error produced when parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a digraph to the line format.
pub fn to_text(g: &MiDigraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mi-digraph v1 stages={} width={}",
        g.stages(),
        g.width()
    );
    for s in 0..g.stages().saturating_sub(1) {
        for v in 0..g.width() as u32 {
            let kids = g.children(s, v);
            if kids.is_empty() {
                continue;
            }
            let list = kids
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "{s} {v} -> {list}");
        }
    }
    out
}

/// Parses the line format back into a digraph.
pub fn from_text(text: &str) -> Result<MiDigraph, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseError {
        line: 1,
        message: "empty input".into(),
    })?;
    let header_err = |msg: &str| ParseError {
        line: 1,
        message: msg.to_string(),
    };
    let mut stages = None;
    let mut width = None;
    if !header.starts_with("mi-digraph v1") {
        return Err(header_err("missing `mi-digraph v1` header"));
    }
    for token in header.split_whitespace().skip(2) {
        if let Some(v) = token.strip_prefix("stages=") {
            stages = Some(v.parse::<usize>().map_err(|_| header_err("bad stages="))?);
        } else if let Some(v) = token.strip_prefix("width=") {
            width = Some(v.parse::<usize>().map_err(|_| header_err("bad width="))?);
        }
    }
    let stages = stages.ok_or_else(|| header_err("missing stages="))?;
    let width = width.ok_or_else(|| header_err("missing width="))?;
    let mut g = MiDigraph::new(stages, width);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| ParseError {
            line: line_no,
            message: msg.to_string(),
        };
        let (lhs, rhs) = line.split_once("->").ok_or_else(|| err("missing `->`"))?;
        let mut lhs_iter = lhs.split_whitespace();
        let s: usize = lhs_iter
            .next()
            .ok_or_else(|| err("missing stage"))?
            .parse()
            .map_err(|_| err("bad stage"))?;
        let v: u32 = lhs_iter
            .next()
            .ok_or_else(|| err("missing node"))?
            .parse()
            .map_err(|_| err("bad node"))?;
        if s + 1 >= stages || (v as usize) >= width {
            return Err(err("stage or node out of range"));
        }
        for tok in rhs.split_whitespace() {
            let c: u32 = tok.parse().map_err(|_| err("bad child"))?;
            if (c as usize) >= width {
                return Err(err("child out of range"));
            }
            g.add_arc(s, v, c);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline8() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            g.add_arc(0, v, v >> 1);
            g.add_arc(0, v, (v >> 1) | 2);
        }
        for v in 0..4u32 {
            let high = v & 2;
            g.add_arc(1, v, high);
            g.add_arc(1, v, high | 1);
        }
        g
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = baseline8();
        let text = to_text(&g);
        let back = from_text(&text).expect("round trip parses");
        assert!(g.same_arcs(&back));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "mi-digraph v1 stages=2 width=2\n\n# comment\n0 0 -> 0 1\n0 1 -> 0 1\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.arc_count(), 4);
    }

    #[test]
    fn header_errors_are_reported() {
        assert!(from_text("").is_err());
        assert!(from_text("garbage").is_err());
        assert!(from_text("mi-digraph v1 width=2").is_err());
        assert!(from_text("mi-digraph v1 stages=2").is_err());
    }

    #[test]
    fn body_errors_carry_line_numbers() {
        let text = "mi-digraph v1 stages=2 width=2\n0 0 -> 9\n";
        let err = from_text(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("out of range"));

        let text = "mi-digraph v1 stages=2 width=2\n1 0 -> 0\n";
        assert!(from_text(text).is_err(), "arcs cannot leave the last stage");
    }

    #[test]
    fn serde_json_round_trip() {
        let g = baseline8();
        let json = serde_json::to_string(&g).unwrap();
        let back: MiDigraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
