//! The MI-digraph data structure.

use serde::{Deserialize, Serialize};

/// Identifies a node by its stage and its index within that stage.
///
/// The paper labels the nodes of stage `i` with the binary `(n-1)`-tuples
/// `(x_{n-1}, …, x_1)`; [`NodeId::index`] is the integer value of that tuple
/// and [`NodeId::stage`] is the 0-based stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId {
    /// 0-based stage (the paper's stage `i` is `stage = i - 1`).
    pub stage: usize,
    /// Index of the node within its stage (`0 ..= width-1`).
    pub index: u32,
}

impl NodeId {
    /// Convenience constructor.
    pub fn new(stage: usize, index: u32) -> Self {
        NodeId { stage, index }
    }
}

/// A multistage interconnection digraph.
///
/// Nodes are partitioned into `stages` ordered stages of `width` nodes each;
/// arcs go only from stage `s` to stage `s+1`. Parallel arcs are allowed
/// (they arise from the degenerate PIPID stages of Fig. 5) and degrees are
/// not constrained by the data structure — the paper's regularity
/// requirements are checked by [`MiDigraph::is_proper`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiDigraph {
    stages: usize,
    width: usize,
    /// `fwd[s][v]` = children (stage `s+1` indices) of node `v` of stage `s`;
    /// `fwd.len() == stages - 1`.
    fwd: Vec<Vec<Vec<u32>>>,
    /// `bwd[s][v]` = parents (stage `s-1` indices) of node `v` of stage `s`;
    /// `bwd[0]` is always a vector of empty lists.
    bwd: Vec<Vec<Vec<u32>>>,
}

impl MiDigraph {
    /// Creates an MI-digraph with the given number of stages and nodes per
    /// stage and no arcs.
    pub fn new(stages: usize, width: usize) -> Self {
        assert!(stages >= 1, "an MI-digraph needs at least one stage");
        assert!(width >= 1, "each stage needs at least one node");
        let fwd = (0..stages.saturating_sub(1))
            .map(|_| vec![Vec::new(); width])
            .collect();
        let bwd = (0..stages).map(|_| vec![Vec::new(); width]).collect();
        MiDigraph {
            stages,
            width,
            fwd,
            bwd,
        }
    }

    /// Number of stages (`n` in the paper).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Nodes per stage (`N/2 = 2^{n-1}` for the paper's networks).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.stages * self.width
    }

    /// Total number of arcs.
    pub fn arc_count(&self) -> usize {
        self.fwd
            .iter()
            .map(|stage| stage.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Adds an arc from node `from` of stage `stage` to node `to` of stage
    /// `stage + 1`. Parallel arcs are permitted.
    pub fn add_arc(&mut self, stage: usize, from: u32, to: u32) {
        assert!(
            stage + 1 < self.stages,
            "arc source stage {stage} has no successor stage"
        );
        assert!((from as usize) < self.width, "source index out of range");
        assert!((to as usize) < self.width, "target index out of range");
        self.fwd[stage][from as usize].push(to);
        self.bwd[stage + 1][to as usize].push(from);
    }

    /// Children of node `v` of stage `stage` (empty for the last stage).
    pub fn children(&self, stage: usize, v: u32) -> &[u32] {
        if stage + 1 >= self.stages {
            &[]
        } else {
            &self.fwd[stage][v as usize]
        }
    }

    /// Parents of node `v` of stage `stage` (empty for the first stage).
    pub fn parents(&self, stage: usize, v: u32) -> &[u32] {
        &self.bwd[stage][v as usize]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, stage: usize, v: u32) -> usize {
        self.children(stage, v).len()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, stage: usize, v: u32) -> usize {
        self.parents(stage, v).len()
    }

    /// Iterates over all arcs as `(stage, from, to)` triples.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, u32, u32)> + '_ {
        self.fwd.iter().enumerate().flat_map(|(s, stage)| {
            stage
                .iter()
                .enumerate()
                .flat_map(move |(v, kids)| kids.iter().map(move |&c| (s, v as u32, c)))
        })
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.stages).flat_map(move |s| (0..self.width as u32).map(move |v| NodeId::new(s, v)))
    }

    /// Checks the regularity requirements of the paper's MI-digraph
    /// definition: every node of a non-final stage has out-degree 2, every
    /// node of a non-initial stage has in-degree 2, and arcs only join
    /// consecutive stages (guaranteed structurally).
    ///
    /// Note that the paper additionally requires `width = 2^{stages - 1}`;
    /// that is a property of the *networks*, not of the digraph container,
    /// and is checked by `min-core`.
    pub fn is_proper(&self) -> bool {
        for s in 0..self.stages {
            for v in 0..self.width as u32 {
                if s + 1 < self.stages && self.out_degree(s, v) != 2 {
                    return false;
                }
                if s > 0 && self.in_degree(s, v) != 2 {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if some node has two parallel arcs to the same child —
    /// the degenerate situation of Fig. 5 (a PIPID stage with θ⁻¹(0) = 0).
    pub fn has_parallel_arcs(&self) -> bool {
        for s in 0..self.stages.saturating_sub(1) {
            for v in 0..self.width {
                let kids = &self.fwd[s][v];
                for i in 0..kids.len() {
                    for j in (i + 1)..kids.len() {
                        if kids[i] == kids[j] {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// The reverse MI-digraph `G⁻¹`: stages in reverse order and every arc
    /// flipped (the paper's "reverse network", §3).
    pub fn reverse(&self) -> MiDigraph {
        let mut rev = MiDigraph::new(self.stages, self.width);
        for (s, from, to) in self.arcs() {
            // Arc (s, from) -> (s+1, to) becomes, in the reversed stage
            // order, an arc from stage (stages-2-s) node `to` to stage
            // (stages-1-s) node `from`.
            let new_stage = self.stages - 2 - s;
            rev.add_arc(new_stage, to, from);
        }
        rev
    }

    /// Extracts the sub-digraph induced by the stage interval
    /// `lo ..= hi` (the paper's `(G)_{i,j}`) as a standalone MI-digraph with
    /// `hi - lo + 1` stages.
    pub fn slice(&self, lo: usize, hi: usize) -> MiDigraph {
        assert!(lo <= hi && hi < self.stages, "invalid stage interval");
        let mut out = MiDigraph::new(hi - lo + 1, self.width);
        for s in lo..hi {
            for v in 0..self.width as u32 {
                for &c in self.children(s, v) {
                    out.add_arc(s - lo, v, c);
                }
            }
        }
        out
    }

    /// Relabels the nodes of every stage according to `mapping`
    /// (`mapping[stage][old_index] = new_index`) and returns the relabelled
    /// digraph. Panics unless each per-stage map is a bijection.
    pub fn relabel(&self, mapping: &[Vec<u32>]) -> MiDigraph {
        assert_eq!(mapping.len(), self.stages, "one map per stage required");
        for m in mapping {
            assert_eq!(m.len(), self.width, "each map must cover the stage");
            let mut seen = vec![false; self.width];
            for &t in m {
                assert!(
                    (t as usize) < self.width && !seen[t as usize],
                    "not a bijection"
                );
                seen[t as usize] = true;
            }
        }
        let mut out = MiDigraph::new(self.stages, self.width);
        for (s, from, to) in self.arcs() {
            out.add_arc(s, mapping[s][from as usize], mapping[s + 1][to as usize]);
        }
        out
    }

    /// Sorts every adjacency list; after normalization, two digraphs that
    /// contain the same arcs compare equal with `==` regardless of insertion
    /// order.
    pub fn normalize(&mut self) {
        for stage in &mut self.fwd {
            for kids in stage {
                kids.sort_unstable();
            }
        }
        for stage in &mut self.bwd {
            for parents in stage {
                parents.sort_unstable();
            }
        }
    }

    /// Returns a normalized copy (see [`MiDigraph::normalize`]).
    pub fn normalized(&self) -> MiDigraph {
        let mut c = self.clone();
        c.normalize();
        c
    }

    /// Structural equality up to arc order.
    pub fn same_arcs(&self, other: &MiDigraph) -> bool {
        self.stages == other.stages
            && self.width == other.width
            && self.normalized() == other.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny 3-stage, width-4 butterfly-like graph used by several tests.
    fn sample() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        // stage 0 -> 1: node v -> {v, v ^ 2}
        for v in 0..4u32 {
            g.add_arc(0, v, v);
            g.add_arc(0, v, v ^ 2);
        }
        // stage 1 -> 2: node v -> {v, v ^ 1}
        for v in 0..4u32 {
            g.add_arc(1, v, v);
            g.add_arc(1, v, v ^ 1);
        }
        g
    }

    #[test]
    fn construction_counts_nodes_and_arcs() {
        let g = sample();
        assert_eq!(g.stages(), 3);
        assert_eq!(g.width(), 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.arc_count(), 16);
    }

    #[test]
    fn adjacency_is_recorded_in_both_directions() {
        let g = sample();
        assert_eq!(g.children(0, 1), &[1, 3]);
        let mut parents = g.parents(1, 3).to_vec();
        parents.sort_unstable();
        assert_eq!(parents, vec![1, 3]);
        assert!(g.children(2, 0).is_empty(), "last stage has no children");
        assert!(g.parents(0, 0).is_empty(), "first stage has no parents");
    }

    #[test]
    fn degrees_and_properness() {
        let g = sample();
        assert!(g.is_proper());
        let mut h = MiDigraph::new(3, 4);
        h.add_arc(0, 0, 0);
        assert!(!h.is_proper());
    }

    #[test]
    fn parallel_arcs_are_representable_and_detected() {
        let mut g = MiDigraph::new(2, 2);
        g.add_arc(0, 0, 1);
        g.add_arc(0, 0, 1);
        g.add_arc(0, 1, 0);
        g.add_arc(0, 1, 0);
        assert!(g.has_parallel_arcs());
        assert!(g.is_proper(), "degree-wise the graph is still 2-regular");
        assert!(!sample().has_parallel_arcs());
    }

    #[test]
    fn reverse_flips_arcs_and_stage_order() {
        let g = sample();
        let r = g.reverse();
        assert_eq!(r.stages(), 3);
        assert_eq!(r.arc_count(), g.arc_count());
        // Arc (0, v) -> (1, v^2) becomes (1, v^2) -> (2, v) in the reverse.
        for v in 0..4u32 {
            assert!(r.children(1, v ^ 2).contains(&v));
        }
        // Double reversal returns the original graph.
        assert!(g.same_arcs(&r.reverse()));
    }

    #[test]
    fn slice_extracts_the_requested_interval() {
        let g = sample();
        let s = g.slice(1, 2);
        assert_eq!(s.stages(), 2);
        assert_eq!(s.arc_count(), 8);
        assert_eq!(s.children(0, 2), &[2, 3]);
        let single = g.slice(0, 0);
        assert_eq!(single.stages(), 1);
        assert_eq!(single.arc_count(), 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = sample();
        // Swap nodes 0 and 1 in stage 1 only.
        let mapping = vec![vec![0, 1, 2, 3], vec![1, 0, 2, 3], vec![0, 1, 2, 3]];
        let h = g.relabel(&mapping);
        assert_eq!(h.arc_count(), g.arc_count());
        // The arc (0,0) -> (1,0) must now point at (1,1).
        assert!(h.children(0, 0).contains(&1));
        // Relabelling back with the same (involutive) mapping restores g.
        assert!(h.relabel(&mapping).same_arcs(&g));
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn relabel_rejects_non_bijections() {
        let g = sample();
        let bad = vec![vec![0, 0, 2, 3], vec![0, 1, 2, 3], vec![0, 1, 2, 3]];
        let _ = g.relabel(&bad);
    }

    #[test]
    fn same_arcs_ignores_insertion_order() {
        let mut a = MiDigraph::new(2, 2);
        a.add_arc(0, 0, 0);
        a.add_arc(0, 0, 1);
        let mut b = MiDigraph::new(2, 2);
        b.add_arc(0, 0, 1);
        b.add_arc(0, 0, 0);
        assert!(a.same_arcs(&b));
        assert_ne!(a, b, "raw equality is order-sensitive by design");
    }

    #[test]
    fn nodes_iterator_covers_every_node() {
        let g = sample();
        assert_eq!(g.nodes().count(), 12);
        assert_eq!(g.nodes().next(), Some(NodeId::new(0, 0)));
    }

    #[test]
    #[should_panic(expected = "no successor stage")]
    fn adding_arc_from_last_stage_panics() {
        let mut g = MiDigraph::new(2, 2);
        g.add_arc(1, 0, 0);
    }
}
