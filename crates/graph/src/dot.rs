//! Graphviz (DOT) export of MI-digraphs.
//!
//! Used by the `figure_gallery` example to regenerate the paper's figures
//! (Fig. 1, Fig. 2, Fig. 4, Fig. 5) as render-ready DOT files. Nodes are laid
//! out stage by stage (one `rank=same` cluster per stage) and can carry the
//! paper's binary-tuple labels.

use crate::digraph::MiDigraph;
use std::fmt::Write as _;

/// Options controlling DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph <name> { … }` header.
    pub name: String,
    /// When `true`, node labels are binary tuples `(x_{w-1},…,x_1)` of the
    /// given width; otherwise decimal indices are used.
    pub binary_labels: Option<usize>,
    /// Draw arcs without arrowheads (the paper omits directions in figures
    /// because all arcs run left to right).
    pub undirected_style: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "MI".to_string(),
            binary_labels: None,
            undirected_style: true,
        }
    }
}

/// Renders an MI-digraph to DOT.
pub fn to_dot(g: &MiDigraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", opts.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    if opts.undirected_style {
        let _ = writeln!(out, "  edge [arrowhead=none];");
    }
    for s in 0..g.stages() {
        let _ = writeln!(out, "  subgraph cluster_stage_{s} {{");
        let _ = writeln!(out, "    label=\"stage {}\";", s + 1);
        let _ = writeln!(out, "    rank=same;");
        for v in 0..g.width() as u32 {
            let label = match opts.binary_labels {
                Some(width) => format_binary(v as u64, width),
                None => v.to_string(),
            };
            let _ = writeln!(out, "    s{s}_n{v} [label=\"{label}\"];");
        }
        let _ = writeln!(out, "  }}");
    }
    for (s, from, to) in g.arcs() {
        let _ = writeln!(out, "  s{s}_n{from} -> s{}_n{to};", s + 1);
    }
    let _ = writeln!(out, "}}");
    out
}

fn format_binary(x: u64, width: usize) -> String {
    let mut s = String::with_capacity(width + 2);
    s.push('(');
    for k in (0..width).rev() {
        s.push(if (x >> k) & 1 == 1 { '1' } else { '0' });
        if k > 0 {
            s.push(',');
        }
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MiDigraph {
        let mut g = MiDigraph::new(2, 2);
        g.add_arc(0, 0, 0);
        g.add_arc(0, 0, 1);
        g.add_arc(0, 1, 0);
        g.add_arc(0, 1, 1);
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_arcs() {
        let g = tiny();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph MI {"));
        for s in 0..2 {
            for v in 0..2 {
                assert!(dot.contains(&format!("s{s}_n{v} ")));
            }
        }
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.contains("arrowhead=none"));
    }

    #[test]
    fn binary_labels_render_paper_tuples() {
        let g = tiny();
        let opts = DotOptions {
            binary_labels: Some(1),
            undirected_style: false,
            name: "Fig1".into(),
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("digraph Fig1 {"));
        assert!(dot.contains("label=\"(0)\""));
        assert!(dot.contains("label=\"(1)\""));
        assert!(!dot.contains("arrowhead=none"));
    }

    #[test]
    fn format_binary_pads_to_width() {
        assert_eq!(format_binary(0b01, 3), "(0,0,1)");
        assert_eq!(format_binary(0b111, 3), "(1,1,1)");
    }
}
