//! Connected components of stage intervals `(G)_{i,j}`.
//!
//! The paper's `P(i,j)` property says that the sub-digraph `(G)_{i,j}`
//! (stages `i` through `j`, undirected) has exactly `2^{n-1-(j-i)}`
//! connected components. `P(1,*)` and `P(*,n)` quantify this over all
//! prefixes / suffixes. This module provides:
//!
//! * [`component_count_range`] / [`component_ids_range`] — components of an
//!   arbitrary interval, from scratch;
//! * [`prefix_sweep`] / [`suffix_sweep`] — *incremental* computations of all
//!   prefixes `(G)_{1,j}` (resp. suffixes `(G)_{i,n}`) in a single pass,
//!   which is what the `P(1,*)`/`P(*,n)` checkers and the constructive
//!   Baseline isomorphism use.
//!
//! All stage indices here are 0-based.

use crate::digraph::MiDigraph;
use crate::union_find::UnionFind;

/// Components of one stage interval.
#[derive(Debug, Clone)]
pub struct RangeComponents {
    /// First stage of the interval (0-based, inclusive).
    pub lo: usize,
    /// Last stage of the interval (0-based, inclusive).
    pub hi: usize,
    /// Number of connected components of the undirected subgraph.
    pub count: usize,
    /// `ids[s - lo][v]` = component id of node `v` of stage `s`; ids are
    /// compact (`0 .. count`) and numbered by first appearance scanning
    /// stages then node indices.
    pub ids: Vec<Vec<u32>>,
}

impl RangeComponents {
    /// Component id of node `v` of (absolute) stage `s`.
    pub fn id(&self, s: usize, v: u32) -> u32 {
        self.ids[s - self.lo][v as usize]
    }

    /// The members of every component, as `(stage, node)` pairs grouped by
    /// component id.
    pub fn members(&self) -> Vec<Vec<(usize, u32)>> {
        let mut out = vec![Vec::new(); self.count];
        for (off, stage_ids) in self.ids.iter().enumerate() {
            for (v, &c) in stage_ids.iter().enumerate() {
                out[c as usize].push((self.lo + off, v as u32));
            }
        }
        out
    }

    /// How many nodes of (absolute) stage `s` each component contains.
    ///
    /// Lemma 2 of the paper shows that for Banyan graphs built with
    /// independent connections every component of `(G)_{j,n}` intersects
    /// every stage in the same number of nodes; this accessor is what the
    /// corresponding tests inspect.
    pub fn stage_intersection_sizes(&self, s: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.ids[s - self.lo] {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Number of connected components of `(G)_{lo,hi}` (undirected).
pub fn component_count_range(g: &MiDigraph, lo: usize, hi: usize) -> usize {
    component_ids_range(g, lo, hi).count
}

/// Connected components of `(G)_{lo,hi}` (undirected), with per-node ids.
pub fn component_ids_range(g: &MiDigraph, lo: usize, hi: usize) -> RangeComponents {
    assert!(lo <= hi && hi < g.stages(), "invalid stage interval");
    let w = g.width();
    let span = hi - lo + 1;
    let mut uf = UnionFind::new(span * w);
    let idx = |s: usize, v: u32| ((s - lo) * w + v as usize) as u32;
    for s in lo..hi {
        for v in 0..w as u32 {
            for &c in g.children(s, v) {
                uf.union(idx(s, v), idx(s + 1, c));
            }
        }
    }
    let flat_ids = uf.component_ids();
    let ids: Vec<Vec<u32>> = (0..span)
        .map(|off| flat_ids[off * w..(off + 1) * w].to_vec())
        .collect();
    RangeComponents {
        lo,
        hi,
        count: uf.component_count(),
        ids,
    }
}

/// Result of an incremental prefix or suffix component sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// For a prefix sweep, `counts[j]` = number of components of
    /// `(G)_{0..=j}`; for a suffix sweep, `counts[i]` = number of components
    /// of `(G)_{i..=last}`.
    pub counts: Vec<usize>,
    /// For a prefix sweep, `stage_ids[j][v]` = component id of node `v` of
    /// stage `j` **within** `(G)_{0..=j}`; for a suffix sweep, within
    /// `(G)_{j..=last}`. Ids are compact per entry and numbered by first
    /// appearance over increasing node index.
    pub stage_ids: Vec<Vec<u32>>,
}

/// Per-stage component ids produced by a sweep (type alias used in public
/// signatures for readability).
pub type StageComponentIds = Vec<Vec<u32>>;

/// Incremental components of every prefix `(G)_{0..=j}`.
///
/// A single union-find is grown stage by stage; after stage `j` is absorbed
/// the structure is exactly the undirected `(G)_{0..=j}`, so both the global
/// component count and the component ids of stage-`j` nodes can be read off.
/// Total cost is `O(E α(V))` for **all** prefixes together.
pub fn prefix_sweep(g: &MiDigraph) -> SweepResult {
    let w = g.width();
    let n = g.stages();
    let mut uf = UnionFind::new(n * w);
    let idx = |s: usize, v: u32| (s * w + v as usize) as u32;
    let mut counts = Vec::with_capacity(n);
    let mut stage_ids = Vec::with_capacity(n);
    let mut merges = 0usize;
    for j in 0..n {
        if j > 0 {
            for v in 0..w as u32 {
                for &c in g.children(j - 1, v) {
                    if uf.union(idx(j - 1, v), idx(j, c)) {
                        merges += 1;
                    }
                }
            }
        }
        let active_nodes = (j + 1) * w;
        counts.push(active_nodes - merges);
        stage_ids.push(compact_stage_ids(&mut uf, j, w, idx));
    }
    SweepResult { counts, stage_ids }
}

/// Incremental components of every suffix `(G)_{i..=last}`.
pub fn suffix_sweep(g: &MiDigraph) -> SweepResult {
    let w = g.width();
    let n = g.stages();
    let mut uf = UnionFind::new(n * w);
    let idx = |s: usize, v: u32| (s * w + v as usize) as u32;
    let mut counts = vec![0usize; n];
    let mut stage_ids = vec![Vec::new(); n];
    let mut merges = 0usize;
    for i in (0..n).rev() {
        if i + 1 < n {
            for v in 0..w as u32 {
                for &c in g.children(i, v) {
                    if uf.union(idx(i, v), idx(i + 1, c)) {
                        merges += 1;
                    }
                }
            }
        }
        let active_nodes = (n - i) * w;
        counts[i] = active_nodes - merges;
        stage_ids[i] = compact_stage_ids(&mut uf, i, w, idx);
    }
    SweepResult { counts, stage_ids }
}

fn compact_stage_ids<F: Fn(usize, u32) -> u32>(
    uf: &mut UnionFind,
    stage: usize,
    width: usize,
    idx: F,
) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0u32;
    let mut out = Vec::with_capacity(width);
    for v in 0..width as u32 {
        let root = uf.find(idx(stage, v));
        let id = *map.entry(root).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3-stage, width-4 Baseline MI-digraph built by hand:
    /// stage 0 -> 1: v -> { v>>1, (v>>1) | 2 } ; stage 1 -> 2 within halves.
    fn baseline8() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            g.add_arc(0, v, v >> 1);
            g.add_arc(0, v, (v >> 1) | 2);
        }
        for v in 0..4u32 {
            let high = v & 2;
            let low = v & 1;
            let _ = low;
            g.add_arc(1, v, high);
            g.add_arc(1, v, high | 1);
        }
        g
    }

    #[test]
    fn whole_graph_is_connected() {
        let g = baseline8();
        assert_eq!(component_count_range(&g, 0, 2), 1);
    }

    #[test]
    fn single_stage_has_one_component_per_node() {
        let g = baseline8();
        assert_eq!(component_count_range(&g, 1, 1), 4);
        assert_eq!(component_count_range(&g, 2, 2), 4);
    }

    #[test]
    fn suffix_interval_splits_into_halves() {
        let g = baseline8();
        let rc = component_ids_range(&g, 1, 2);
        assert_eq!(rc.count, 2, "(G)_{{2,3}} of the Baseline has 2 components");
        // Components are the top half {0,1} and bottom half {2,3} in both stages.
        assert_eq!(rc.id(1, 0), rc.id(1, 1));
        assert_eq!(rc.id(2, 0), rc.id(2, 1));
        assert_eq!(rc.id(1, 0), rc.id(2, 0));
        assert_ne!(rc.id(1, 0), rc.id(1, 2));
        let sizes = rc.stage_intersection_sizes(1);
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn prefix_interval_pairs_up_nodes() {
        let g = baseline8();
        let rc = component_ids_range(&g, 0, 1);
        assert_eq!(rc.count, 2);
        // Stage-0 nodes 0 and 1 share both children (0 and 2), so they are in
        // the same prefix component; similarly 2 and 3.
        assert_eq!(rc.id(0, 0), rc.id(0, 1));
        assert_eq!(rc.id(0, 2), rc.id(0, 3));
        assert_ne!(rc.id(0, 0), rc.id(0, 2));
    }

    #[test]
    fn prefix_sweep_matches_from_scratch_counts() {
        let g = baseline8();
        let sweep = prefix_sweep(&g);
        for j in 0..3 {
            assert_eq!(
                sweep.counts[j],
                component_count_range(&g, 0, j),
                "prefix 0..={j}"
            );
        }
        // P(1,*) for the Baseline: counts must be 2^{n-1-j} = 4, 2, 1.
        assert_eq!(sweep.counts, vec![4, 2, 1]);
    }

    #[test]
    fn suffix_sweep_matches_from_scratch_counts() {
        let g = baseline8();
        let sweep = suffix_sweep(&g);
        for i in 0..3 {
            assert_eq!(
                sweep.counts[i],
                component_count_range(&g, i, 2),
                "suffix {i}..=2"
            );
        }
        assert_eq!(sweep.counts, vec![1, 2, 4]);
    }

    #[test]
    fn sweep_stage_ids_agree_with_range_ids_up_to_renaming() {
        let g = baseline8();
        let sweep = suffix_sweep(&g);
        for i in 0..3 {
            let rc = component_ids_range(&g, i, 2);
            let sweep_ids = &sweep.stage_ids[i];
            // Same partition of stage-i nodes, possibly different id names.
            for a in 0..4 {
                for b in 0..4 {
                    let same_in_sweep = sweep_ids[a] == sweep_ids[b];
                    let same_in_range = rc.id(i, a as u32) == rc.id(i, b as u32);
                    assert_eq!(same_in_sweep, same_in_range);
                }
            }
        }
    }

    #[test]
    fn disconnected_stages_without_arcs_are_all_singletons() {
        let g = MiDigraph::new(4, 3);
        let sweep = prefix_sweep(&g);
        assert_eq!(sweep.counts, vec![3, 6, 9, 12]);
        let sweep = suffix_sweep(&g);
        assert_eq!(sweep.counts, vec![12, 9, 6, 3]);
    }

    #[test]
    fn members_partition_all_nodes() {
        let g = baseline8();
        let rc = component_ids_range(&g, 0, 2);
        let members = rc.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    #[should_panic(expected = "invalid stage interval")]
    fn invalid_interval_panics() {
        let g = baseline8();
        let _ = component_count_range(&g, 2, 1);
    }
}
