//! Stage-respecting isomorphism of MI-digraphs.
//!
//! *"Two digraphs are isomorphic if and only if there exists a bijection
//! from the nodes of the first digraph into the nodes of the second digraph,
//! which preserves the adjacency relationship"* (paper, §2). Because an
//! MI-digraph's stage of a node is determined by the digraph structure
//! itself (distance from the sources/sinks), any isomorphism of proper
//! MI-digraphs maps stage `i` onto stage `i`; we therefore represent
//! isomorphisms as **per-stage bijections** ([`StageMapping`]).
//!
//! Two tools are provided:
//!
//! * [`verify_stage_mapping`] — checks that a given mapping is a genuine
//!   isomorphism (used to validate the certificates produced by
//!   `min-core::baseline_iso` and to cross-check compositions);
//! * [`find_isomorphism`] — an exact backtracking search with colour
//!   refinement pruning. It is exponential in the worst case and intended
//!   for *small* instances: cross-validating the constructive algorithm and
//!   certifying that counterexample networks are **not** isomorphic.

use crate::digraph::MiDigraph;
use crate::refine::{color_refinement, refinement_compatible};

/// A stage-respecting node bijection: `mapping[stage][v]` is the image in
/// the second digraph of node `v` of `stage` in the first digraph.
pub type StageMapping = Vec<Vec<u32>>;

/// Outcome of [`find_isomorphism`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsoSearchOutcome {
    /// An isomorphism was found.
    Found(StageMapping),
    /// The digraphs are definitely not isomorphic (exhaustive search).
    NotIsomorphic,
    /// The search exceeded its node budget before reaching a conclusion.
    Aborted,
}

impl IsoSearchOutcome {
    /// Returns the mapping if one was found.
    pub fn mapping(&self) -> Option<&StageMapping> {
        match self {
            IsoSearchOutcome::Found(m) => Some(m),
            _ => None,
        }
    }

    /// `true` iff the outcome proves isomorphism.
    pub fn is_isomorphic(&self) -> bool {
        matches!(self, IsoSearchOutcome::Found(_))
    }
}

/// Number of arcs from `a` to `b` in stage `s -> s+1` (parallel arcs count).
fn arc_multiplicity(g: &MiDigraph, s: usize, a: u32, b: u32) -> usize {
    g.children(s, a).iter().filter(|&&c| c == b).count()
}

/// Verifies that `mapping` is a stage-respecting isomorphism `g -> h`.
///
/// Checks shape, per-stage bijectivity and exact arc multiplicities in both
/// directions.
pub fn verify_stage_mapping(g: &MiDigraph, h: &MiDigraph, mapping: &StageMapping) -> bool {
    if g.stages() != h.stages() || g.width() != h.width() {
        return false;
    }
    if mapping.len() != g.stages() {
        return false;
    }
    let w = g.width();
    for stage_map in mapping {
        if stage_map.len() != w {
            return false;
        }
        let mut seen = vec![false; w];
        for &t in stage_map {
            if (t as usize) >= w || seen[t as usize] {
                return false;
            }
            seen[t as usize] = true;
        }
    }
    // Arc multiplicities must be preserved exactly (this also covers the
    // reverse direction because both graphs have finitely many arcs and the
    // map is a bijection: equality of multiplicities for all pairs implies
    // equality of arc counts).
    for s in 0..g.stages().saturating_sub(1) {
        for v in 0..w as u32 {
            for &c in g.children(s, v) {
                let gm = arc_multiplicity(g, s, v, c);
                let hm = arc_multiplicity(h, s, mapping[s][v as usize], mapping[s + 1][c as usize]);
                if gm != hm {
                    return false;
                }
            }
        }
        // Also ensure h has no extra arcs in this stage.
        let g_arcs: usize = (0..w as u32).map(|v| g.children(s, v).len()).sum();
        let h_arcs: usize = (0..w as u32).map(|v| h.children(s, v).len()).sum();
        if g_arcs != h_arcs {
            return false;
        }
    }
    true
}

/// Composes two stage mappings: `second ∘ first` (apply `first`, then
/// `second`). Used to turn two "to-Baseline" certificates into a direct
/// network-to-network isomorphism.
pub fn compose_mappings(first: &StageMapping, second: &StageMapping) -> StageMapping {
    assert_eq!(first.len(), second.len(), "stage counts must match");
    first
        .iter()
        .zip(second.iter())
        .map(|(f, s)| f.iter().map(|&v| s[v as usize]).collect())
        .collect()
}

/// Inverts a stage mapping.
pub fn invert_mapping(mapping: &StageMapping) -> StageMapping {
    mapping
        .iter()
        .map(|m| {
            let mut inv = vec![0u32; m.len()];
            for (v, &t) in m.iter().enumerate() {
                inv[t as usize] = v as u32;
            }
            inv
        })
        .collect()
}

/// Exact stage-respecting isomorphism search.
///
/// `node_budget` bounds the number of search-tree nodes explored; when the
/// budget is exhausted the outcome is [`IsoSearchOutcome::Aborted`]. With
/// the default pruning the search is practical for widths up to ~64.
pub fn find_isomorphism(g: &MiDigraph, h: &MiDigraph, node_budget: u64) -> IsoSearchOutcome {
    if g.stages() != h.stages() || g.width() != h.width() {
        return IsoSearchOutcome::NotIsomorphic;
    }
    if g.arc_count() != h.arc_count() {
        return IsoSearchOutcome::NotIsomorphic;
    }
    if !refinement_compatible(g, h) {
        return IsoSearchOutcome::NotIsomorphic;
    }
    let gc = color_refinement(g);
    let hc = color_refinement(h);

    let stages = g.stages();
    let w = g.width();
    let mut mapping: StageMapping = vec![vec![u32::MAX; w]; stages];
    let mut used: Vec<Vec<bool>> = vec![vec![false; w]; stages];
    let mut visited: u64 = 0;

    // Order nodes stage by stage so that when a node is assigned, all its
    // parents are already assigned and the arcs to them can be checked.
    // The search state is genuinely nine-dimensional; bundling it into a
    // struct would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        g: &MiDigraph,
        h: &MiDigraph,
        gc: &crate::refine::Coloring,
        hc: &crate::refine::Coloring,
        mapping: &mut StageMapping,
        used: &mut [Vec<bool>],
        pos: usize,
        visited: &mut u64,
        budget: u64,
    ) -> Option<bool> {
        let w = g.width();
        let total = g.stages() * w;
        if pos == total {
            return Some(true);
        }
        *visited += 1;
        if *visited > budget {
            return None; // aborted
        }
        let s = pos / w;
        let v = (pos % w) as u32;
        // Candidate images: same stage, unused, same out/in degree, and
        // consistent with already-assigned parents.
        for x in 0..w as u32 {
            if used[s][x as usize] {
                continue;
            }
            if g.out_degree(s, v) != h.out_degree(s, x) || g.in_degree(s, v) != h.in_degree(s, x) {
                continue;
            }
            // Colour refinement classes must agree class-size-wise; we use
            // the per-graph colourings only as a heuristic filter on the
            // degree signature (colour ids are not directly comparable
            // across graphs, so compare class sizes instead).
            let g_class = gc.colors[s]
                .iter()
                .filter(|&&c| c == gc.colors[s][v as usize])
                .count();
            let h_class = hc.colors[s]
                .iter()
                .filter(|&&c| c == hc.colors[s][x as usize])
                .count();
            if g_class != h_class {
                continue;
            }
            if s > 0 {
                let ok = g.parents(s, v).iter().all(|&p| {
                    let p_img = mapping[s - 1][p as usize];
                    arc_multiplicity(g, s - 1, p, v) == arc_multiplicity(h, s - 1, p_img, x)
                });
                if !ok {
                    continue;
                }
            }
            mapping[s][v as usize] = x;
            used[s][x as usize] = true;
            match backtrack(g, h, gc, hc, mapping, used, pos + 1, visited, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            mapping[s][v as usize] = u32::MAX;
            used[s][x as usize] = false;
        }
        Some(false)
    }

    match backtrack(
        g,
        h,
        &gc,
        &hc,
        &mut mapping,
        &mut used,
        0,
        &mut visited,
        node_budget,
    ) {
        Some(true) => {
            debug_assert!(verify_stage_mapping(g, h, &mapping));
            IsoSearchOutcome::Found(mapping)
        }
        Some(false) => IsoSearchOutcome::NotIsomorphic,
        None => IsoSearchOutcome::Aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline8() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            g.add_arc(0, v, v >> 1);
            g.add_arc(0, v, (v >> 1) | 2);
        }
        for v in 0..4u32 {
            let high = v & 2;
            g.add_arc(1, v, high);
            g.add_arc(1, v, high | 1);
        }
        g
    }

    /// The width-4 "Omega-like" digraph: stage connection = perfect shuffle
    /// based wiring; known to be isomorphic to the Baseline.
    fn omega8() -> MiDigraph {
        let mut g = MiDigraph::new(3, 4);
        // Children of cell x under a shuffle inter-stage connection on
        // 8 links: child = ((2x + b) * 2 + carry) truncated — computed
        // directly: link = 2x+b, shuffled = circular-left-shift_3(link),
        // child cell = shuffled >> 1.
        let shuffle3 = |l: u32| ((l << 1) | (l >> 2)) & 0b111;
        for s in 0..2 {
            for x in 0..4u32 {
                for b in 0..2u32 {
                    let link = 2 * x + b;
                    let child = shuffle3(link) >> 1;
                    g.add_arc(s, x, child);
                }
            }
        }
        g
    }

    #[test]
    fn identity_mapping_verifies_on_equal_graphs() {
        let g = baseline8();
        let id: StageMapping = (0..3).map(|_| (0..4u32).collect()).collect();
        assert!(verify_stage_mapping(&g, &g, &id));
    }

    #[test]
    fn wrong_shape_mappings_are_rejected() {
        let g = baseline8();
        let h = baseline8();
        assert!(!verify_stage_mapping(&g, &h, &vec![vec![0, 1, 2, 3]; 2]));
        assert!(!verify_stage_mapping(&g, &h, &vec![vec![0, 1, 2]; 3]));
        assert!(!verify_stage_mapping(&g, &h, &vec![vec![0, 0, 2, 3]; 3]));
    }

    #[test]
    fn relabelled_copy_is_found_isomorphic() {
        let g = baseline8();
        let mapping = vec![vec![3, 1, 0, 2], vec![0, 2, 1, 3], vec![2, 3, 0, 1]];
        let h = g.relabel(&mapping);
        assert!(verify_stage_mapping(&g, &h, &mapping));
        let outcome = find_isomorphism(&g, &h, 1_000_000);
        assert!(outcome.is_isomorphic());
        let found = outcome.mapping().unwrap();
        assert!(verify_stage_mapping(&g, &h, found));
    }

    #[test]
    fn omega_and_baseline_width4_are_isomorphic() {
        let g = baseline8();
        let h = omega8();
        let outcome = find_isomorphism(&g, &h, 1_000_000);
        assert!(outcome.is_isomorphic(), "classical equivalence at N=8");
    }

    #[test]
    fn parallel_arc_graph_is_not_isomorphic_to_baseline() {
        let g = baseline8();
        let mut h = MiDigraph::new(3, 4);
        for v in 0..4u32 {
            h.add_arc(0, v, v);
            h.add_arc(0, v, v);
            h.add_arc(1, v, v);
            h.add_arc(1, v, v ^ 1);
        }
        let outcome = find_isomorphism(&g, &h, 1_000_000);
        assert_eq!(outcome, IsoSearchOutcome::NotIsomorphic);
    }

    #[test]
    fn arc_count_mismatch_short_circuits() {
        let g = baseline8();
        let mut h = baseline8();
        h.add_arc(0, 0, 0);
        assert_eq!(
            find_isomorphism(&g, &h, 10),
            IsoSearchOutcome::NotIsomorphic
        );
    }

    #[test]
    fn tiny_budget_aborts() {
        let g = baseline8();
        let mapping = vec![vec![3, 1, 0, 2], vec![0, 2, 1, 3], vec![2, 3, 0, 1]];
        let h = g.relabel(&mapping);
        assert_eq!(find_isomorphism(&g, &h, 1), IsoSearchOutcome::Aborted);
    }

    #[test]
    fn compose_and_invert_mappings() {
        let g = baseline8();
        let m1 = vec![vec![1, 0, 3, 2], vec![2, 3, 0, 1], vec![0, 1, 2, 3]];
        let h = g.relabel(&m1);
        let m2 = vec![vec![0, 2, 1, 3], vec![3, 1, 2, 0], vec![1, 0, 3, 2]];
        let k = h.relabel(&m2);
        let composed = compose_mappings(&m1, &m2);
        assert!(verify_stage_mapping(&g, &k, &composed));
        let inv = invert_mapping(&composed);
        assert!(verify_stage_mapping(&k, &g, &inv));
    }
}
