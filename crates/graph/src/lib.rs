//! # `min-graph` — the multistage interconnection digraph engine
//!
//! Section 2 of Bermond & Fourneau models a multistage interconnection
//! network as an **MI-digraph**: a digraph whose nodes are partitioned into
//! `n` ordered stages, with arcs only from stage `i` to stage `i+1`, every
//! interior node of in- and out-degree 2, and `N/2 = 2^{n-1}` nodes per
//! stage. Two networks are *topologically equivalent* iff their MI-digraphs
//! are isomorphic (stage structure included).
//!
//! This crate is the graph substrate for the whole workspace:
//!
//! * [`MiDigraph`] — the staged digraph itself (forward and backward
//!   adjacency, degree queries, regularity checks, reverse graph,
//!   sub-range views). It is deliberately more permissive than the paper's
//!   definition (arbitrary degrees, parallel arcs, any width) so that the
//!   degenerate objects the paper discusses — the Fig. 5 parallel-link
//!   stage, non-Banyan graphs, counterexamples — can be represented and
//!   *rejected by checkers* rather than being unrepresentable.
//! * [`components`] — connected components of the undirected underlying
//!   graph restricted to a stage interval `(G)_{i,j}`, including the
//!   incremental prefix/suffix sweeps used by the `P(1,*)` / `P(*,n)`
//!   property checkers and by the constructive Baseline isomorphism.
//! * [`paths`] — path counting between stages (the Banyan property is a
//!   statement about path counts).
//! * [`iso`] — stage-respecting isomorphism: mapping verification, colour
//!   refinement, and an exact backtracking search used to certify
//!   *non*-equivalence of counterexamples.
//! * [`dot`] / [`serialize`] — DOT export for figure regeneration and a
//!   compact serde-friendly exchange format.
//!
//! Stage indices are 0-based throughout the code; the paper's stage `i`
//! (1-based) is stage `i-1` here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod digraph;
pub mod dot;
pub mod iso;
pub mod paths;
pub mod refine;
pub mod serialize;
pub mod union_find;

pub use components::{
    component_count_range, component_ids_range, prefix_sweep, suffix_sweep, RangeComponents,
    StageComponentIds, SweepResult,
};
pub use digraph::{MiDigraph, NodeId};
pub use iso::{find_isomorphism, verify_stage_mapping, IsoSearchOutcome, StageMapping};
pub use paths::{is_banyan, path_counts_from, reachable_per_stage};
pub use union_find::UnionFind;
