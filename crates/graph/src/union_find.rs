//! Disjoint-set forest (union-find) with path compression and union by rank.
//!
//! The `P(i,j)` properties of the paper are statements about the number of
//! connected components of the undirected underlying graph of `(G)_{i,j}`;
//! all component computations in this workspace are built on this structure.

/// A disjoint-set forest over the elements `0 .. len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "too many elements for u32 ids");
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Returns, for every element, a compact component id in
    /// `0 .. component_count()`, numbered in order of first appearance.
    pub fn component_ids(&mut self) -> Vec<u32> {
        let mut ids = vec![u32::MAX; self.len()];
        let mut next = 0u32;
        let mut root_to_id = std::collections::HashMap::new();
        for x in 0..self.len() as u32 {
            let r = self.find(x);
            let id = *root_to_id.entry(r).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            ids[x as usize] = id;
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disconnected() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 3));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn component_ids_are_compact_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(3, 5);
        let ids = uf.component_ids();
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[3], ids[5]);
        assert_ne!(ids[0], ids[3]);
        assert_eq!(
            *ids.iter().max().unwrap() as usize + 1,
            uf.component_count()
        );
        // ids are numbered in first-appearance order, so element 0 gets id 0.
        assert_eq!(ids[0], 0);
        assert_eq!(ids[1], 1);
    }

    #[test]
    fn long_chain_fully_connects() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n as u32 - 1));
    }

    #[test]
    fn empty_structure_is_fine() {
        let mut uf = UnionFind::new(0);
        assert_eq!(uf.component_count(), 0);
        assert!(uf.is_empty());
        assert!(uf.component_ids().is_empty());
    }
}
