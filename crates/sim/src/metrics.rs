//! Simulation metrics.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total cycles run so far (warm-up included; warm-up is excluded only
    /// from the latency statistics).
    pub measured_cycles: u64,
    /// Packets the traffic source wanted to inject over the whole run
    /// (warm-up included).
    pub offered: u64,
    /// Packets actually accepted into the fabric over the whole run.
    pub injected: u64,
    /// Packets delivered to their destination over the whole run.
    pub delivered: u64,
    /// Packets dropped because they lost an out-port arbitration in an
    /// unbuffered cell.
    pub dropped_arbitration: u64,
    /// Packets dropped because the downstream cell had no space (unbuffered
    /// mode only; buffered modes apply backpressure instead).
    pub dropped_backpressure: u64,
    /// Packets (or whole worms) lost to an injected fault: they hit a dead
    /// link, entered a dead switch, or were caught in one when it died.
    pub dropped_fault: u64,
    /// Injection attempts refused because every path from the source to the
    /// drawn destination was severed by active faults (the packet never
    /// entered the fabric; counted in `offered` but not in `injected`).
    pub unroutable_drops: u64,
    /// Packets delivered while at least one fault was active — the
    /// survivor count of a degraded fabric.
    pub delivered_despite_fault: u64,
    /// Per-stage fault exposure: `fault_exposure[s]` counts the events at
    /// stage `s` in which traffic met an active fault (a drop at a dead
    /// link or switch, or a stall at a degraded link). Empty when the run
    /// injected no faults.
    pub fault_exposure: Vec<u64>,
    /// Packets still inside the fabric when the run ended.
    pub in_flight_at_end: u64,
    /// Sum of the latencies (in cycles) of the packets delivered inside the
    /// measurement window.
    pub total_latency: u64,
    /// Largest single-packet latency observed inside the measurement window.
    pub max_latency: u64,
    /// Packets delivered to the wrong destination (must always be zero; kept
    /// as an audit counter).
    pub misrouted: u64,
    /// Flits ejected at the last stage (wormhole mode; zero in the
    /// packet-atomic modes).
    pub flits_delivered: u64,
    /// Flit-cycles in which a flit was ready to cross a stage link but could
    /// not move — it lost the per-port arbitration, found no free downstream
    /// lane for its head, or found the downstream lane full (wormhole mode).
    pub flit_stalls: u64,
    /// Occupied storage units (queued packets, or active lanes in wormhole
    /// mode) summed over every cycle — the numerator of the mean occupancy.
    pub lane_occupancy_sum: u64,
    /// Total storage units (queue slots, or lanes) summed over every cycle —
    /// the denominator of the mean occupancy.
    pub lane_slot_cycles: u64,
    /// Latency histogram: `latency_histogram[l]` is the number of measured
    /// packets delivered with a latency of exactly `l` cycles. Dense and
    /// exact: it grows to the largest observed latency, which is bounded by
    /// the configured run length, so memory is `O(cycles)` in the worst case
    /// (a congested FIFO run). Switch to a bucketed histogram if runs ever
    /// reach many millions of cycles.
    pub latency_histogram: Vec<u64>,
}

impl Metrics {
    /// Total packets dropped, summing every cause (arbitration losses,
    /// downstream backpressure, and fault losses).
    pub fn dropped(&self) -> u64 {
        self.dropped_arbitration + self.dropped_backpressure + self.dropped_fault
    }

    /// Delivered packets per port per cycle.
    ///
    /// Pass the number of output *terminals* (`N = 2 · cells`) to obtain the
    /// normalized throughput of the delta-network literature (a value in
    /// `[0, 1]`); passing the cell count yields the per-cell rate (in
    /// `[0, 2]`).
    pub fn normalized_throughput(&self, ports: usize) -> f64 {
        if self.measured_cycles == 0 || ports == 0 {
            return 0.0;
        }
        self.delivered as f64 / (self.measured_cycles as f64 * ports as f64)
    }

    /// Offered packets per port per cycle — the x-axis of a saturation /
    /// stability curve (plot [`Metrics::normalized_throughput`] against it;
    /// the two diverge past the saturation point).
    pub fn offered_rate(&self, ports: usize) -> f64 {
        if self.measured_cycles == 0 || ports == 0 {
            return 0.0;
        }
        self.offered as f64 / (self.measured_cycles as f64 * ports as f64)
    }

    /// Ejected flits per port per cycle (wormhole mode). Saturates towards
    /// the link capacity of one flit per cycle, so it measures how close the
    /// fabric runs to its physical bandwidth even when packet throughput is
    /// scaled down by the flit count.
    pub fn flit_throughput(&self, ports: usize) -> f64 {
        if self.measured_cycles == 0 || ports == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / (self.measured_cycles as f64 * ports as f64)
    }

    /// Mean fraction of storage units (queue slots, or wormhole lanes) that
    /// were occupied, averaged over the whole run. A saturation diagnostic:
    /// it approaches 1 when the fabric is congestion-bound.
    pub fn mean_lane_occupancy(&self) -> f64 {
        if self.lane_slot_cycles == 0 {
            0.0
        } else {
            self.lane_occupancy_sum as f64 / self.lane_slot_cycles as f64
        }
    }

    /// Fraction of offered packets that were accepted into the fabric.
    pub fn acceptance_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.injected as f64 / self.offered as f64
        }
    }

    /// Number of deliveries inside the measurement window (warm-up deliveries
    /// are excluded, matching `total_latency` and the histogram).
    pub fn measured_deliveries(&self) -> u64 {
        self.latency_histogram.iter().sum()
    }

    /// Mean latency of the packets delivered inside the measurement window,
    /// in cycles.
    pub fn mean_latency(&self) -> f64 {
        let measured = self.measured_deliveries();
        if measured == 0 {
            0.0
        } else {
            self.total_latency as f64 / measured as f64
        }
    }

    /// Records one delivered-packet latency, updating the running total, the
    /// maximum and the histogram together so the three statistics can never
    /// fall out of sync.
    pub fn record_latency(&mut self, latency: u64) {
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        let idx = latency as usize;
        if idx >= self.latency_histogram.len() {
            self.latency_histogram.resize(idx + 1, 0);
        }
        self.latency_histogram[idx] += 1;
    }

    /// Records one fault-exposure event at `stage` (a drop at a dead
    /// component or a stall at a degraded link), growing the per-stage
    /// vector on demand.
    pub fn record_fault_exposure(&mut self, stage: usize) {
        if stage >= self.fault_exposure.len() {
            self.fault_exposure.resize(stage + 1, 0);
        }
        self.fault_exposure[stage] += 1;
    }

    /// Total fault-exposure events across every stage.
    pub fn total_fault_exposure(&self) -> u64 {
        self.fault_exposure.iter().sum()
    }

    /// Latency at the given percentile (`p` in `[0, 100]`), in cycles,
    /// computed from the histogram: the smallest latency `l` such that at
    /// least `p`% of the measured packets were delivered within `l` cycles.
    /// Returns 0 when no latency was measured.
    pub fn percentile_latency(&self, p: f64) -> u64 {
        let total = self.measured_deliveries();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (latency, &count) in self.latency_histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return latency as u64;
            }
        }
        unreachable!("rank never exceeds the histogram total")
    }

    /// The 99th-percentile latency, in cycles.
    pub fn p99_latency(&self) -> u64 {
        self.percentile_latency(99.0)
    }

    /// Folds `other` into `self` as if the two runs' events had been
    /// recorded into one accumulator: counters and sums add (including
    /// `measured_cycles` and `in_flight_at_end`, so ratio metrics such as
    /// [`Metrics::normalized_throughput`] and
    /// [`Metrics::mean_lane_occupancy`] become replication averages),
    /// `max_latency` takes the maximum, and the per-stage exposure and
    /// latency histograms add element-wise. Merging is associative and
    /// commutative, and merging in any order equals sequential
    /// accumulation — which is what lets batched replications aggregate
    /// without per-replication re-aggregation.
    pub fn merge(&mut self, other: &Metrics) {
        self.measured_cycles += other.measured_cycles;
        self.offered += other.offered;
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.dropped_arbitration += other.dropped_arbitration;
        self.dropped_backpressure += other.dropped_backpressure;
        self.dropped_fault += other.dropped_fault;
        self.unroutable_drops += other.unroutable_drops;
        self.delivered_despite_fault += other.delivered_despite_fault;
        self.in_flight_at_end += other.in_flight_at_end;
        self.total_latency += other.total_latency;
        self.max_latency = self.max_latency.max(other.max_latency);
        self.misrouted += other.misrouted;
        self.flits_delivered += other.flits_delivered;
        self.flit_stalls += other.flit_stalls;
        self.lane_occupancy_sum += other.lane_occupancy_sum;
        self.lane_slot_cycles += other.lane_slot_cycles;
        if other.fault_exposure.len() > self.fault_exposure.len() {
            self.fault_exposure.resize(other.fault_exposure.len(), 0);
        }
        for (acc, &v) in self.fault_exposure.iter_mut().zip(&other.fault_exposure) {
            *acc += v;
        }
        if other.latency_histogram.len() > self.latency_histogram.len() {
            self.latency_histogram
                .resize(other.latency_histogram.len(), 0);
        }
        for (acc, &v) in self
            .latency_histogram
            .iter_mut()
            .zip(&other.latency_histogram)
        {
            *acc += v;
        }
    }

    /// Conservation audit: every injected packet is delivered, dropped or
    /// still in flight.
    pub fn conserved(&self) -> bool {
        self.injected == self.delivered + self.dropped() + self.in_flight_at_end
            || // unbuffered drops are counted against injection in the same cycle
            self.injected + self.dropped() >= self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_computed_correctly() {
        let mut m = Metrics {
            measured_cycles: 100,
            offered: 400,
            injected: 380,
            delivered: 350,
            dropped_arbitration: 15,
            dropped_backpressure: 5,
            in_flight_at_end: 10,
            ..Metrics::default()
        };
        for _ in 0..350 {
            m.record_latency(4);
        }
        assert_eq!(m.dropped(), 20);
        assert_eq!(m.measured_deliveries(), 350);
        assert_eq!(m.total_latency, 1_400);
        assert_eq!(m.max_latency, 4);
        assert!((m.normalized_throughput(8) - 350.0 / 800.0).abs() < 1e-12);
        assert!((m.offered_rate(8) - 400.0 / 800.0).abs() < 1e-12);
        assert!((m.acceptance_rate() - 0.95).abs() < 1e-12);
        assert!((m.mean_latency() - 4.0).abs() < 1e-12);
        assert!(m.conserved());
    }

    #[test]
    fn zero_division_is_guarded() {
        let m = Metrics::default();
        assert_eq!(m.normalized_throughput(8), 0.0);
        assert_eq!(m.offered_rate(8), 0.0);
        assert_eq!(m.flit_throughput(8), 0.0);
        assert_eq!(m.mean_lane_occupancy(), 0.0);
        assert_eq!(m.mean_latency(), 0.0);
        assert_eq!(m.acceptance_rate(), 1.0);
        assert_eq!(m.p99_latency(), 0);
    }

    #[test]
    fn flit_and_occupancy_accounting() {
        let m = Metrics {
            measured_cycles: 100,
            flits_delivered: 400,
            lane_occupancy_sum: 150,
            lane_slot_cycles: 600,
            ..Metrics::default()
        };
        assert!((m.flit_throughput(8) - 0.5).abs() < 1e-12);
        assert!((m.mean_lane_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_feed_the_drop_total_and_exposure_histogram() {
        let mut m = Metrics {
            dropped_arbitration: 3,
            dropped_backpressure: 2,
            dropped_fault: 5,
            unroutable_drops: 7,
            delivered_despite_fault: 11,
            ..Metrics::default()
        };
        assert_eq!(m.dropped(), 10);
        assert_eq!(m.total_fault_exposure(), 0);
        m.record_fault_exposure(2);
        m.record_fault_exposure(2);
        m.record_fault_exposure(0);
        assert_eq!(m.fault_exposure, vec![1, 0, 2]);
        assert_eq!(m.total_fault_exposure(), 3);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        // Record two runs' events into one accumulator...
        let mut sequential = Metrics::default();
        for latency in [3u64, 3, 7] {
            sequential.record_latency(latency);
        }
        sequential.record_fault_exposure(1);
        sequential.record_fault_exposure(3);
        sequential.measured_cycles = 300;
        sequential.offered = 40;
        sequential.injected = 30;
        sequential.delivered = 25;
        sequential.dropped_arbitration = 3;
        sequential.dropped_fault = 2;
        sequential.in_flight_at_end = 4;
        sequential.lane_occupancy_sum = 50;
        sequential.lane_slot_cycles = 600;

        // ...and the same events split across two metrics, then merged.
        let mut a = Metrics::default();
        a.record_latency(3);
        a.record_fault_exposure(1);
        a.measured_cycles = 100;
        a.offered = 15;
        a.injected = 12;
        a.delivered = 10;
        a.dropped_arbitration = 1;
        a.in_flight_at_end = 1;
        a.lane_occupancy_sum = 20;
        a.lane_slot_cycles = 200;
        let mut b = Metrics::default();
        b.record_latency(3);
        b.record_latency(7);
        b.record_fault_exposure(3);
        b.measured_cycles = 200;
        b.offered = 25;
        b.injected = 18;
        b.delivered = 15;
        b.dropped_arbitration = 2;
        b.dropped_fault = 2;
        b.in_flight_at_end = 3;
        b.lane_occupancy_sum = 30;
        b.lane_slot_cycles = 400;

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, sequential);
        // Commutative: merging the other way round gives the same result.
        let mut swapped = b.clone();
        swapped.merge(&a);
        assert_eq!(swapped, sequential);
        // The shorter histogram on the left still absorbs the longer right.
        assert_eq!(merged.max_latency, 7);
        assert_eq!(merged.fault_exposure, vec![0, 1, 0, 1]);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let mut m = Metrics::default();
        // 99 packets at 3 cycles, one straggler at 40.
        for _ in 0..99 {
            m.record_latency(3);
        }
        m.record_latency(40);
        assert_eq!(m.percentile_latency(50.0), 3);
        assert_eq!(m.p99_latency(), 3);
        assert_eq!(m.percentile_latency(100.0), 40);
        assert_eq!(m.latency_histogram[3], 99);
        assert_eq!(m.latency_histogram[40], 1);
    }
}
