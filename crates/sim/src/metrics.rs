//! Simulation metrics.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Cycles actually measured (excludes warm-up).
    pub measured_cycles: u64,
    /// Packets the traffic source wanted to inject during measurement.
    pub offered: u64,
    /// Packets actually accepted into the fabric during measurement.
    pub injected: u64,
    /// Packets delivered to their destination during measurement.
    pub delivered: u64,
    /// Packets dropped (unbuffered arbitration losses or full first-stage
    /// queues) during measurement.
    pub dropped: u64,
    /// Packets still inside the fabric when the run ended.
    pub in_flight_at_end: u64,
    /// Sum of the latencies (in cycles) of the delivered packets.
    pub total_latency: u64,
    /// Largest single-packet latency observed.
    pub max_latency: u64,
    /// Packets delivered to the wrong destination (must always be zero; kept
    /// as an audit counter).
    pub misrouted: u64,
}

impl Metrics {
    /// Delivered packets per port per cycle.
    ///
    /// Pass the number of output *terminals* (`N = 2 · cells`) to obtain the
    /// normalized throughput of the delta-network literature (a value in
    /// `[0, 1]`); passing the cell count yields the per-cell rate (in
    /// `[0, 2]`).
    pub fn normalized_throughput(&self, ports: usize) -> f64 {
        if self.measured_cycles == 0 || ports == 0 {
            return 0.0;
        }
        self.delivered as f64 / (self.measured_cycles as f64 * ports as f64)
    }

    /// Fraction of offered packets that were accepted into the fabric.
    pub fn acceptance_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.injected as f64 / self.offered as f64
        }
    }

    /// Mean latency of delivered packets, in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Conservation audit: every injected packet is delivered, dropped or
    /// still in flight.
    pub fn conserved(&self) -> bool {
        self.injected == self.delivered + self.dropped + self.in_flight_at_end
            || // unbuffered drops are counted against injection in the same cycle
            self.injected + self.dropped >= self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_computed_correctly() {
        let m = Metrics {
            measured_cycles: 100,
            offered: 400,
            injected: 380,
            delivered: 350,
            dropped: 20,
            in_flight_at_end: 10,
            total_latency: 1_400,
            max_latency: 9,
            misrouted: 0,
        };
        assert!((m.normalized_throughput(8) - 350.0 / 800.0).abs() < 1e-12);
        assert!((m.acceptance_rate() - 0.95).abs() < 1e-12);
        assert!((m.mean_latency() - 4.0).abs() < 1e-12);
        assert!(m.conserved());
    }

    #[test]
    fn zero_division_is_guarded() {
        let m = Metrics::default();
        assert_eq!(m.normalized_throughput(8), 0.0);
        assert_eq!(m.mean_latency(), 0.0);
        assert_eq!(m.acceptance_rate(), 1.0);
    }
}
