//! Packets.

use serde::{Deserialize, Serialize};

/// A fixed-size packet travelling through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotonic identifier (injection order).
    pub id: u64,
    /// Source first-stage cell.
    pub source: u32,
    /// Destination last-stage cell.
    pub destination: u32,
    /// Routing tag (one bit per inter-stage connection).
    pub tag: u32,
    /// Cycle at which the packet entered the fabric.
    pub injected_at: u64,
}

impl Packet {
    /// Port (0 = `f`, 1 = `g`) requested at connection `stage`.
    #[inline]
    pub fn port_at(&self, stage: usize) -> u8 {
        ((self.tag >> stage) & 1) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_extraction_follows_the_tag_bits() {
        let p = Packet {
            id: 0,
            source: 1,
            destination: 5,
            tag: 0b101,
            injected_at: 0,
        };
        assert_eq!(p.port_at(0), 1);
        assert_eq!(p.port_at(1), 0);
        assert_eq!(p.port_at(2), 1);
        assert_eq!(p.port_at(3), 0);
    }
}
