//! Packets and flits.

use serde::{Deserialize, Serialize};

/// A fixed-size packet travelling through the fabric.
///
/// In the packet-switched cores ([`crate::switch::UnbufferedCore`],
/// [`crate::switch::FifoCore`]) the packet is the atomic unit of transfer; in
/// [`crate::switch::WormholeCore`] it is split into [`Flit`]s and the packet
/// header travels with the lane bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotonic identifier (injection order).
    pub id: u64,
    /// Source first-stage cell.
    pub source: u32,
    /// Destination last-stage cell.
    pub destination: u32,
    /// Routing tag (one bit per inter-stage connection).
    pub tag: u32,
    /// Cycle at which the packet entered the fabric.
    pub injected_at: u64,
}

impl Packet {
    /// Port (0 = `f`, 1 = `g`) requested at connection `stage`.
    #[inline]
    pub fn port_at(&self, stage: usize) -> u8 {
        ((self.tag >> stage) & 1) as u8
    }

    /// The `seq`-th flit of this packet when split into `of` flits.
    #[inline]
    pub fn flit(&self, seq: u32, of: u32) -> Flit {
        Flit {
            packet_id: self.id,
            seq,
            of,
        }
    }
}

/// One flow-control unit (flit) of a packet in wormhole mode.
///
/// The head flit (`seq == 0`) carries the route — in this simulator the
/// routing tag lives in the [`Packet`] header stored with the lane that the
/// head allocated — and the tail flit (`seq == of - 1`) releases every lane
/// the worm holds as it drains through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Identifier of the packet this flit belongs to.
    pub packet_id: u64,
    /// Position of this flit within its packet (0-based).
    pub seq: u32,
    /// Total number of flits the packet was split into.
    pub of: u32,
}

impl Flit {
    /// Whether this is the head flit (establishes the route).
    #[inline]
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// Whether this is the tail flit (releases held lanes).
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_extraction_follows_the_tag_bits() {
        let p = Packet {
            id: 0,
            source: 1,
            destination: 5,
            tag: 0b101,
            injected_at: 0,
        };
        assert_eq!(p.port_at(0), 1);
        assert_eq!(p.port_at(1), 0);
        assert_eq!(p.port_at(2), 1);
        assert_eq!(p.port_at(3), 0);
    }

    #[test]
    fn flit_split_marks_head_and_tail() {
        let p = Packet {
            id: 9,
            source: 0,
            destination: 3,
            tag: 0b11,
            injected_at: 7,
        };
        let flits: Vec<Flit> = (0..4).map(|s| p.flit(s, 4)).collect();
        assert!(flits[0].is_head() && !flits[0].is_tail());
        assert!(!flits[1].is_head() && !flits[1].is_tail());
        assert!(flits[3].is_tail() && !flits[3].is_head());
        assert!(flits.iter().all(|f| f.packet_id == 9 && f.of == 4));
    }

    #[test]
    fn a_single_flit_packet_is_both_head_and_tail() {
        let p = Packet::default();
        let f = p.flit(0, 1);
        assert!(f.is_head() && f.is_tail());
    }
}
