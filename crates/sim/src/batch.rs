//! Batched replications: all runs of one scenario through shared engines.
//!
//! The campaign layer replicates every grid point several times under
//! derived seeds. Building a fresh [`Simulator`] per replication rebuilds
//! the fabric's routing tables, the switch-core arenas and the fault
//! machinery each time; this module builds them **once** per scenario and
//! reruns them:
//!
//! * [`run_replications`] is the auto-router. Eligible workloads —
//!   unbuffered buffer mode with at least [`LANE_THRESHOLD`] replications
//!   on a fabric of at most [`LANE_MAX_STAGES`] stages — go through the
//!   word-packed [`LaneEngine`], 64 replications per `u64`. Everything
//!   else runs the scalar [`Simulator`], reseeded between replications so
//!   arenas and cached fault-reroute epochs are reused.
//! * [`run_replications_merged`] additionally folds the per-replication
//!   metrics with [`Metrics::merge`] for callers that only need the
//!   aggregate.
//!
//! Both paths are bit-identical to building a fresh scalar simulator per
//! seed — pinned by the packed-oracle proptests and the campaign layer's
//! byte-for-byte report determinism gate.

use crate::config::{BufferMode, SimConfig};
use crate::engine::{SimError, Simulator};
use crate::lane::{LaneEngine, LANE_WIDTH};
use crate::metrics::Metrics;
use min_core::ConnectionNetwork;

/// Minimum replication count at which the word-packed engine pays for its
/// plane setup (below it, the scalar engine's reseed loop is already fast).
pub const LANE_THRESHOLD: usize = 8;

/// Largest fabric (in stages) the packed engine accepts: bit-plane storage
/// grows as `stages × cells × (stages + log2 cells)` words, so very deep
/// fabrics are left to the scalar engine.
pub const LANE_MAX_STAGES: usize = 12;

/// Whether [`run_replications`] would route this workload through the
/// word-packed [`LaneEngine`]. Stateful traffic patterns (ON/OFF chains,
/// trace replay — [`crate::TrafficPattern::is_stateful`]) carry per-source
/// state the packed engine does not model, so they always take the scalar
/// path.
pub fn packed_eligible(config: &SimConfig, stages: usize, replications: usize) -> bool {
    config.buffer_mode == BufferMode::Unbuffered
        && !config.traffic.is_stateful()
        && replications >= LANE_THRESHOLD
        && (2..=LANE_MAX_STAGES).contains(&stages)
}

/// Runs one scenario once per seed, returning the metrics in seed order —
/// bit-identical to a fresh [`Simulator`] per seed, but with the fabric
/// tables, arenas and fault machinery built once and shared.
pub fn run_replications(
    net: &ConnectionNetwork,
    config: &SimConfig,
    seeds: &[u64],
) -> Result<Vec<Metrics>, SimError> {
    if seeds.is_empty() {
        return Ok(Vec::new());
    }
    // The packed engine is destination-tag only; a non-delta fabric (e.g.
    // Benes under permutation traffic) falls back to the scalar router path.
    if packed_eligible(config, net.stages(), seeds.len())
        && min_routing::destination_tags(net).is_some()
    {
        let mut out = Vec::with_capacity(seeds.len());
        for chunk in seeds.chunks(LANE_WIDTH) {
            out.extend(LaneEngine::new(net.clone(), config.clone(), chunk)?.run());
        }
        return Ok(out);
    }
    let mut sim = Simulator::new(net.clone(), config.clone().with_seed(seeds[0]))?;
    let mut out = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        sim.reseed(seed);
        out.push(sim.run());
    }
    Ok(out)
}

/// Runs one scenario once per seed and folds the results into a single
/// [`Metrics`] via [`Metrics::merge`].
pub fn run_replications_merged(
    net: &ConnectionNetwork,
    config: &SimConfig,
    seeds: &[u64],
) -> Result<Metrics, SimError> {
    let mut merged = Metrics::default();
    for metrics in run_replications(net, config, seeds)? {
        merged.merge(&metrics);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use min_networks::omega;

    fn fresh(net: &ConnectionNetwork, config: &SimConfig, seed: u64) -> Metrics {
        Simulator::new(net.clone(), config.clone().with_seed(seed))
            .unwrap()
            .run()
    }

    #[test]
    fn eligibility_gates_on_mode_replications_and_depth() {
        let unbuffered = SimConfig::default();
        assert!(packed_eligible(&unbuffered, 4, LANE_THRESHOLD));
        assert!(!packed_eligible(&unbuffered, 4, LANE_THRESHOLD - 1));
        assert!(!packed_eligible(&unbuffered, LANE_MAX_STAGES + 1, 64));
        let fifo = SimConfig::default().with_buffer(BufferMode::Fifo(4));
        assert!(!packed_eligible(&fifo, 4, 64));
        // Zipf is stateless and packed-supported; ON/OFF and trace replay
        // carry per-source state and must take the scalar path.
        use crate::traffic::{TraceData, TrafficPattern};
        let zipf = SimConfig::default().with_traffic(TrafficPattern::Zipf { exponent: 1.0 });
        assert!(packed_eligible(&zipf, 4, 64));
        let on_off = SimConfig::default().with_traffic(TrafficPattern::OnOff {
            on_dwell: 8.0,
            off_dwell: 8.0,
            on_rate: 1.0,
        });
        assert!(!packed_eligible(&on_off, 4, 64));
        let trace = SimConfig::default().with_traffic(TrafficPattern::Trace(TraceData {
            cells: 8,
            period: 1,
            records: vec![],
        }));
        assert!(!packed_eligible(&trace, 4, 64));
    }

    #[test]
    fn both_routes_match_fresh_scalar_simulators() {
        let net = omega(4);
        // 10 seeds: packed-eligible for the unbuffered config, scalar
        // (reseed loop) for the FIFO config — both must be bit-identical
        // to fresh per-seed simulators.
        let seeds: Vec<u64> = (0..10).map(|k| 0xC0FFEE ^ (k * 7919)).collect();
        for mode in [BufferMode::Unbuffered, BufferMode::Fifo(4)] {
            let config = SimConfig::default()
                .with_cycles(250, 25)
                .with_load(0.85)
                .with_buffer(mode);
            let batched = run_replications(&net, &config, &seeds).unwrap();
            assert_eq!(batched.len(), seeds.len());
            for (i, &seed) in seeds.iter().enumerate() {
                assert_eq!(batched[i], fresh(&net, &config, seed), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn new_patterns_route_and_match_fresh_scalar_simulators() {
        use crate::traffic::TrafficPattern;
        let net = omega(4);
        // 10 seeds: Zipf goes through the packed engine, ON/OFF through the
        // scalar reseed loop — both must be bit-identical to fresh per-seed
        // simulators.
        let seeds: Vec<u64> = (0..10).map(|k| 0xFACE ^ (k * 6151)).collect();
        for traffic in [
            TrafficPattern::Zipf { exponent: 1.2 },
            TrafficPattern::OnOff {
                on_dwell: 12.0,
                off_dwell: 5.0,
                on_rate: 0.9,
            },
        ] {
            let config = SimConfig::default()
                .with_cycles(200, 20)
                .with_load(0.8)
                .with_traffic(traffic.clone());
            let batched = run_replications(&net, &config, &seeds).unwrap();
            for (i, &seed) in seeds.iter().enumerate() {
                assert_eq!(batched[i], fresh(&net, &config, seed), "{traffic:?}");
            }
        }
    }

    #[test]
    fn batching_respects_fault_plans() {
        let net = omega(4);
        let config = SimConfig::default()
            .with_cycles(200, 20)
            .with_load(0.9)
            .with_faults(
                FaultPlan::none()
                    .with_dead_link(1, 0, 1, 0)
                    .with_dead_switch(1, 1, 100),
            );
        let seeds: Vec<u64> = (1..=9).collect();
        let batched = run_replications(&net, &config, &seeds).unwrap();
        for (i, &seed) in seeds.iter().enumerate() {
            assert_eq!(batched[i], fresh(&net, &config, seed), "seed {seed}");
        }
    }

    #[test]
    fn merged_equals_sequential_merge_of_per_replication_metrics() {
        let net = omega(3);
        let config = SimConfig::default().with_cycles(150, 15).with_load(0.6);
        let seeds: Vec<u64> = (10..30).collect();
        let merged = run_replications_merged(&net, &config, &seeds).unwrap();
        let mut sequential = Metrics::default();
        for m in run_replications(&net, &config, &seeds).unwrap() {
            sequential.merge(&m);
        }
        assert_eq!(merged, sequential);
        assert_eq!(merged.measured_cycles, 150 * seeds.len() as u64);
    }

    #[test]
    fn empty_seed_lists_yield_no_metrics() {
        let net = omega(3);
        let config = SimConfig::default();
        assert!(run_replications(&net, &config, &[]).unwrap().is_empty());
        assert_eq!(
            run_replications_merged(&net, &config, &[]).unwrap(),
            Metrics::default()
        );
    }
}
