//! Scenario campaigns: declarative simulation grids planned into shards and
//! executed by interchangeable local or distributed executors.
//!
//! A [`CampaignConfig`] describes a grid — catalog cells (network family ×
//! stage count) × traffic pattern × offered load × buffer mode × fault
//! plan × replication — plus the simulation parameters shared by every
//! cell. Campaign execution is split into three separable phases:
//!
//! 1. **[`CampaignConfig::plan`]** expands the grid into a
//!    [`CampaignPlan`]: an ordered list of [`Shard`]s, each a contiguous
//!    block of whole grid points (runs of consecutive scenario indices that
//!    differ only in their derived seed).
//! 2. **[`execute_shard`]** is pure — shard in, slotted [`ScenarioResult`]s
//!    out. It hands each grid point to [`crate::batch::run_replications`],
//!    which builds the fabric tables, switch arenas and fault machinery
//!    once per grid point and — for unbuffered scenarios with enough
//!    replications — runs up to 64 replications per machine word through
//!    the bit-parallel [`crate::lane::LaneEngine`]. Because every scenario
//!    carries its own derived seed, a shard produces the same bytes no
//!    matter which process, machine or retry executes it.
//! 3. **[`assemble`]** slots results back by canonical scenario index into
//!    a [`CampaignReport`], rejecting duplicate or missing slots with a
//!    typed [`MergeError`].
//!
//! [`run_campaign`] is the thin compatibility wrapper chaining the three
//! phases across scoped worker threads on one box; the `min-serve`
//! master/worker service is a second executor of the very same plan, with
//! the byte-identity of the two reports as its integration oracle.
//!
//! The buffer-mode axis is what lets one campaign sweep a topology across
//! *buffer architectures*, not just families: the same grid cell can run
//! unbuffered (Patel), FIFO-buffered, and flit-level wormhole
//! ([`BufferMode::Wormhole`]) back to back, the way the wormhole-routing and
//! saturation-stability literature evaluates MINs. The fault-plan axis
//! ([`CampaignConfig::with_fault_plans`]) multiplies the same grid by a
//! failure dimension — healthy vs. 1-fault vs. k-fault fabrics — the way
//! the Omega-stability literature measures networks under switch and link
//! failures.
//!
//! ## Determinism
//!
//! Every scenario runs with its own ChaCha8 seed derived from
//! `(campaign_seed, scenario_index)` by a SplitMix64 finalizer
//! ([`scenario_seed`]), and results are stored by scenario index, never by
//! completion order. The report — including its serialized JSON — is
//! therefore **bitwise identical at any worker-thread count**, which is what
//! lets the CI perf trajectory compare campaign outputs across machines.
//!
//! ```
//! use min_sim::campaign::{run_campaign, CampaignConfig};
//! use min_sim::{BufferMode, TrafficPattern};
//!
//! let config = CampaignConfig::over_catalog(3..=3)
//!     .with_traffic(vec![TrafficPattern::Uniform])
//!     .with_loads(vec![0.5])
//!     .with_buffer_modes(vec![
//!         BufferMode::Unbuffered,
//!         BufferMode::Wormhole { lanes: 2, lane_depth: 2, flits_per_packet: 4 },
//!     ])
//!     .with_cycles(50, 0);
//! let sequential = run_campaign(&config, 1).unwrap();
//! let parallel = run_campaign(&config, 4).unwrap();
//! assert_eq!(sequential.to_json(), parallel.to_json());
//! ```

use crate::config::{BufferMode, ConfigError, SimConfig};
use crate::engine::SimError;
use crate::fabric::FabricError;
use crate::fault::{FaultError, FaultPlan};
use crate::metrics::Metrics;
use crate::traffic::{TrafficError, TrafficPattern};
use min_networks::{catalog_grid, ClassicalNetwork, NetworkSpec};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Declarative description of a simulation campaign.
///
/// The grid axes are `cells × traffic × loads × buffer_modes ×
/// fault_plans × replications`; the remaining fields are shared by every
/// scenario. Construct with [`CampaignConfig::over_catalog`] (or
/// [`Default`]) and refine with the builder-style setters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed; every scenario derives its own seed from this and its
    /// index (see [`scenario_seed`]).
    pub campaign_seed: u64,
    /// The network cells of the grid, e.g. from
    /// [`min_networks::catalog_grid`]. Since the [`NetworkSpec`] redesign
    /// these can also name Benes, its shuffle variant, and rewritten
    /// catalog members; catalog cells serialize byte-for-byte like the
    /// `(ClassicalNetwork, usize)` tuples they replaced.
    pub cells: Vec<NetworkSpec>,
    /// Traffic patterns swept per cell.
    pub traffic: Vec<TrafficPattern>,
    /// Offered loads swept per (cell, traffic) pair, each in `[0, 1]`.
    pub loads: Vec<f64>,
    /// Buffer architectures swept per (cell, traffic, load) triple.
    pub buffer_modes: Vec<BufferMode>,
    /// Fault plans swept per (cell, traffic, load, buffer mode) tuple —
    /// the fault-injection axis. Defaults to the single empty plan (a
    /// healthy fabric); every plan's sites must fit every grid cell.
    pub fault_plans: Vec<FaultPlan>,
    /// Independent replications per grid point, each with its own derived
    /// seed.
    pub replications: u32,
    /// Total simulated cycles per scenario (the warm-up runs inside this
    /// budget).
    pub cycles: u64,
    /// Warm-up cycles at the start of each scenario, excluded from the
    /// latency statistics.
    pub warmup: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::over_catalog(3..=4)
    }
}

impl CampaignConfig {
    /// A campaign over the full classical catalog at the given stage counts,
    /// with uniform traffic at a moderate load, one replication, unbuffered
    /// cells and a short measured run.
    pub fn over_catalog(stages: std::ops::RangeInclusive<usize>) -> Self {
        CampaignConfig {
            campaign_seed: 0x1988,
            cells: catalog_grid(stages),
            traffic: vec![TrafficPattern::Uniform],
            loads: vec![0.5],
            buffer_modes: vec![BufferMode::Unbuffered],
            fault_plans: vec![FaultPlan::none()],
            replications: 1,
            cycles: 400,
            warmup: 50,
        }
    }

    /// Builder-style setter for the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Builder-style setter for the grid cells.
    pub fn with_cells(mut self, cells: Vec<NetworkSpec>) -> Self {
        self.cells = cells;
        self
    }

    /// Legacy tuple setter kept from the pre-[`NetworkSpec`] API.
    #[deprecated(
        since = "0.1.0",
        note = "build `NetworkSpec` cells (`NetworkSpec::catalog`, `catalog_grid`) and call `with_cells`"
    )]
    pub fn with_cell_tuples(self, cells: Vec<(ClassicalNetwork, usize)>) -> Self {
        self.with_cells(cells.into_iter().map(Into::into).collect())
    }

    /// Builder-style setter for the traffic axis.
    pub fn with_traffic(mut self, traffic: Vec<TrafficPattern>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Builder-style setter for the offered-load axis.
    pub fn with_loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = loads;
        self
    }

    /// Builder-style setter for the replication count.
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications;
        self
    }

    /// Builder-style setter collapsing the buffer-mode axis to one mode.
    pub fn with_buffer(mut self, mode: BufferMode) -> Self {
        self.buffer_modes = vec![mode];
        self
    }

    /// Builder-style setter for the buffer-mode axis.
    pub fn with_buffer_modes(mut self, modes: Vec<BufferMode>) -> Self {
        self.buffer_modes = modes;
        self
    }

    /// Builder-style setter for the fault-injection axis.
    pub fn with_fault_plans(mut self, plans: Vec<FaultPlan>) -> Self {
        self.fault_plans = plans;
        self
    }

    /// Builder-style setter for the cycle counts.
    pub fn with_cycles(mut self, cycles: u64, warmup: u64) -> Self {
        self.cycles = cycles;
        self.warmup = warmup;
        self
    }

    /// Number of scenarios the grid expands to.
    pub fn scenario_count(&self) -> usize {
        self.cells.len()
            * self.traffic.len()
            * self.loads.len()
            * self.buffer_modes.len()
            * self.fault_plans.len()
            * self.replications as usize
    }

    /// Checks the grid for structural problems (empty axes, unbuildable
    /// stage counts, out-of-range loads, invalid buffer parameters, a
    /// zero-cycle run).
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.cells.is_empty() {
            return Err(CampaignError::EmptyAxis("cells"));
        }
        for spec in &self.cells {
            // A MIN needs at least two stages, and the simulator addresses
            // the terminals with a usize. For catalog cells `stages` is the
            // classical `n`; Benes cells report their full `2n - 1` depth.
            let stages = spec.stages();
            if !(2..=32).contains(&stages) {
                return Err(CampaignError::InvalidStages(stages));
            }
        }
        if self.traffic.is_empty() {
            return Err(CampaignError::EmptyAxis("traffic"));
        }
        for (pattern_index, pattern) in self.traffic.iter().enumerate() {
            // Like fault plans, every pattern must fit every grid cell
            // (hot-spot targets, permutation widths and trace geometries are
            // all cell-count-dependent), so a mismatch is a typed error here
            // instead of a panic inside a worker thread.
            for spec in &self.cells {
                pattern
                    .validate_for(spec.cells_per_stage() as u32)
                    .map_err(|error| CampaignError::InvalidTraffic {
                        pattern: pattern_index,
                        cells: spec.cells_per_stage(),
                        error,
                    })?;
            }
        }
        if self.loads.is_empty() {
            return Err(CampaignError::EmptyAxis("loads"));
        }
        if self.buffer_modes.is_empty() {
            return Err(CampaignError::EmptyAxis("buffer_modes"));
        }
        for mode in &self.buffer_modes {
            mode.validate().map_err(CampaignError::InvalidBuffer)?;
        }
        if self.fault_plans.is_empty() {
            return Err(CampaignError::EmptyAxis("fault_plans"));
        }
        for (plan_index, plan) in self.fault_plans.iter().enumerate() {
            // Every plan must fit every grid cell, checked against the
            // cell's *actual* geometry. (The pre-`NetworkSpec` code derived
            // the cell count as `1 << (stages - 1)`, which is wrong for a
            // Benes cell: its 2n-1 stages hold only 2^(n-1) cells, so an
            // out-of-range fault site would have slipped through validation
            // and panicked inside a worker thread.)
            for spec in &self.cells {
                plan.validate(spec.stages(), spec.cells_per_stage())
                    .map_err(|error| CampaignError::InvalidFaultPlan {
                        plan: plan_index,
                        stages: spec.stages(),
                        error,
                    })?;
            }
        }
        if self.replications == 0 {
            return Err(CampaignError::EmptyAxis("replications"));
        }
        if self.cycles == 0 {
            return Err(CampaignError::ZeroCycles);
        }
        if self.warmup >= self.cycles {
            // The warm-up runs inside the cycle budget; consuming all of it
            // would leave an empty measurement window and all-zero latency
            // statistics indistinguishable from a real result.
            return Err(CampaignError::WarmupTooLong {
                warmup: self.warmup,
                cycles: self.cycles,
            });
        }
        for &load in &self.loads {
            if !(0.0..=1.0).contains(&load) || load.is_nan() {
                return Err(CampaignError::InvalidLoad(load));
            }
        }
        Ok(())
    }

    /// Expands the grid into the flat scenario list, in its canonical order:
    /// cells (outermost) × traffic × loads × buffer modes × fault plans ×
    /// replications (innermost). The scenario index — and with it the
    /// derived seed — depends only on the grid, never on thread scheduling.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, CampaignError> {
        self.validate()?;
        let mut out = Vec::with_capacity(self.scenario_count());
        for &network in &self.cells {
            for traffic in &self.traffic {
                for &offered_load in &self.loads {
                    for &buffer_mode in &self.buffer_modes {
                        for fault_plan in &self.fault_plans {
                            for replication in 0..self.replications {
                                let index = out.len();
                                out.push(Scenario {
                                    index,
                                    network,
                                    stages: network.stages(),
                                    traffic: traffic.clone(),
                                    offered_load,
                                    buffer_mode,
                                    fault_plan: fault_plan.clone(),
                                    replication,
                                    seed: scenario_seed(self.campaign_seed, index),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// **Phase 1 of 3** — expands the grid into a [`CampaignPlan`] with one
    /// [`Shard`] per grid point, the finest shardable granularity (every
    /// shard still hands whole replication blocks to the batch layer).
    pub fn plan(&self) -> Result<CampaignPlan, CampaignError> {
        self.plan_chunked(1)
    }

    /// Like [`CampaignConfig::plan`], but packs `points_per_shard`
    /// consecutive grid points into each shard — fewer, larger work units
    /// for executors whose per-shard overhead (e.g. a network round trip)
    /// dwarfs a single grid point.
    pub fn plan_chunked(&self, points_per_shard: usize) -> Result<CampaignPlan, CampaignError> {
        if points_per_shard == 0 {
            return Err(CampaignError::ZeroShardSize);
        }
        let scenarios = self.scenarios()?;
        let reps = self.replications as usize;
        let shards = scenarios
            .chunks(reps * points_per_shard)
            .enumerate()
            .map(|(id, chunk)| Shard {
                id,
                scenarios: chunk.to_vec(),
            })
            .collect();
        Ok(CampaignPlan {
            config: self.clone(),
            shards,
        })
    }
}

/// A contiguous block of whole grid points: the unit of work an executor —
/// a scoped thread or a remote worker — claims, runs through
/// [`execute_shard`], and reports back. Shards are index-addressed, so
/// re-executing one (after a worker death, say) is idempotent: the retry
/// reproduces byte-identical results for the same slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shard {
    /// Position of this shard in the plan's canonical order.
    pub id: usize,
    /// The scenarios of the shard, in ascending canonical index order.
    pub scenarios: Vec<Scenario>,
}

impl Shard {
    /// Number of scenarios in the shard.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the shard holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Canonical index of the shard's first scenario.
    pub fn first_index(&self) -> Option<usize> {
        self.scenarios.first().map(|s| s.index)
    }
}

/// The expanded form of a campaign: the configuration echo plus the ordered
/// shard list every executor works through. Serializable, so a plan (or any
/// single shard of it) can cross a process or network boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// The campaign the plan was expanded from.
    pub config: CampaignConfig,
    /// The shards, in canonical order; concatenating their scenario lists
    /// reproduces [`CampaignConfig::scenarios`] exactly.
    pub shards: Vec<Shard>,
}

impl CampaignPlan {
    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of scenarios across every shard.
    pub fn scenario_count(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }
}

/// One fully specified `(network, traffic, load, buffer mode, fault plan,
/// replication)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in the canonical grid expansion.
    pub index: usize,
    /// The network being simulated.
    pub network: NetworkSpec,
    /// Stage count of the fabric (echoes [`NetworkSpec::stages`]): the
    /// classical `n` for catalog cells, `2n - 1` for Benes cells.
    pub stages: usize,
    /// Traffic pattern.
    pub traffic: TrafficPattern,
    /// Offered load.
    pub offered_load: f64,
    /// Buffer architecture of the cells.
    pub buffer_mode: BufferMode,
    /// Injected faults (the empty plan = healthy fabric).
    pub fault_plan: FaultPlan,
    /// Replication number within the grid point.
    pub replication: u32,
    /// Derived ChaCha8 seed for this scenario.
    pub seed: u64,
}

// Hand-written (de)serialization pinning the pre-`NetworkSpec` report
// layout: a catalog cell renders its `network` field as the bare family
// name (`"network":"Omega","stages":3`), exactly as the old
// `network: ClassicalNetwork` field did, so existing campaign JSON — and
// the CI byte-for-byte determinism gate — is unaffected. Non-catalog cells
// render the spec's tagged form (`"network":{"Benes":{"n":3}}`).
impl Serialize for Scenario {
    fn to_value(&self) -> serde::Value {
        let network = match self.network {
            NetworkSpec::Catalog { family, .. } => family.to_value(),
            spec => spec.to_value(),
        };
        serde::Value::Map(vec![
            (String::from("index"), self.index.to_value()),
            (String::from("network"), network),
            (String::from("stages"), self.stages.to_value()),
            (String::from("traffic"), self.traffic.to_value()),
            (String::from("offered_load"), self.offered_load.to_value()),
            (String::from("buffer_mode"), self.buffer_mode.to_value()),
            (String::from("fault_plan"), self.fault_plan.to_value()),
            (String::from("replication"), self.replication.to_value()),
            (String::from("seed"), self.seed.to_value()),
        ])
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("Scenario: expected a map"))?;
        let stages: usize = Deserialize::from_value(serde::map_get(entries, "stages")?)?;
        let network_value = serde::map_get(entries, "network")?;
        let network = match network_value {
            // Legacy catalog rendering: the bare family name, with the
            // stage count in the sibling `stages` field.
            serde::Value::Str(_) => {
                NetworkSpec::catalog(ClassicalNetwork::from_value(network_value)?, stages)
            }
            _ => NetworkSpec::from_value(network_value)?,
        };
        Ok(Scenario {
            index: Deserialize::from_value(serde::map_get(entries, "index")?)?,
            network,
            stages,
            traffic: Deserialize::from_value(serde::map_get(entries, "traffic")?)?,
            offered_load: Deserialize::from_value(serde::map_get(entries, "offered_load")?)?,
            buffer_mode: Deserialize::from_value(serde::map_get(entries, "buffer_mode")?)?,
            fault_plan: Deserialize::from_value(serde::map_get(entries, "fault_plan")?)?,
            replication: Deserialize::from_value(serde::map_get(entries, "replication")?)?,
            seed: Deserialize::from_value(serde::map_get(entries, "seed")?)?,
        })
    }
}

impl Scenario {
    /// The per-scenario simulator configuration.
    pub fn sim_config(&self, campaign: &CampaignConfig) -> SimConfig {
        SimConfig {
            offered_load: self.offered_load,
            buffer_mode: self.buffer_mode,
            traffic: self.traffic.clone(),
            cycles: campaign.cycles,
            warmup: campaign.warmup,
            seed: self.seed,
            fault_plan: self.fault_plan.clone(),
        }
    }
}

/// Derives the scenario seed from the campaign seed and the scenario index.
///
/// SplitMix64 finalizer over `campaign_seed ⊕ (index + 1) · φ64`: cheap,
/// stateless, and collision-free in practice for any realistic grid, so two
/// scenarios never share a ChaCha8 stream. This is the same derivation the
/// classification campaigns use — both delegate to
/// [`min_core::classify::derive_seed`], so the two subsystems can never
/// drift apart.
pub fn scenario_seed(campaign_seed: u64, index: usize) -> u64 {
    min_core::classify::derive_seed(campaign_seed, index)
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Delivered packets per terminal per cycle (in `[0, 1]`).
    pub throughput: f64,
    /// Mean delivered-packet latency, in cycles.
    pub mean_latency: f64,
    /// 99th-percentile delivered-packet latency, in cycles.
    pub p99_latency: u64,
    /// Largest single-packet latency, in cycles.
    pub max_latency: u64,
    /// Fraction of offered packets accepted into the fabric.
    pub acceptance: f64,
    /// Packets the sources wanted to inject.
    pub offered: u64,
    /// Packets accepted into the fabric.
    pub injected: u64,
    /// Packets delivered to their destination.
    pub delivered: u64,
    /// Packets dropped inside the fabric (both causes).
    pub dropped: u64,
    /// Packets dropped to an out-port arbitration loss.
    pub dropped_arbitration: u64,
    /// Packets dropped to downstream backpressure.
    pub dropped_backpressure: u64,
    /// Flits ejected at the last stage (wormhole scenarios; zero otherwise).
    pub flits_delivered: u64,
    /// Flit-cycles lost to arbitration or backpressure stalls (wormhole).
    pub flit_stalls: u64,
    /// Mean fraction of storage (queue slots or lanes) occupied.
    pub mean_occupancy: f64,
    /// Packets still in flight when the run ended.
    pub in_flight: u64,
    /// Packets (or worms) lost to an injected fault.
    pub dropped_fault: u64,
    /// Injection attempts refused because the pair was severed by faults.
    pub unroutable_drops: u64,
    /// Packets delivered while at least one fault was active.
    pub delivered_despite_fault: u64,
    /// Per-stage fault-exposure counts (empty for a fault-free scenario).
    pub fault_exposure: Vec<u64>,
    /// Disjoint-path diversity histogram of the scenario's fabric:
    /// `path_diversity[k]` pairs have exactly `k` link-disjoint paths.
    /// Computed for fault scenarios on fabrics up to 8 stages (empty
    /// otherwise — the per-pair analysis is quadratic in the cell count).
    pub path_diversity: Vec<u64>,
}

/// Whole-campaign totals and extremes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignAggregate {
    /// Sum of `offered` over all scenarios.
    pub total_offered: u64,
    /// Sum of `injected` over all scenarios.
    pub total_injected: u64,
    /// Sum of `delivered` over all scenarios.
    pub total_delivered: u64,
    /// Sum of `dropped` over all scenarios.
    pub total_dropped: u64,
    /// Sum of `dropped_arbitration` over all scenarios.
    pub total_dropped_arbitration: u64,
    /// Sum of `dropped_backpressure` over all scenarios.
    pub total_dropped_backpressure: u64,
    /// Sum of `dropped_fault` over all scenarios.
    pub total_dropped_fault: u64,
    /// Sum of `unroutable_drops` over all scenarios.
    pub total_unroutable_drops: u64,
    /// Sum of `delivered_despite_fault` over all scenarios.
    pub total_delivered_despite_fault: u64,
    /// Unweighted mean of the per-scenario throughputs.
    pub mean_throughput: f64,
    /// Largest per-scenario p99 latency.
    pub worst_p99_latency: u64,
    /// Largest per-scenario mean latency.
    pub worst_mean_latency: f64,
}

/// The complete result of a campaign: configuration echo, one result per
/// scenario (in canonical grid order), and the aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The master seed the campaign ran with.
    pub campaign_seed: u64,
    /// The buffer-mode axis of the grid.
    pub buffer_modes: Vec<BufferMode>,
    /// The fault-injection axis of the grid.
    pub fault_plans: Vec<FaultPlan>,
    /// Measured cycles per scenario.
    pub cycles: u64,
    /// Warm-up cycles per scenario.
    pub warmup: u64,
    /// Number of scenarios in the grid.
    pub scenario_count: usize,
    /// Per-scenario results, indexed by [`Scenario::index`].
    pub scenarios: Vec<ScenarioResult>,
    /// Whole-campaign totals.
    pub aggregate: CampaignAggregate,
}

impl CampaignReport {
    /// An empty partial report for `config`: no slots filled yet. The unit
    /// of [`CampaignReport::merge`] — a results store starts here and folds
    /// in per-shard partial reports as they arrive.
    pub fn empty(config: &CampaignConfig) -> Self {
        CampaignReport {
            campaign_seed: config.campaign_seed,
            buffer_modes: config.buffer_modes.clone(),
            fault_plans: config.fault_plans.clone(),
            cycles: config.cycles,
            warmup: config.warmup,
            scenario_count: 0,
            scenarios: Vec::new(),
            aggregate: aggregate(&[]),
        }
    }

    /// A partial report holding the given results, slotted by canonical
    /// scenario index. The results may arrive in any order and cover any
    /// subset of the grid; duplicate and out-of-range slots are rejected
    /// with a typed [`MergeError`].
    pub fn partial(
        config: &CampaignConfig,
        mut results: Vec<ScenarioResult>,
    ) -> Result<Self, MergeError> {
        let total = config.scenario_count();
        results.sort_by_key(|r| r.scenario.index);
        for pair in results.windows(2) {
            if pair[0].scenario.index == pair[1].scenario.index {
                return Err(MergeError::DuplicateSlot {
                    slot: pair[0].scenario.index,
                });
            }
        }
        if let Some(last) = results.last() {
            if last.scenario.index >= total {
                return Err(MergeError::SlotOutOfRange {
                    slot: last.scenario.index,
                    slots: total,
                });
            }
        }
        let mut report = CampaignReport::empty(config);
        report.scenario_count = results.len();
        report.aggregate = aggregate(&results);
        report.scenarios = results;
        Ok(report)
    }

    /// Folds another (possibly partial) report into `self`, slot by slot:
    /// the two reports' scenario sets must be disjoint by canonical index,
    /// and their campaign headers (seed, axes, cycle counts) must agree.
    /// This is the report-level promotion of [`Metrics::merge`] — where that
    /// adds counters *within* one slot, this unions *slots* — and it is what
    /// a distributed results store uses to accumulate shards from any worker
    /// topology: merging is order-independent, and once every slot is
    /// filled the report is byte-identical to the single-process run.
    pub fn merge(&mut self, other: &CampaignReport) -> Result<(), MergeError> {
        fn header(field: &'static str) -> MergeError {
            MergeError::HeaderMismatch { field }
        }
        if self.campaign_seed != other.campaign_seed {
            return Err(header("campaign_seed"));
        }
        if self.buffer_modes != other.buffer_modes {
            return Err(header("buffer_modes"));
        }
        if self.fault_plans != other.fault_plans {
            return Err(header("fault_plans"));
        }
        if self.cycles != other.cycles {
            return Err(header("cycles"));
        }
        if self.warmup != other.warmup {
            return Err(header("warmup"));
        }
        // Disjointness is checked before anything is moved, so a rejected
        // merge leaves the store untouched and retryable.
        {
            let mut left = self.scenarios.iter().map(|r| r.scenario.index).peekable();
            let mut right = other.scenarios.iter().map(|r| r.scenario.index).peekable();
            while let (Some(&a), Some(&b)) = (left.peek(), right.peek()) {
                match a.cmp(&b) {
                    std::cmp::Ordering::Equal => return Err(MergeError::DuplicateSlot { slot: a }),
                    std::cmp::Ordering::Less => {
                        left.next();
                    }
                    std::cmp::Ordering::Greater => {
                        right.next();
                    }
                }
            }
        }
        let mut merged = Vec::with_capacity(self.scenarios.len() + other.scenarios.len());
        let mut left = std::mem::take(&mut self.scenarios).into_iter().peekable();
        let mut right = other.scenarios.iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some(a), Some(b)) => {
                    if a.scenario.index < b.scenario.index {
                        merged.push(left.next().expect("peeked"));
                    } else {
                        merged.push(right.next().expect("peeked").clone());
                    }
                }
                (Some(_), None) => merged.push(left.next().expect("peeked")),
                (None, Some(_)) => merged.push(right.next().expect("peeked").clone()),
                (None, None) => break,
            }
        }
        self.scenario_count = merged.len();
        self.aggregate = aggregate(&merged);
        self.scenarios = merged;
        Ok(())
    }

    /// Whether this report fills every slot of `config`'s grid.
    pub fn is_complete_for(&self, config: &CampaignConfig) -> bool {
        self.scenario_count == config.scenario_count()
            && self
                .scenarios
                .iter()
                .enumerate()
                .all(|(slot, r)| r.scenario.index == slot)
    }

    /// Serializes the report to JSON. The rendering is deterministic (field
    /// order is declaration order, floats print via Rust's shortest
    /// round-trip formatting), so equal reports yield byte-identical JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign reports are JSON-serializable")
    }

    /// Parses a report back from its [`CampaignReport::to_json`] rendering.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// A plain-text summary table, one row per scenario.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>3} {:<14} {:<14} {:<16} {:>5} {:>4} {:>9} {:>9} {:>5} {:>8} {:>8}",
            "network",
            "n",
            "traffic",
            "buffers",
            "faults",
            "load",
            "rep",
            "tput",
            "mean lat",
            "p99",
            "dropped",
            "unroute"
        );
        for r in &self.scenarios {
            let _ = writeln!(
                out,
                "{:<28} {:>3} {:<14} {:<14} {:<16} {:>5.2} {:>4} {:>9.4} {:>9.2} {:>5} {:>8} {:>8}",
                r.scenario.network.name(),
                r.scenario.stages,
                r.scenario.traffic.label(),
                r.scenario.buffer_mode.label(),
                r.scenario.fault_plan.label(),
                r.scenario.offered_load,
                r.scenario.replication,
                r.throughput,
                r.mean_latency,
                r.p99_latency,
                r.dropped,
                r.unroutable_drops
            );
        }
        let a = &self.aggregate;
        let _ = writeln!(
            out,
            "{} scenarios · delivered {}/{} offered · mean tput {:.4} · worst p99 {} cycles · {} fault drops · {} unroutable",
            self.scenario_count,
            a.total_delivered,
            a.total_offered,
            a.mean_throughput,
            a.worst_p99_latency,
            a.total_dropped_fault,
            a.total_unroutable_drops
        );
        out
    }
}

/// Why a campaign could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// One of the grid axes is empty.
    EmptyAxis(&'static str),
    /// A grid cell's stage count is outside the buildable range `2..=32`.
    InvalidStages(usize),
    /// An offered load is outside `[0, 1]`.
    InvalidLoad(f64),
    /// A buffer mode on the grid axis has invalid parameters.
    InvalidBuffer(ConfigError),
    /// The measured run has zero cycles.
    ZeroCycles,
    /// A chunked plan was requested with zero grid points per shard.
    ZeroShardSize,
    /// Executed results could not be assembled into a report.
    Assemble(MergeError),
    /// The warm-up consumes the whole cycle budget, leaving no measurement
    /// window.
    WarmupTooLong {
        /// Configured warm-up cycles.
        warmup: u64,
        /// Configured total cycles.
        cycles: u64,
    },
    /// A scenario's network could not be simulated.
    Fabric {
        /// Index of the failing scenario.
        scenario: usize,
        /// The underlying fabric error.
        error: FabricError,
    },
    /// A scenario's simulator configuration was rejected (should be caught
    /// by [`CampaignConfig::validate`]; kept for exhaustiveness).
    Config {
        /// Index of the failing scenario.
        scenario: usize,
        /// The underlying configuration error.
        error: ConfigError,
    },
    /// A fault plan on the grid axis names a site outside one of the grid
    /// cells' fabrics.
    InvalidFaultPlan {
        /// Index of the offending plan on the `fault_plans` axis.
        plan: usize,
        /// The stage count of the grid cell the plan does not fit.
        stages: usize,
        /// The underlying site error.
        error: FaultError,
    },
    /// A traffic pattern on the grid axis is invalid or does not fit one of
    /// the grid cells (hot-spot target, permutation width, trace geometry).
    InvalidTraffic {
        /// Index of the offending pattern on the `traffic` axis.
        pattern: usize,
        /// Cells per stage of the grid cell the pattern does not fit.
        cells: usize,
        /// The underlying traffic error.
        error: TrafficError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyAxis(axis) => write!(f, "campaign grid axis `{axis}` is empty"),
            CampaignError::InvalidStages(n) => {
                write!(f, "stage count {n} is outside the buildable range 2..=32")
            }
            CampaignError::InvalidLoad(load) => {
                write!(f, "offered load {load} is not a probability")
            }
            CampaignError::InvalidBuffer(error) => {
                write!(f, "invalid buffer mode on the grid axis: {error}")
            }
            CampaignError::ZeroCycles => write!(f, "campaign runs zero measured cycles"),
            CampaignError::ZeroShardSize => {
                write!(f, "a plan needs at least one grid point per shard")
            }
            CampaignError::Assemble(error) => {
                write!(f, "executed results do not assemble into a report: {error}")
            }
            CampaignError::WarmupTooLong { warmup, cycles } => write!(
                f,
                "warm-up of {warmup} cycles consumes the whole {cycles}-cycle budget"
            ),
            CampaignError::Fabric { scenario, error } => {
                write!(f, "scenario {scenario} cannot be simulated: {error}")
            }
            CampaignError::Config { scenario, error } => {
                write!(
                    f,
                    "scenario {scenario} has an invalid configuration: {error}"
                )
            }
            CampaignError::InvalidFaultPlan {
                plan,
                stages,
                error,
            } => {
                write!(
                    f,
                    "fault plan {plan} does not fit the {stages}-stage grid cells: {error}"
                )
            }
            CampaignError::InvalidTraffic {
                pattern,
                cells,
                error,
            } => {
                write!(
                    f,
                    "traffic pattern {pattern} does not fit the {cells}-cell grid cells: {error}"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<MergeError> for CampaignError {
    fn from(error: MergeError) -> Self {
        CampaignError::Assemble(error)
    }
}

/// Why results could not be slotted into (or merged between) reports.
///
/// Slots are canonical scenario indices, so these errors are the typed form
/// of every way a distributed results store can be handed inconsistent
/// data: the same slot twice, a slot outside the grid, a hole where a shard
/// never reported, or partial reports from two different campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// Two results claim the same canonical scenario index.
    DuplicateSlot {
        /// The contested scenario index.
        slot: usize,
    },
    /// A result's scenario index lies outside the campaign grid.
    SlotOutOfRange {
        /// The offending scenario index.
        slot: usize,
        /// Number of slots in the grid.
        slots: usize,
    },
    /// Assembly found no result for a slot.
    MissingSlot {
        /// The first unfilled scenario index.
        slot: usize,
    },
    /// Two reports describe different campaigns and cannot be merged.
    HeaderMismatch {
        /// The first header field that disagrees.
        field: &'static str,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::DuplicateSlot { slot } => {
                write!(f, "two results claim scenario slot {slot}")
            }
            MergeError::SlotOutOfRange { slot, slots } => {
                write!(f, "scenario slot {slot} is outside the {slots}-slot grid")
            }
            MergeError::MissingSlot { slot } => {
                write!(f, "no result for scenario slot {slot}")
            }
            MergeError::HeaderMismatch { field } => {
                write!(f, "reports disagree on campaign header field `{field}`")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Per-cell disjoint-path diversity histograms, computed once per grid cell
/// before the fan-out (the histogram depends only on the topology, not on
/// the traffic/load/mode/plan axes). Cells above 8 stages are skipped — the
/// per-pair analysis is quadratic in the cell count.
type DiversityMap = std::collections::HashMap<NetworkSpec, Vec<u64>>;

fn diversity_map(config: &CampaignConfig) -> DiversityMap {
    let mut map = DiversityMap::new();
    if config.fault_plans.iter().all(FaultPlan::is_empty) {
        return map;
    }
    for &spec in &config.cells {
        if spec.stages() <= 8 {
            map.entry(spec)
                .or_insert_with(|| min_routing::disjoint::path_diversity_histogram(&spec.build()));
        }
    }
    map
}

fn map_sim_error(campaign: &CampaignConfig, scenario: &Scenario, error: SimError) -> CampaignError {
    match error {
        SimError::Fabric(error) => CampaignError::Fabric {
            scenario: scenario.index,
            error,
        },
        SimError::Config(error) => CampaignError::Config {
            scenario: scenario.index,
            error,
        },
        // Plans are validated against every grid cell up front, so this is
        // unreachable in practice; map it faithfully anyway, recovering the
        // plan's axis index from the scenario.
        SimError::Fault(error) => CampaignError::InvalidFaultPlan {
            plan: campaign
                .fault_plans
                .iter()
                .position(|p| *p == scenario.fault_plan)
                .unwrap_or(usize::MAX),
            stages: scenario.stages,
            error,
        },
    }
}

fn scenario_result(
    scenario: &Scenario,
    metrics: &Metrics,
    path_diversity: Vec<u64>,
) -> ScenarioResult {
    let terminals = scenario.network.terminals();
    ScenarioResult {
        scenario: scenario.clone(),
        throughput: metrics.normalized_throughput(terminals),
        mean_latency: metrics.mean_latency(),
        p99_latency: metrics.p99_latency(),
        max_latency: metrics.max_latency,
        acceptance: metrics.acceptance_rate(),
        offered: metrics.offered,
        injected: metrics.injected,
        delivered: metrics.delivered,
        dropped: metrics.dropped(),
        dropped_arbitration: metrics.dropped_arbitration,
        dropped_backpressure: metrics.dropped_backpressure,
        flits_delivered: metrics.flits_delivered,
        flit_stalls: metrics.flit_stalls,
        mean_occupancy: metrics.mean_lane_occupancy(),
        in_flight: metrics.in_flight_at_end,
        dropped_fault: metrics.dropped_fault,
        unroutable_drops: metrics.unroutable_drops,
        delivered_despite_fault: metrics.delivered_despite_fault,
        fault_exposure: metrics.fault_exposure.clone(),
        path_diversity,
    }
}

/// Runs one grid point — all replications of one `(cell, traffic, load,
/// buffer mode, fault plan)` tuple — through the batched replication layer.
/// Every scenario in `group` shares its configuration except for the
/// derived seed, so the fabric, arenas and fault machinery are built once.
fn run_grid_point(
    campaign: &CampaignConfig,
    group: &[Scenario],
    shared: Option<&DiversityMap>,
    cache: &mut DiversityMap,
) -> Result<Vec<ScenarioResult>, CampaignError> {
    let first = &group[0];
    let net = first.network.build();
    let path_diversity = if first.fault_plan.is_empty() || first.network.stages() > 8 {
        Vec::new()
    } else if let Some(map) = shared {
        map.get(&first.network).cloned().unwrap_or_default()
    } else {
        cache
            .entry(first.network)
            .or_insert_with(|| min_routing::disjoint::path_diversity_histogram(&net))
            .clone()
    };
    let config = first.sim_config(campaign);
    let seeds: Vec<u64> = group.iter().map(|s| s.seed).collect();
    let metrics = crate::batch::run_replications(&net, &config, &seeds)
        .map_err(|error| map_sim_error(campaign, first, error))?;
    Ok(group
        .iter()
        .zip(&metrics)
        .map(|(scenario, m)| scenario_result(scenario, m, path_diversity.clone()))
        .collect())
}

/// **Phase 2 of 3** — executes one [`Shard`], returning its slotted
/// [`ScenarioResult`]s in the shard's scenario order.
///
/// Pure in the sense that matters for distribution: the output depends only
/// on `(config, shard)` — every scenario carries its own derived seed, so
/// the same shard produces byte-identical results on any thread, process,
/// machine or retry. Consecutive scenarios that differ only in their
/// replication seed are batched through [`crate::batch::run_replications`]
/// (and, when eligible, the bit-parallel [`crate::lane::LaneEngine`]), so
/// hand-built shards need no particular alignment to stay fast.
pub fn execute_shard(
    config: &CampaignConfig,
    shard: &Shard,
) -> Result<Vec<ScenarioResult>, CampaignError> {
    execute_shard_with(config, shard, None)
}

/// [`execute_shard`] with an optional precomputed disjoint-path diversity
/// map: the in-process runner computes each grid cell's histogram once per
/// campaign and shares it across every shard, instead of once per shard.
/// The histogram is a pure function of the topology, so both paths produce
/// identical bytes.
fn execute_shard_with(
    config: &CampaignConfig,
    shard: &Shard,
    shared: Option<&DiversityMap>,
) -> Result<Vec<ScenarioResult>, CampaignError> {
    let mut cache = DiversityMap::new();
    let mut out = Vec::with_capacity(shard.scenarios.len());
    let mut start = 0;
    while start < shard.scenarios.len() {
        // A grid point is a maximal run of scenarios identical up to the
        // replication number and derived seed.
        let first = &shard.scenarios[start];
        let end = start
            + shard.scenarios[start..]
                .iter()
                .take_while(|s| {
                    s.network == first.network
                        && s.traffic == first.traffic
                        && s.offered_load == first.offered_load
                        && s.buffer_mode == first.buffer_mode
                        && s.fault_plan == first.fault_plan
                })
                .count();
        let group = &shard.scenarios[start..end];
        out.extend(run_grid_point(config, group, shared, &mut cache)?);
        start = end;
    }
    Ok(out)
}

/// **Phase 3 of 3** — slots executed results by canonical scenario index
/// into the complete [`CampaignReport`].
///
/// Accepts the results in **any** order (they may arrive interleaved from
/// many executors); rejects duplicate slots, out-of-range slots and missing
/// slots with a typed [`MergeError`]. The assembled report — including its
/// JSON — is byte-identical to the single-threaded in-process run, which is
/// the integration oracle every executor topology is held to.
pub fn assemble(
    config: &CampaignConfig,
    results: Vec<ScenarioResult>,
) -> Result<CampaignReport, MergeError> {
    let report = CampaignReport::partial(config, results)?;
    let expected = config.scenario_count();
    if report.scenario_count != expected {
        // `partial` sorted and deduplicated the slots, so the first index
        // that does not match its position is the first hole.
        let missing = report
            .scenarios
            .iter()
            .enumerate()
            .find(|(slot, r)| r.scenario.index != *slot)
            .map_or(report.scenario_count, |(slot, _)| slot);
        return Err(MergeError::MissingSlot { slot: missing });
    }
    Ok(report)
}

/// The in-process executor: the thin compatibility wrapper chaining
/// [`CampaignConfig::plan`] → [`execute_shard`] → [`assemble`] across
/// `threads` scoped worker threads (`0` = one worker per available core).
///
/// Workers pull whole shards — grid points of `replications` consecutive
/// scenarios that differ only in their derived seed — from a shared atomic
/// cursor; the batch layer builds the fabric tables, switch arenas and
/// fault machinery once per grid point (and eligible unbuffered blocks go
/// through the bit-parallel [`crate::lane::LaneEngine`]). Results are
/// slotted by canonical index regardless of which worker ran them, keeping
/// the report independent of the thread count — and byte-identical to any
/// other executor of the same plan, including the `min-serve`
/// master/worker service.
pub fn run_campaign(
    config: &CampaignConfig,
    threads: usize,
) -> Result<CampaignReport, CampaignError> {
    let plan = config.plan()?;
    let shards = &plan.shards;
    let workers = effective_threads(threads, shards.len());
    let diversity = diversity_map(config);

    let cursor = AtomicUsize::new(0);
    let collected: Vec<(usize, Result<Vec<ScenarioResult>, CampaignError>)> =
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let shards = &shards;
                    let diversity = &diversity;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            if g >= shards.len() {
                                break;
                            }
                            let result = execute_shard_with(config, &shards[g], Some(diversity));
                            local.push((g, result));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });

    // Surface errors in shard order so a failing campaign reports the same
    // (lowest-index) scenario at any thread count.
    let mut collected = collected;
    collected.sort_by_key(|(g, _)| *g);
    let mut results = Vec::with_capacity(plan.scenario_count());
    for (_, shard_results) in collected {
        results.extend(shard_results?);
    }
    Ok(assemble(config, results)?)
}

/// Resolves the worker count: `0` means one per available core, and there is
/// never a point in more workers than grid points.
fn effective_threads(requested: usize, grid_points: usize) -> usize {
    let requested = if requested == 0 {
        thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    requested.clamp(1, grid_points.max(1))
}

fn aggregate(results: &[ScenarioResult]) -> CampaignAggregate {
    let mut a = CampaignAggregate {
        total_offered: 0,
        total_injected: 0,
        total_delivered: 0,
        total_dropped: 0,
        total_dropped_arbitration: 0,
        total_dropped_backpressure: 0,
        total_dropped_fault: 0,
        total_unroutable_drops: 0,
        total_delivered_despite_fault: 0,
        mean_throughput: 0.0,
        worst_p99_latency: 0,
        worst_mean_latency: 0.0,
    };
    for r in results {
        a.total_offered += r.offered;
        a.total_injected += r.injected;
        a.total_delivered += r.delivered;
        a.total_dropped += r.dropped;
        a.total_dropped_arbitration += r.dropped_arbitration;
        a.total_dropped_backpressure += r.dropped_backpressure;
        a.total_dropped_fault += r.dropped_fault;
        a.total_unroutable_drops += r.unroutable_drops;
        a.total_delivered_despite_fault += r.delivered_despite_fault;
        a.mean_throughput += r.throughput;
        a.worst_p99_latency = a.worst_p99_latency.max(r.p99_latency);
        a.worst_mean_latency = a.worst_mean_latency.max(r.mean_latency);
    }
    if !results.is_empty() {
        a.mean_throughput /= results.len() as f64;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig::over_catalog(3..=3)
            .with_traffic(vec![TrafficPattern::Uniform, TrafficPattern::BitReversal])
            .with_loads(vec![0.3, 0.9])
            .with_cycles(60, 0)
    }

    fn worm() -> BufferMode {
        BufferMode::Wormhole {
            lanes: 2,
            lane_depth: 2,
            flits_per_packet: 3,
        }
    }

    #[test]
    fn expansion_is_canonical_and_seeded_per_index() {
        let cfg = tiny().with_replications(2);
        let scenarios = cfg.scenarios().unwrap();
        assert_eq!(scenarios.len(), cfg.scenario_count());
        assert_eq!(scenarios.len(), 6 * 2 * 2 * 2);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.seed, scenario_seed(cfg.campaign_seed, i));
        }
        // Innermost axis is the replication; loads change next (one buffer
        // mode collapses that axis).
        assert_eq!(scenarios[0].replication, 0);
        assert_eq!(scenarios[1].replication, 1);
        assert_eq!(scenarios[0].offered_load, scenarios[1].offered_load);
        assert_ne!(scenarios[0].offered_load, scenarios[2].offered_load);
        // All derived seeds are distinct.
        let seeds: std::collections::HashSet<u64> = scenarios.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), scenarios.len());
    }

    #[test]
    fn buffer_modes_are_a_grid_axis_between_loads_and_replications() {
        let cfg = tiny()
            .with_buffer_modes(vec![BufferMode::Unbuffered, BufferMode::Fifo(4), worm()])
            .with_replications(2);
        let scenarios = cfg.scenarios().unwrap();
        assert_eq!(scenarios.len(), 6 * 2 * 2 * 3 * 2);
        assert_eq!(scenarios.len(), cfg.scenario_count());
        // Replication is innermost, buffer mode next.
        assert_eq!(scenarios[0].buffer_mode, BufferMode::Unbuffered);
        assert_eq!(scenarios[1].buffer_mode, BufferMode::Unbuffered);
        assert_eq!(scenarios[2].buffer_mode, BufferMode::Fifo(4));
        assert_eq!(scenarios[4].buffer_mode, worm());
        assert_eq!(scenarios[5].replication, 1);
        // The load changes only after the whole buffer × replication block.
        assert_eq!(scenarios[0].offered_load, scenarios[5].offered_load);
        assert_ne!(scenarios[0].offered_load, scenarios[6].offered_load);
    }

    #[test]
    fn fault_plans_are_a_grid_axis_between_buffer_modes_and_replications() {
        let one_link = FaultPlan::none().with_dead_link(0, 1, 1, 0);
        let cfg = tiny()
            .with_buffer_modes(vec![BufferMode::Unbuffered, worm()])
            .with_fault_plans(vec![FaultPlan::none(), one_link.clone()])
            .with_replications(2);
        let scenarios = cfg.scenarios().unwrap();
        assert_eq!(scenarios.len(), 6 * 2 * 2 * 2 * 2 * 2);
        assert_eq!(scenarios.len(), cfg.scenario_count());
        // Replication innermost, then the fault plan, then the buffer mode.
        assert_eq!(scenarios[0].fault_plan, FaultPlan::none());
        assert_eq!(scenarios[1].fault_plan, FaultPlan::none());
        assert_eq!(scenarios[2].fault_plan, one_link);
        assert_eq!(scenarios[3].replication, 1);
        assert_eq!(scenarios[0].buffer_mode, scenarios[3].buffer_mode);
        assert_ne!(scenarios[0].buffer_mode, scenarios[4].buffer_mode);
    }

    #[test]
    fn an_explicit_fault_free_axis_is_byte_identical_to_the_default() {
        let cfg = tiny();
        let explicit = tiny().with_fault_plans(vec![FaultPlan::none()]);
        let a = run_campaign(&cfg, 2).unwrap();
        let b = run_campaign(&explicit, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn fault_campaigns_report_reliability_and_stay_thread_invariant() {
        let cfg = tiny().with_loads(vec![0.8]).with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::none().with_dead_link(1, 0, 1, 0),
        ]);
        let one = run_campaign(&cfg, 1).unwrap();
        let many = run_campaign(&cfg, 5).unwrap();
        assert_eq!(one.to_json(), many.to_json());
        assert_eq!(one.fault_plans, cfg.fault_plans);
        assert!(one.aggregate.total_unroutable_drops > 0);
        assert!(one.aggregate.total_delivered_despite_fault > 0);
        for r in &one.scenarios {
            assert_eq!(r.injected, r.delivered + r.dropped + r.in_flight);
            if r.scenario.fault_plan.is_empty() {
                assert_eq!(r.unroutable_drops, 0);
                assert!(r.path_diversity.is_empty());
            } else {
                // Banyan fabrics: every pair has exactly one disjoint path.
                let cells = 1u64 << (r.scenario.stages - 1);
                assert_eq!(r.path_diversity, vec![0, cells * cells]);
            }
        }
    }

    #[test]
    fn fault_plans_that_do_not_fit_a_grid_cell_are_rejected() {
        // Stage 3 links exist at n=4 but not in the n=3 cells of the grid.
        let cfg = tiny().with_fault_plans(vec![FaultPlan::none().with_dead_link(3, 0, 0, 0)]);
        assert_eq!(
            cfg.scenarios().unwrap_err(),
            CampaignError::InvalidFaultPlan {
                plan: 0,
                stages: 3,
                error: crate::fault::FaultError::LinkStageOutOfRange {
                    stage: 3,
                    connections: 2
                }
            }
        );
        assert_eq!(
            tiny().with_fault_plans(vec![]).scenarios().unwrap_err(),
            CampaignError::EmptyAxis("fault_plans")
        );
    }

    #[test]
    fn traffic_that_does_not_fit_a_grid_cell_is_rejected() {
        use crate::traffic::TrafficError;
        // The n=3 grid cells have 4 cells per stage; a 3-entry permutation
        // and a NaN hot-spot fraction must both fail validation up front.
        let cfg = tiny().with_traffic(vec![
            TrafficPattern::Uniform,
            TrafficPattern::Permutation(vec![0, 1, 2]),
        ]);
        assert_eq!(
            cfg.scenarios().unwrap_err(),
            CampaignError::InvalidTraffic {
                pattern: 1,
                cells: 4,
                error: TrafficError::PermutationLength { len: 3, cells: 4 }
            }
        );
        let cfg = tiny().with_traffic(vec![TrafficPattern::Hotspot {
            fraction: f64::NAN,
            target: 0,
        }]);
        assert!(matches!(
            cfg.scenarios().unwrap_err(),
            CampaignError::InvalidTraffic {
                pattern: 0,
                error: TrafficError::NonFinite { .. },
                ..
            }
        ));
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert_eq!(
            tiny().with_loads(vec![]).scenarios().unwrap_err(),
            CampaignError::EmptyAxis("loads")
        );
        assert_eq!(
            tiny()
                .with_cells(Vec::<NetworkSpec>::new())
                .scenarios()
                .unwrap_err(),
            CampaignError::EmptyAxis("cells")
        );
        assert_eq!(
            tiny().with_traffic(vec![]).scenarios().unwrap_err(),
            CampaignError::EmptyAxis("traffic")
        );
        assert_eq!(
            tiny().with_buffer_modes(vec![]).scenarios().unwrap_err(),
            CampaignError::EmptyAxis("buffer_modes")
        );
        assert_eq!(
            tiny()
                .with_buffer(BufferMode::Fifo(0))
                .scenarios()
                .unwrap_err(),
            CampaignError::InvalidBuffer(ConfigError::ZeroParameter("fifo depth"))
        );
        assert_eq!(
            tiny().with_replications(0).scenarios().unwrap_err(),
            CampaignError::EmptyAxis("replications")
        );
        assert_eq!(
            tiny().with_loads(vec![1.5]).scenarios().unwrap_err(),
            CampaignError::InvalidLoad(1.5)
        );
        assert_eq!(
            tiny().with_cycles(0, 0).scenarios().unwrap_err(),
            CampaignError::ZeroCycles
        );
        assert_eq!(
            tiny().with_cycles(50, 100).scenarios().unwrap_err(),
            CampaignError::WarmupTooLong {
                warmup: 100,
                cycles: 50
            }
        );
        // Unbuildable stage counts are rejected up front rather than
        // panicking inside a worker thread.
        assert_eq!(
            tiny()
                .with_cells(vec![NetworkSpec::catalog(ClassicalNetwork::Omega, 1)])
                .scenarios()
                .unwrap_err(),
            CampaignError::InvalidStages(1)
        );
        assert_eq!(
            tiny()
                .with_cells(vec![NetworkSpec::catalog(ClassicalNetwork::Omega, 64)])
                .scenarios()
                .unwrap_err(),
            CampaignError::InvalidStages(64)
        );
    }

    #[test]
    fn report_is_independent_of_thread_count() {
        let cfg = tiny().with_buffer_modes(vec![BufferMode::Unbuffered, worm()]);
        let one = run_campaign(&cfg, 1).unwrap();
        let many = run_campaign(&cfg, 7).unwrap();
        let auto = run_campaign(&cfg, 0).unwrap();
        assert_eq!(one, many);
        assert_eq!(one.to_json(), many.to_json());
        assert_eq!(one.to_json(), auto.to_json());
    }

    #[test]
    fn batched_replications_match_fresh_per_scenario_simulators() {
        // 12 replications exceed the packed-engine threshold, so the
        // unbuffered scenarios run 12-wide through the LaneEngine and the
        // FIFO scenarios through the reseeded scalar engine — every result
        // must still be identical to a fresh simulator per scenario, and
        // the report must stay thread-invariant.
        let cfg = tiny()
            .with_loads(vec![0.7])
            .with_buffer_modes(vec![BufferMode::Unbuffered, BufferMode::Fifo(3)])
            .with_fault_plans(vec![
                FaultPlan::none(),
                FaultPlan::none().with_dead_link(1, 0, 1, 0),
            ])
            .with_replications(12);
        let report = run_campaign(&cfg, 3).unwrap();
        assert_eq!(report.to_json(), run_campaign(&cfg, 1).unwrap().to_json());
        for r in &report.scenarios {
            let net = r.scenario.network.build();
            let metrics = crate::engine::simulate(net, r.scenario.sim_config(&cfg)).unwrap();
            assert_eq!(r.delivered, metrics.delivered, "{:?}", r.scenario);
            assert_eq!(r.offered, metrics.offered, "{:?}", r.scenario);
            assert_eq!(r.dropped_fault, metrics.dropped_fault, "{:?}", r.scenario);
            assert_eq!(r.p99_latency, metrics.p99_latency(), "{:?}", r.scenario);
            assert_eq!(r.fault_exposure, metrics.fault_exposure, "{:?}", r.scenario);
        }
    }

    #[test]
    fn report_aggregates_and_conserves() {
        let report = run_campaign(&tiny(), 4).unwrap();
        assert_eq!(report.scenario_count, report.scenarios.len());
        let sum: u64 = report.scenarios.iter().map(|r| r.delivered).sum();
        assert_eq!(report.aggregate.total_delivered, sum);
        for r in &report.scenarios {
            assert_eq!(r.injected, r.delivered + r.dropped + r.in_flight, "{r:?}");
            assert_eq!(r.dropped, r.dropped_arbitration + r.dropped_backpressure);
            assert!(r.p99_latency <= r.max_latency);
            assert!(r.throughput > 0.0 && r.throughput <= 1.0);
        }
        assert_eq!(
            report.aggregate.total_dropped,
            report.aggregate.total_dropped_arbitration
                + report.aggregate.total_dropped_backpressure
        );
        assert!(report.aggregate.mean_throughput > 0.0);
        // The summary table has one row per scenario plus header and footer.
        assert_eq!(
            report.summary_table().lines().count(),
            report.scenario_count + 2
        );
    }

    #[test]
    fn different_campaign_seeds_differ() {
        let a = run_campaign(&tiny().with_seed(1), 2).unwrap();
        let b = run_campaign(&tiny().with_seed(2), 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let report = run_campaign(
            &tiny()
                .with_loads(vec![0.4])
                .with_buffer_modes(vec![BufferMode::Fifo(2), worm()]),
            2,
        )
        .unwrap();
        let json = report.to_json();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_tuple_grids_keep_their_pre_spec_json_layout() {
        // Old-style `(ClassicalNetwork, usize)` grids flow through the
        // (now deprecated) tuple shims, and both the config and the report
        // must render byte-for-byte as they did before the `NetworkSpec`
        // redesign: tuple cells as two-element arrays, scenario networks as
        // the bare family name next to a `stages` field.
        let cfg = CampaignConfig::over_catalog(3..=3)
            .with_cell_tuples(vec![
                (ClassicalNetwork::Omega, 3),
                (ClassicalNetwork::ReverseBaseline, 4),
            ])
            .with_cycles(40, 0);
        let cfg_json = serde_json::to_string(&cfg).unwrap();
        assert!(
            cfg_json.contains("\"cells\":[[\"Omega\",3],[\"ReverseBaseline\",4]]"),
            "{cfg_json}"
        );
        let back: CampaignConfig = serde_json::from_str(&cfg_json).unwrap();
        assert_eq!(back, cfg);

        let report = run_campaign(&cfg, 2).unwrap();
        let json = report.to_json();
        assert!(
            json.contains("\"network\":\"Omega\",\"stages\":3"),
            "{json}"
        );
        assert!(
            json.contains("\"network\":\"ReverseBaseline\",\"stages\":4"),
            "{json}"
        );
        assert_eq!(CampaignReport::from_json(&json).unwrap(), report);
    }

    #[test]
    fn benes_scenarios_render_the_tagged_spec_and_round_trip() {
        let cfg = CampaignConfig::over_catalog(3..=3)
            .with_cells(vec![NetworkSpec::benes(3)])
            .with_traffic(vec![TrafficPattern::Permutation(vec![2, 3, 0, 1])])
            .with_loads(vec![1.0])
            .with_cycles(40, 0);
        let report = run_campaign(&cfg, 1).unwrap();
        let json = report.to_json();
        assert!(
            json.contains("\"network\":{\"Benes\":{\"n\":3}},\"stages\":5"),
            "{json}"
        );
        assert_eq!(CampaignReport::from_json(&json).unwrap(), report);
        // Conflict-free circuits: full-load permutation traffic through the
        // looping-configured Benes never drops to arbitration.
        for r in &report.scenarios {
            assert_eq!(r.scenario.network, NetworkSpec::benes(3));
            assert_eq!(r.dropped_arbitration, 0, "{r:?}");
            assert_eq!(r.unroutable_drops, 0, "{r:?}");
            assert!(r.delivered > 0);
        }
    }

    #[test]
    fn benes_cells_validate_fault_plans_against_their_real_geometry() {
        // Benes(3) has 5 stages but only 4 cells per stage. The old
        // `1 << (stages - 1)` formula would have accepted cell 15 here and
        // panicked inside a worker; the spec-aware validation rejects it as
        // a typed error up front.
        let bad = FaultPlan::none().with_dead_switch(0, 15, 0);
        let err = CampaignConfig::over_catalog(3..=3)
            .with_cells(vec![NetworkSpec::benes(3)])
            .with_fault_plans(vec![bad])
            .scenarios()
            .unwrap_err();
        match err {
            CampaignError::InvalidFaultPlan {
                plan: 0, stages: 5, ..
            } => {}
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
        // In-range Benes fault sites are accepted, including stages beyond
        // the catalog's depth at the same cell count.
        let deep = FaultPlan::none().with_dead_link(3, 2, 1, 0);
        CampaignConfig::over_catalog(3..=3)
            .with_cells(vec![NetworkSpec::benes(3)])
            .with_fault_plans(vec![deep])
            .scenarios()
            .unwrap();
    }

    #[test]
    fn scenario_seed_mixes_both_inputs() {
        assert_ne!(scenario_seed(0, 0), scenario_seed(0, 1));
        assert_ne!(scenario_seed(0, 0), scenario_seed(1, 0));
        assert_ne!(scenario_seed(7, 3), scenario_seed(3, 7));
    }

    // ------------------------------------------------------------------
    // plan / execute_shard / assemble
    // ------------------------------------------------------------------

    #[test]
    fn plan_covers_every_scenario_exactly_once_in_order() {
        let cfg = tiny().with_replications(3);
        let plan = cfg.plan().unwrap();
        assert_eq!(plan.shard_count(), cfg.scenario_count() / 3);
        assert_eq!(plan.scenario_count(), cfg.scenario_count());
        let mut next = 0usize;
        for (id, shard) in plan.shards.iter().enumerate() {
            assert_eq!(shard.id, id);
            // One grid point per shard: all three replications, nothing else.
            assert_eq!(shard.len(), 3);
            assert_eq!(shard.first_index(), Some(next));
            for s in &shard.scenarios {
                assert_eq!(s.index, next);
                next += 1;
            }
            let first = &shard.scenarios[0];
            for s in &shard.scenarios[1..] {
                assert_eq!(s.network, first.network);
                assert_eq!(s.offered_load, first.offered_load);
                assert_eq!(s.buffer_mode, first.buffer_mode);
            }
        }
        assert_eq!(next, cfg.scenario_count());
    }

    #[test]
    fn plan_chunked_groups_points_and_rejects_zero() {
        let cfg = tiny().with_replications(2);
        let points = cfg.scenario_count() / 2;
        let plan = cfg.plan_chunked(4).unwrap();
        assert_eq!(plan.shard_count(), points.div_ceil(4));
        assert_eq!(plan.scenario_count(), cfg.scenario_count());
        assert_eq!(plan.shards[0].len(), 4 * 2);
        assert_eq!(
            cfg.plan_chunked(0).unwrap_err(),
            CampaignError::ZeroShardSize
        );
        // A chunk larger than the grid degenerates to one shard.
        let one = cfg.plan_chunked(points + 100).unwrap();
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn execute_and_assemble_match_run_campaign_byte_for_byte() {
        let cfg = tiny().with_replications(2).with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::none().with_dead_link(1, 0, 1, 0),
        ]);
        let reference = run_campaign(&cfg, 4).unwrap();
        let plan = cfg.plan_chunked(3).unwrap();
        // Execute shards out of order, as remote workers would.
        let mut results = Vec::new();
        for shard in plan.shards.iter().rev() {
            results.extend(execute_shard(&cfg, shard).unwrap());
        }
        let assembled = assemble(&cfg, results).unwrap();
        assert_eq!(assembled.to_json(), reference.to_json());
    }

    #[test]
    fn assemble_rejects_gaps_duplicates_and_strays() {
        let cfg = tiny();
        let plan = cfg.plan().unwrap();
        let full: Vec<ScenarioResult> = plan
            .shards
            .iter()
            .flat_map(|s| execute_shard(&cfg, s).unwrap())
            .collect();

        let mut missing = full.clone();
        missing.remove(2);
        assert_eq!(
            assemble(&cfg, missing).unwrap_err(),
            MergeError::MissingSlot { slot: 2 }
        );

        let mut duplicated = full.clone();
        duplicated.push(full[5].clone());
        assert_eq!(
            assemble(&cfg, duplicated).unwrap_err(),
            MergeError::DuplicateSlot { slot: 5 }
        );

        let mut stray = full.clone();
        let mut extra = full.last().unwrap().clone();
        extra.scenario.index = cfg.scenario_count() + 3;
        stray.push(extra);
        assert_eq!(
            assemble(&cfg, stray).unwrap_err(),
            MergeError::SlotOutOfRange {
                slot: cfg.scenario_count() + 3,
                slots: cfg.scenario_count(),
            }
        );
    }

    #[test]
    fn partial_reports_merge_into_the_complete_report() {
        let cfg = tiny().with_replications(2);
        let reference = run_campaign(&cfg, 1).unwrap();
        let plan = cfg.plan_chunked(2).unwrap();
        let mut merged = CampaignReport::empty(&cfg);
        assert!(!merged.is_complete_for(&cfg));
        // Merge shard-sized partial reports in reverse order.
        for shard in plan.shards.iter().rev() {
            let part = CampaignReport::partial(&cfg, execute_shard(&cfg, shard).unwrap()).unwrap();
            merged.merge(&part).unwrap();
        }
        assert!(merged.is_complete_for(&cfg));
        assert_eq!(merged.to_json(), reference.to_json());
    }

    #[test]
    fn merge_rejects_overlaps_without_corrupting_the_target() {
        let cfg = tiny();
        let plan = cfg.plan_chunked(2).unwrap();
        let a =
            CampaignReport::partial(&cfg, execute_shard(&cfg, &plan.shards[0]).unwrap()).unwrap();
        let mut target = a.clone();
        let overlap_slot = plan.shards[0].first_index().unwrap();
        assert_eq!(
            target.merge(&a).unwrap_err(),
            MergeError::DuplicateSlot { slot: overlap_slot }
        );
        // The failed merge must leave the target untouched and retryable.
        assert_eq!(target, a);
        let b =
            CampaignReport::partial(&cfg, execute_shard(&cfg, &plan.shards[1]).unwrap()).unwrap();
        target.merge(&b).unwrap();
        assert_eq!(
            target.scenario_count,
            plan.shards[0].len() + plan.shards[1].len()
        );
    }

    #[test]
    fn merge_rejects_header_mismatches() {
        let cfg = tiny();
        let other_cfg = tiny().with_seed(cfg.campaign_seed ^ 0xdead_beef);
        let plan = cfg.plan_chunked(2).unwrap();
        let other_plan = other_cfg.plan_chunked(2).unwrap();
        let mut a =
            CampaignReport::partial(&cfg, execute_shard(&cfg, &plan.shards[0]).unwrap()).unwrap();
        let b = CampaignReport::partial(
            &other_cfg,
            execute_shard(&other_cfg, &other_plan.shards[1]).unwrap(),
        )
        .unwrap();
        assert_eq!(
            a.merge(&b).unwrap_err(),
            MergeError::HeaderMismatch {
                field: "campaign_seed"
            }
        );
    }
}
