//! Word-packed simulation of up to 64 unbuffered replications at once.
//!
//! The [`LaneEngine`] follows the `BitMatrix` precedent of the GF(2)
//! kernels: instead of simulating replications one after another, it packs
//! one replication per bit of a `u64` and runs the whole batch through a
//! single cycle loop. Queue occupancy, out-port requests, conflict and drop
//! sets all become bitwise operations over entire replication words, and
//! per-replication event counts (deliveries, arbitration losses, occupied
//! slots) accumulate in bit-sliced `VerticalCounter`s — carry-save adders
//! over replication words — so the hot phases never iterate over set bits.
//! Only the genuinely per-replication work — RNG draws and the rare
//! fault-loss bookkeeping — walks individual bits.
//!
//! # Why this is exact, not approximate
//!
//! Three structural facts of the unbuffered model make the packed engine
//! bit-identical to running [`crate::Simulator`] once per replication:
//!
//! * **Lockstep transit.** An unbuffered packet never waits: it is injected
//!   at stage 0 and crosses exactly one stage per cycle until it is
//!   delivered or dropped. Every replication therefore has the *same*
//!   queue-occupancy schedule shape — a packet delivered at cycle `c` was
//!   injected at `c - stages` with latency exactly `stages` — so per-slot
//!   injection times need not be stored at all, and the whole latency
//!   statistic (total, maximum, histogram) collapses to one measured
//!   delivery count per replication. The same argument removes the
//!   destination planes: destination-tag routing delivers to the tag's
//!   destination by construction, so the scalar engine's misroute audit is
//!   a constant zero, and the packed engine pins that equality through the
//!   scalar-oracle tests instead of re-auditing per packet.
//! * **Per-replication RNG streams.** Each replication owns its own
//!   ChaCha8 stream, and within one replication the engine draws in the
//!   same order as the scalar engine: switch coins in (stage descending,
//!   cell ascending) order, then injection draws in (cell ascending,
//!   terminal) order. Draws happen only for bits that would draw in the
//!   scalar engine (a coin only where that replication has a same-port
//!   conflict), so the streams stay aligned.
//! * **Structural sharing.** The fabric tables and the fault schedule are
//!   replication-independent, so dead-cell and link-status checks apply
//!   uniformly to whole words, and one `FaultRuntime` (with its cached
//!   reroute epochs) serves the entire batch.
//!
//! Metric updates within a cycle are commutative (sums, max, histogram
//! increments), so per-bit accumulation order does not affect the result.
//!
//! The scalar engine remains the reference oracle; the batching layer
//! ([`crate::batch`]) routes eligible workloads here and the proptest
//! oracle pins the two paths byte-identical.

use crate::batch::LANE_MAX_STAGES;
use crate::config::{BufferMode, ConfigError, SimConfig};
use crate::engine::SimError;
use crate::fabric::Fabric;
use crate::fault::{FaultRuntime, FaultView, LinkStatus};
use crate::metrics::Metrics;
use crate::traffic::{DestSampler, TrafficPattern};
use min_core::ConnectionNetwork;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Replications simulated per machine word.
pub const LANE_WIDTH: usize = 64;

/// A bit-sliced counter: plane `i` holds bit `i` of every replication's
/// running count, so adding a replication-mask of simultaneous events is a
/// carry-save ripple over the planes — `O(log count)` word operations per
/// add, independent of how many replications the mask covers.
#[derive(Debug, Default)]
struct VerticalCounter {
    planes: Vec<u64>,
}

impl VerticalCounter {
    /// Adds one event for every replication whose bit is set in `mask`.
    #[inline]
    fn add(&mut self, mut mask: u64) {
        if mask == 0 {
            return;
        }
        for plane in self.planes.iter_mut() {
            let carry = *plane & mask;
            *plane ^= mask;
            mask = carry;
            if mask == 0 {
                return;
            }
        }
        self.planes.push(mask);
    }

    /// The accumulated count for replication `r`.
    fn count(&self, r: usize) -> u64 {
        self.planes
            .iter()
            .enumerate()
            .map(|(i, plane)| ((plane >> r) & 1) << i)
            .sum()
    }
}

/// Split mutable borrows of the engine state handed to the monomorphized
/// injection loop ([`InjectCtx::run`]).
struct InjectCtx<'a> {
    cells: usize,
    lanes: usize,
    load: f64,
    conn_bits: usize,
    occ: &'a mut [u64],
    tag: &'a mut [u64],
    rngs: &'a mut [ChaCha8Rng],
    offered: &'a mut [u64],
    injected: &'a mut [u64],
    unroutable: &'a mut [u64],
}

impl InjectCtx<'_> {
    /// Cell-major, replication-minor injection: each replication still draws
    /// in the scalar (cell ascending, terminal) order on its own stream,
    /// while one cell's two slot words and tag planes stay hot across all
    /// replications instead of re-walking the whole stage-0 region once per
    /// replication. `dest_tag` resolves one accepted offer to its routing
    /// tag (`None` when the fault plan leaves the pair unroutable).
    fn run<F: FnMut(u32, &mut ChaCha8Rng) -> Option<u32>>(self, mut dest_tag: F) {
        let InjectCtx {
            cells,
            lanes,
            load,
            conn_bits,
            occ,
            tag,
            rngs,
            offered,
            injected,
            unroutable,
        } = self;
        let mut new_offered = [0u64; LANE_WIDTH];
        let mut new_injected = [0u64; LANE_WIDTH];
        let mut new_unroutable = [0u64; LANE_WIDTH];
        for cell in 0..cells {
            let base = cell * 2;
            // One cell's two slots accumulate in stack-local planes across
            // all replications and flush to the arena once per cell, so the
            // per-packet deposit never round-trips through memory.
            let mut slot_occ = [0u64; 2];
            let mut slot_tags = [[0u64; LANE_MAX_STAGES]; 2];
            for (r, rng) in rngs.iter_mut().enumerate().take(lanes) {
                let bit = 1u64 << r;
                for _terminal in 0..2 {
                    if !rng.gen_bool(load) {
                        continue;
                    }
                    new_offered[r] += 1;
                    let Some(packet_tag) = dest_tag(cell as u32, rng) else {
                        new_unroutable[r] += 1;
                        continue;
                    };
                    new_injected[r] += 1;
                    // Front slot first, back slot for this cycle's second
                    // packet — branchless off the front-slot occupancy bit.
                    let sel = ((slot_occ[0] >> r) & 1) as usize;
                    for (b, plane) in slot_tags[sel][..conn_bits].iter_mut().enumerate() {
                        *plane |= (u64::from(packet_tag >> b) & 1) << r;
                    }
                    slot_occ[sel] |= bit;
                }
            }
            // The switching pass drained stage 0, so the flush is a plain
            // store — including the zero planes, which replaces a wholesale
            // clear of the stage-0 tag region.
            occ[base] = slot_occ[0];
            occ[base + 1] = slot_occ[1];
            tag[base * conn_bits..(base + 1) * conn_bits]
                .copy_from_slice(&slot_tags[0][..conn_bits]);
            tag[(base + 1) * conn_bits..(base + 2) * conn_bits]
                .copy_from_slice(&slot_tags[1][..conn_bits]);
        }
        for r in 0..lanes {
            offered[r] += new_offered[r];
            injected[r] += new_injected[r];
            unroutable[r] += new_unroutable[r];
        }
    }
}

/// A word-packed engine running up to [`LANE_WIDTH`] independent unbuffered
/// replications of one scenario in lockstep.
///
/// Construct with one seed per replication ([`LaneEngine::new`]), then
/// [`LaneEngine::run`] the configured cycle budget; the returned metrics
/// are bit-identical to running [`crate::Simulator`] once per seed.
#[derive(Debug)]
pub struct LaneEngine {
    fabric: Fabric,
    config: SimConfig,
    /// One independent ChaCha8 stream per replication, seeded exactly like
    /// the scalar engine.
    rngs: Vec<ChaCha8Rng>,
    /// Cold per-replication accumulators: the fault-loss counters and the
    /// per-stage exposure vectors land here directly; everything else is
    /// folded in from the vertical counters when the run finishes.
    metrics: Vec<Metrics>,
    faults: Option<FaultRuntime>,
    cycle: u64,
    /// Active replications (bits `0..lanes` of every word are meaningful).
    lanes: usize,
    stages: usize,
    cells: usize,
    /// Tag bits consulted while switching (`stages - 1` port choices).
    conn_bits: usize,
    /// Destination sampler of the traffic pattern, shared with the scalar
    /// engine's draw path so both stay bit-identical.
    sampler: DestSampler,
    /// Queue occupancy, one word per slot: slot `(stage*cells + cell)*2 + q`
    /// holds position `q` (0 = front) of that cell's two-packet queue; bit
    /// `r` is set when replication `r` has a packet there.
    occ: Vec<u64>,
    /// Bit-planes of the queued routing tags: word `slot*conn_bits + b`
    /// holds bit `b` of every replication's tag in `slot`.
    tag: Vec<u64>,
    /// Downstream cell reached from `(stage, cell, port)`, precomputed so
    /// the switching pass never re-evaluates the connection permutations:
    /// entry `(stage * cells + cell) * 2 + port`.
    next: Vec<u32>,
    /// Per-replication offered / injected / unroutable-refusal counts,
    /// updated inside the (already per-replication) injection RNG loop.
    offered: Vec<u64>,
    injected: Vec<u64>,
    unroutable: Vec<u64>,
    /// Per-replication occupancy-cycles already accounted for dropped
    /// packets (fault losses record `stage + 1` at drop time).
    occ_fault: Vec<u64>,
    /// Delivered packets per replication.
    vc_delivered: VerticalCounter,
    /// Deliveries inside the measurement window (each with the constant
    /// latency `stages`).
    vc_measured: VerticalCounter,
    /// Deliveries while at least one fault was active.
    vc_despite: VerticalCounter,
    /// Arbitration losses per replication, split by the stage the packet
    /// was leaving — the split prices each loss's occupancy-cycles.
    vc_arb: Vec<VerticalCounter>,
}

impl LaneEngine {
    /// Builds a packed engine for `seeds.len()` replications of the given
    /// unbuffered scenario (one seed per replication, in output order).
    ///
    /// # Panics
    ///
    /// Panics when `config.buffer_mode` is not [`BufferMode::Unbuffered`],
    /// the traffic pattern is stateful ([`TrafficPattern::is_stateful`] —
    /// ON/OFF chains and trace schedules run on the scalar engine), `seeds`
    /// is empty or longer than [`LANE_WIDTH`], or the fabric is deeper than
    /// [`LANE_MAX_STAGES`] — the batching layer gates eligibility before
    /// constructing one.
    pub fn new(net: ConnectionNetwork, config: SimConfig, seeds: &[u64]) -> Result<Self, SimError> {
        assert_eq!(
            config.buffer_mode,
            BufferMode::Unbuffered,
            "the packed engine models only the unbuffered core"
        );
        assert!(
            !config.traffic.is_stateful(),
            "stateful traffic patterns run on the scalar engine"
        );
        assert!(
            !seeds.is_empty() && seeds.len() <= LANE_WIDTH,
            "1..={LANE_WIDTH} replications per word, got {}",
            seeds.len()
        );
        config.validate()?;
        let fabric = Fabric::new(net)?;
        config
            .traffic
            .validate_for(fabric.cells() as u32)
            .map_err(ConfigError::from)?;
        let faults = if config.fault_plan.is_empty() {
            None
        } else {
            config
                .fault_plan
                .validate(fabric.stages(), fabric.cells())?;
            Some(FaultRuntime::new(
                &config.fault_plan,
                fabric.stages(),
                fabric.cells(),
            ))
        };
        let stages = fabric.stages();
        assert!(
            stages <= LANE_MAX_STAGES,
            "the packed engine holds at most {LANE_MAX_STAGES} stages, got {stages}"
        );
        let cells = fabric.cells();
        let conn_bits = stages - 1;
        let sampler = config
            .traffic
            .sampler(cells as u32, fabric.network().width());
        let slots = stages * cells * 2;
        let mut next = Vec::with_capacity((stages - 1) * cells * 2);
        for stage in 0..stages - 1 {
            for cell in 0..cells {
                for port in 0..2u8 {
                    next.push(fabric.next_cell(stage, cell as u32, port));
                }
            }
        }
        Ok(LaneEngine {
            rngs: seeds
                .iter()
                .map(|&s| ChaCha8Rng::seed_from_u64(s))
                .collect(),
            metrics: vec![Metrics::default(); seeds.len()],
            faults,
            cycle: 0,
            lanes: seeds.len(),
            stages,
            cells,
            conn_bits,
            sampler,
            occ: vec![0; slots],
            tag: vec![0; slots * conn_bits],
            next,
            offered: vec![0; seeds.len()],
            injected: vec![0; seeds.len()],
            unroutable: vec![0; seeds.len()],
            occ_fault: vec![0; seeds.len()],
            vc_delivered: VerticalCounter::default(),
            vc_measured: VerticalCounter::default(),
            vc_despite: VerticalCounter::default(),
            vc_arb: (0..stages - 1)
                .map(|_| VerticalCounter::default())
                .collect(),
            fabric,
            config,
        })
    }

    #[inline]
    fn base(&self, stage: usize, cell: usize) -> usize {
        (stage * self.cells + cell) * 2
    }

    /// Drops the replications in `mask` holding a packet in `slot`'s word as
    /// fault losses at `stage`. This is the one per-bit drop path — it only
    /// runs while a fault plan is active.
    fn fault_drop(&mut self, mut mask: u64, stage: usize) {
        while mask != 0 {
            let r = mask.trailing_zeros() as usize;
            self.metrics[r].dropped_fault += 1;
            self.metrics[r].record_fault_exposure(stage);
            // A packet removed at `stage` was counted by `stage + 1`
            // end-of-cycle occupancy snapshots (stages 0..=stage).
            self.occ_fault[r] += stage as u64 + 1;
            mask &= mask - 1;
        }
    }

    /// Phase 1 — drain the last stage. Every packet delivered this cycle
    /// was injected exactly `stages` cycles ago (lockstep transit), so the
    /// latency is the constant `stages`, the warm-up test reduces to a
    /// uniform cycle comparison, and the whole phase is three vertical-
    /// counter adds per occupied slot word.
    fn deliver(&mut self, faults: &FaultView<'_>) {
        let last = self.stages - 1;
        let degraded = faults.any_active();
        let measured = self.cycle >= self.config.warmup + self.stages as u64;
        for cell in 0..self.cells {
            let base = self.base(last, cell);
            if self.occ[base] | self.occ[base + 1] == 0 {
                continue;
            }
            if faults.cell_dead(last, cell) {
                self.fault_drop(self.occ[base], last);
                self.fault_drop(self.occ[base + 1], last);
                self.occ[base] = 0;
                self.occ[base + 1] = 0;
                continue;
            }
            for q in 0..2 {
                let m = self.occ[base + q];
                if m == 0 {
                    continue;
                }
                self.vc_delivered.add(m);
                if measured {
                    self.vc_measured.add(m);
                }
                if degraded {
                    self.vc_despite.add(m);
                }
                self.occ[base + q] = 0;
            }
        }
    }

    /// Moves the `moved` replications' packets (from the front/back slots of
    /// the upstream queue per `fwd_front`/`fwd_back`) into the downstream
    /// queue at `dst_base`, filling the front slot first like the scalar
    /// push order.
    ///
    /// Only tag planes `from_plane..` travel: plane `b` is consulted once,
    /// by the switching pass at stage `b`, so bits already spent on routing
    /// are dead weight — the copy shrinks every hop and the final hop into
    /// the delivery stage moves no tag bits at all.
    fn merge_into(
        &mut self,
        src_base: usize,
        dst_base: usize,
        from_plane: usize,
        fwd_front: u64,
        fwd_back: u64,
    ) {
        let moved = fwd_front | fwd_back;
        let first = moved & !self.occ[dst_base];
        let second = moved & self.occ[dst_base];
        // 2-in-regularity bounds arrivals at two per cell per cycle, and the
        // downstream queue was drained earlier this cycle, so the back slot
        // can never already be occupied when the front one is.
        debug_assert_eq!(second & self.occ[dst_base + 1], 0, "unbuffered overflow");
        // The destination stage is strictly downstream, so splitting at its
        // front row yields disjoint source and destination slices and the
        // plane loops below run without bounds checks.
        let cb = self.conn_bits;
        let (src_rows, dst_rows) = self.tag.split_at_mut(dst_base * cb);
        let src_front = &src_rows[src_base * cb + from_plane..(src_base + 1) * cb];
        let src_back = &src_rows[(src_base + 1) * cb + from_plane..(src_base + 2) * cb];
        let (dst_front, dst_back) = dst_rows[..2 * cb].split_at_mut(cb);
        if second == 0 {
            for ((&sf, &sb), df) in src_front
                .iter()
                .zip(src_back)
                .zip(&mut dst_front[from_plane..])
            {
                let src = (sf & fwd_front) | (sb & fwd_back);
                *df = (*df & !first) | (src & first);
            }
        } else {
            for (((&sf, &sb), df), db) in src_front
                .iter()
                .zip(src_back)
                .zip(&mut dst_front[from_plane..])
                .zip(&mut dst_back[from_plane..])
            {
                let src = (sf & fwd_front) | (sb & fwd_back);
                *df = (*df & !first) | (src & first);
                *db = (*db & !second) | (src & second);
            }
        }
        self.occ[dst_base] |= first;
        self.occ[dst_base + 1] |= second;
    }

    /// Phase 2 — one switching pass, next-to-last stage back to the first.
    fn switch(&mut self, faults: &FaultView<'_>) {
        for s in (0..self.stages - 1).rev() {
            for cell in 0..self.cells {
                let base = self.base(s, cell);
                let occ_front = self.occ[base];
                let occ_back = self.occ[base + 1];
                // Queues fill front-first, so a back-only occupancy cannot
                // occur; an empty cell draws no coins (scalar parity).
                debug_assert_eq!(occ_back & !occ_front, 0);
                if occ_front == 0 {
                    continue;
                }
                if faults.cell_dead(s, cell) {
                    self.fault_drop(occ_front, s);
                    self.fault_drop(occ_back, s);
                    self.occ[base] = 0;
                    self.occ[base + 1] = 0;
                    continue;
                }
                let p_front = self.tag[base * self.conn_bits + s];
                let p_back = self.tag[(base + 1) * self.conn_bits + s];
                // Same-port conflicts draw one fair coin per replication —
                // before any link check, exactly like the scalar engine.
                let conflict = occ_front & occ_back & !(p_front ^ p_back);
                let mut swap = 0u64;
                let mut w = conflict;
                while w != 0 {
                    let r = w.trailing_zeros() as usize;
                    if self.rngs[r].gen_bool(0.5) {
                        swap |= 1 << r;
                    }
                    w &= w - 1;
                }
                self.occ[base] = 0;
                self.occ[base + 1] = 0;
                for port in 0..2 {
                    let want = if port == 1 { p_front } else { !p_front };
                    let req_front = occ_front & want;
                    let want = if port == 1 { p_back } else { !p_back };
                    let req_back = occ_back & want;
                    if req_front | req_back == 0 {
                        continue;
                    }
                    // The next-cell table shares the `(stage*cells+cell)*2`
                    // indexing of the slot words.
                    let next = self.next[base + port] as usize;
                    // A dead link, a throttled link (nowhere to hold the
                    // packet in an unbuffered cell) and a dead downstream
                    // switch all cost the same: a fault loss at this stage,
                    // with no port grant — so the conflict partner is lost
                    // the same way, never as an arbitration drop.
                    let killed = faults.link_status(s, cell, port) != LinkStatus::Up
                        || faults.cell_dead(s + 1, next);
                    if killed {
                        self.fault_drop(req_front, s);
                        self.fault_drop(req_back, s);
                        continue;
                    }
                    let conf = conflict & req_front;
                    debug_assert_eq!(conf, req_front & req_back);
                    let fwd_front = req_front & !(conf & swap);
                    let fwd_back = req_back & !(conf & !swap);
                    // Exactly one of the two conflict partners loses.
                    self.vc_arb[s].add(conf);
                    self.merge_into(base, self.base(s + 1, next), s + 1, fwd_front, fwd_back);
                }
            }
        }
    }

    /// Phase 3 — injection: per replication, the exact scalar draw order
    /// over (cell ascending, terminal 0..2).
    ///
    /// The switching pass always drains stage 0 (an unbuffered packet moves
    /// or drops every cycle), so injection starts from empty source queues:
    /// the scalar engine's full-queue refusal can never fire here, the two
    /// terminals fill the front then the back slot, and each cell's slot
    /// words and tag planes are rebuilt from scratch (so the flush
    /// overwrites last cycle's stage-0 state with no separate clearing
    /// pass). The destination-to-tag resolution is monomorphized per
    /// traffic pattern and fault state, so the per-packet path carries no
    /// dispatch.
    fn inject(&mut self, faults: Option<&FaultRuntime>) {
        let load = self.config.offered_load;
        let cells = self.cells as u32;
        debug_assert!(self.occ[..self.cells * 2].iter().all(|&w| w == 0));
        let fabric = &self.fabric;
        let sampler = &self.sampler;
        let ctx = InjectCtx {
            cells: self.cells,
            lanes: self.lanes,
            load,
            conn_bits: self.conn_bits,
            occ: &mut self.occ,
            tag: &mut self.tag,
            rngs: &mut self.rngs,
            offered: &mut self.offered,
            injected: &mut self.injected,
            unroutable: &mut self.unroutable,
        };
        match (&self.config.traffic, faults) {
            (TrafficPattern::Uniform, None) => {
                ctx.run(|_cell, rng| Some(fabric.tag_for(rng.gen_range(0..cells))))
            }
            (_, None) => ctx.run(|cell, rng| Some(fabric.tag_for(sampler.draw(cell, rng)))),
            (_, Some(rt)) => ctx.run(|cell, rng| {
                let destination = sampler.draw(cell, rng);
                rt.pair_tag(cell as usize, destination as usize)
            }),
        }
    }

    /// Runs one cycle for every replication.
    fn step(&mut self) {
        // Phase 0: cross any fault-onset boundary (shared by every
        // replication — the schedule is seed-independent).
        let mut rt = self.faults.take();
        if let Some(rt) = rt.as_mut() {
            rt.advance(self.fabric.network(), self.cycle);
        }
        let view = match rt.as_ref() {
            Some(rt) => FaultView::at(&rt.state, self.cycle),
            None => FaultView::healthy(self.cycle),
        };

        self.deliver(&view);
        self.switch(&view);
        self.inject(rt.as_ref());
        self.faults = rt;

        self.cycle += 1;
    }

    /// Runs the configured cycle budget and returns one [`Metrics`] per
    /// seed, in the order the seeds were given: the vertical counters are
    /// materialized into per-replication [`Metrics`], with the latency
    /// statistics reconstructed from the constant unbuffered latency.
    pub fn run(mut self) -> Vec<Metrics> {
        for _ in 0..self.config.cycles {
            self.step();
        }
        // Occupancy-cycles in closed form instead of a per-cycle scan over
        // every slot word: a packet removed while leaving stage `s` was
        // present at exactly `s + 1` end-of-cycle snapshots (stages 0..=s),
        // a delivered packet at `stages` of them, and a packet still in
        // flight at stage `k` at `k + 1`. Fault losses priced theirs at
        // drop time ([`Self::fault_drop`]); the still-in-flight tail is one
        // final sweep here.
        let mut occ_end = vec![0u64; self.lanes];
        for (slot, &word) in self.occ.iter().enumerate() {
            let mut w = word;
            if w == 0 {
                continue;
            }
            let weight = (slot / (self.cells * 2) + 1) as u64;
            while w != 0 {
                occ_end[w.trailing_zeros() as usize] += weight;
                w &= w - 1;
            }
        }
        let slots = (self.stages * self.cells * 2) as u64;
        let latency = self.stages as u64;
        for r in 0..self.lanes {
            let metrics = &mut self.metrics[r];
            metrics.measured_cycles = self.cycle;
            metrics.offered = self.offered[r];
            metrics.injected = self.injected[r];
            metrics.unroutable_drops = self.unroutable[r];
            metrics.delivered = self.vc_delivered.count(r);
            metrics.delivered_despite_fault = self.vc_despite.count(r);
            let mut arb = 0u64;
            let mut arb_occupancy = 0u64;
            for (s, vc) in self.vc_arb.iter().enumerate() {
                let losses = vc.count(r);
                arb += losses;
                arb_occupancy += losses * (s as u64 + 1);
            }
            metrics.dropped_arbitration = arb;
            let measured = self.vc_measured.count(r);
            metrics.total_latency = measured * latency;
            if measured > 0 {
                metrics.max_latency = latency;
                metrics.latency_histogram = vec![0; latency as usize + 1];
                metrics.latency_histogram[latency as usize] = measured;
            }
            metrics.lane_occupancy_sum =
                metrics.delivered * latency + arb_occupancy + self.occ_fault[r] + occ_end[r];
            metrics.lane_slot_cycles = self.cycle * slots;
            // Conservation (no backpressure in the unbuffered model): what
            // was injected but neither delivered nor dropped is in flight.
            metrics.in_flight_at_end = metrics.injected
                - metrics.delivered
                - metrics.dropped_arbitration
                - metrics.dropped_fault;
        }
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::fault::FaultPlan;
    use crate::traffic::TrafficPattern;
    use min_networks::{baseline, omega};

    fn scalar(net: &ConnectionNetwork, config: &SimConfig, seed: u64) -> Metrics {
        Simulator::new(net.clone(), config.clone().with_seed(seed))
            .unwrap()
            .run()
    }

    #[test]
    fn packed_matches_scalar_across_loads_and_widths() {
        let seeds: Vec<u64> = (1..=7u64)
            .map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for n in [3usize, 5] {
            for load in [0.15, 0.6, 1.0] {
                let net = omega(n);
                let config = SimConfig::default().with_cycles(300, 30).with_load(load);
                let packed = LaneEngine::new(net.clone(), config.clone(), &seeds)
                    .unwrap()
                    .run();
                for (i, &seed) in seeds.iter().enumerate() {
                    assert_eq!(
                        packed[i],
                        scalar(&net, &config, seed),
                        "n={n} load={load} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_matches_scalar_under_all_traffic_patterns() {
        let seeds = [3u64, 99, 0xDEAD_BEEF];
        let net = baseline(4);
        let cells = net.cells_per_stage() as u32;
        let patterns = [
            TrafficPattern::Uniform,
            TrafficPattern::Hotspot {
                fraction: 0.4,
                target: 2,
            },
            TrafficPattern::Permutation((0..cells).rev().collect()),
            TrafficPattern::BitReversal,
            TrafficPattern::Zipf { exponent: 1.1 },
        ];
        for pattern in patterns {
            let config = SimConfig::default()
                .with_cycles(250, 25)
                .with_load(0.8)
                .with_traffic(pattern.clone());
            let packed = LaneEngine::new(net.clone(), config.clone(), &seeds)
                .unwrap()
                .run();
            for (i, &seed) in seeds.iter().enumerate() {
                assert_eq!(
                    packed[i],
                    scalar(&net, &config, seed),
                    "pattern {pattern:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn packed_matches_scalar_under_fault_plans() {
        let seeds = [11u64, 12, 13, 14];
        let net = omega(4);
        let plans = [
            FaultPlan::none().with_dead_link(1, 0, 1, 0),
            FaultPlan::none()
                .with_dead_switch(1, 1, 120)
                .with_degraded_link(0, 0, 0, 0),
            FaultPlan::none()
                .with_dead_link(0, 2, 1, 10_000)
                .with_dead_switch(2, 0, 10_000),
        ];
        for plan in plans {
            let config = SimConfig::default()
                .with_cycles(300, 30)
                .with_load(0.9)
                .with_faults(plan.clone());
            let packed = LaneEngine::new(net.clone(), config.clone(), &seeds)
                .unwrap()
                .run();
            for (i, &seed) in seeds.iter().enumerate() {
                assert_eq!(
                    packed[i],
                    scalar(&net, &config, seed),
                    "plan {} seed {seed}",
                    plan.label()
                );
            }
        }
    }

    #[test]
    fn a_full_word_of_replications_matches_scalar() {
        let seeds: Vec<u64> = (0..LANE_WIDTH as u64)
            .map(|k| k.wrapping_mul(0xA5A5) ^ 7)
            .collect();
        let net = omega(3);
        let config = SimConfig::default().with_cycles(150, 15).with_load(0.7);
        let packed = LaneEngine::new(net.clone(), config.clone(), &seeds)
            .unwrap()
            .run();
        assert_eq!(packed.len(), LANE_WIDTH);
        for (i, &seed) in seeds.iter().enumerate() {
            assert_eq!(packed[i], scalar(&net, &config, seed), "seed {seed}");
        }
    }

    #[test]
    fn packed_metrics_conserve_packets() {
        let seeds = [5u64, 6, 7, 8, 9];
        let config = SimConfig::default().with_cycles(200, 20).with_load(1.0);
        for m in LaneEngine::new(omega(5), config, &seeds).unwrap().run() {
            assert_eq!(
                m.injected,
                m.delivered + m.dropped() + m.in_flight_at_end,
                "conservation"
            );
            assert_eq!(m.misrouted, 0);
        }
    }

    #[test]
    #[should_panic(expected = "unbuffered")]
    fn buffered_modes_are_rejected() {
        let config = SimConfig::default().with_buffer(BufferMode::Fifo(4));
        let _ = LaneEngine::new(omega(3), config, &[1]);
    }

    #[test]
    #[should_panic(expected = "stateful")]
    fn stateful_traffic_is_rejected() {
        let config = SimConfig::default().with_traffic(TrafficPattern::OnOff {
            on_dwell: 8.0,
            off_dwell: 8.0,
            on_rate: 1.0,
        });
        let _ = LaneEngine::new(omega(3), config, &[1]);
    }
}
