//! The cycle-synchronous simulation engine.
//!
//! Each cycle proceeds in three phases, processed from the output side back
//! to the input side so that space freed in a stage is visible to the stage
//! behind it within the same cycle:
//!
//! 1. **delivery** — every packet sitting at a last-stage cell leaves the
//!    fabric (its latency is recorded, and a misroute counter audits that it
//!    really reached its destination cell);
//! 2. **switching** — every interior cell forwards up to two packets, one
//!    per out-port, choosing the port from the packet's destination tag.
//!    When the two head packets want the same port an arbitration winner is
//!    picked uniformly at random; the loser is dropped (unbuffered mode) or
//!    retained (FIFO mode). A forwarded packet only moves if the downstream
//!    cell has queue space (always true in unbuffered mode).
//! 3. **injection** — each of the two terminals of every first-stage cell
//!    offers a packet with probability `offered_load`; accepted packets are
//!    tagged with the routing tag of their destination.
//!
//! The engine is deterministic for a given [`SimConfig::seed`].

use crate::config::{BufferMode, SimConfig};
use crate::fabric::{Fabric, FabricError};
use crate::metrics::Metrics;
use crate::packet::Packet;
use min_core::ConnectionNetwork;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// A running simulation.
#[derive(Debug)]
pub struct Simulator {
    fabric: Fabric,
    config: SimConfig,
    rng: ChaCha8Rng,
    /// `queues[s][cell]` — packets waiting at cell `cell` of stage `s`.
    queues: Vec<Vec<VecDeque<Packet>>>,
    cycle: u64,
    next_packet_id: u64,
    metrics: Metrics,
}

impl Simulator {
    /// Builds a simulator for the given network and configuration.
    pub fn new(net: ConnectionNetwork, config: SimConfig) -> Result<Self, FabricError> {
        let fabric = Fabric::new(net)?;
        let stages = fabric.stages();
        let cells = fabric.cells();
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Ok(Simulator {
            fabric,
            config,
            rng,
            queues: vec![vec![VecDeque::new(); cells]; stages],
            cycle: 0,
            next_packet_id: 0,
            metrics: Metrics::default(),
        })
    }

    /// Per-cell queue capacity implied by the buffer mode.
    fn capacity(&self) -> usize {
        match self.config.buffer_mode {
            BufferMode::Unbuffered => 2,
            BufferMode::Fifo(depth) => 2 * depth.max(1),
        }
    }

    /// The fabric being simulated.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of packets currently inside the fabric.
    pub fn in_flight(&self) -> u64 {
        self.queues
            .iter()
            .map(|stage| stage.iter().map(|q| q.len() as u64).sum::<u64>())
            .sum()
    }

    /// Runs one cycle.
    pub fn step(&mut self) {
        let stages = self.fabric.stages();
        let cells = self.fabric.cells();
        let capacity = self.capacity();
        let unbuffered = matches!(self.config.buffer_mode, BufferMode::Unbuffered);

        // Phase 1: delivery at the last stage.
        for cell in 0..cells {
            while let Some(p) = self.queues[stages - 1][cell].pop_front() {
                self.metrics.delivered += 1;
                if p.destination as usize != cell {
                    self.metrics.misrouted += 1;
                }
                if p.injected_at >= self.config.warmup {
                    self.metrics.record_latency(self.cycle - p.injected_at);
                }
            }
        }

        // Phase 2: switching, from the next-to-last stage back to the first.
        for s in (0..stages - 1).rev() {
            for cell in 0..cells {
                // A 2x2 cell forwards at most one packet per out-port per cycle.
                let mut port_used = [false; 2];
                let mut retained: VecDeque<Packet> = VecDeque::new();
                // Consider at most the two packets at the head of the queue
                // this cycle; the rest stay queued (FIFO order preserved).
                let mut candidates: Vec<Packet> = Vec::with_capacity(2);
                while candidates.len() < 2 {
                    match self.queues[s][cell].pop_front() {
                        Some(p) => candidates.push(p),
                        None => break,
                    }
                }
                // Resolve same-port contention with a fair coin.
                if candidates.len() == 2 {
                    let p0 = candidates[0].port_at(s);
                    let p1 = candidates[1].port_at(s);
                    if p0 == p1 && self.rng.gen_bool(0.5) {
                        candidates.swap(0, 1);
                    }
                }
                for packet in candidates {
                    let port = packet.port_at(s) as usize;
                    if port_used[port] {
                        // Lost arbitration.
                        if unbuffered {
                            self.metrics.dropped += 1;
                        } else {
                            retained.push_back(packet);
                        }
                        continue;
                    }
                    let next = self.fabric.next_cell(s, cell as u32, port as u8) as usize;
                    if self.queues[s + 1][next].len() < capacity {
                        port_used[port] = true;
                        self.queues[s + 1][next].push_back(packet);
                    } else if unbuffered {
                        self.metrics.dropped += 1;
                    } else {
                        retained.push_back(packet);
                    }
                }
                // Put retained packets back at the front, preserving order.
                while let Some(p) = retained.pop_back() {
                    self.queues[s][cell].push_front(p);
                }
                // In unbuffered mode nothing may linger in an interior queue.
                if unbuffered && s > 0 {
                    while let Some(_stale) = self.queues[s][cell].pop_front() {
                        self.metrics.dropped += 1;
                    }
                }
            }
        }

        // Phase 3: injection at the first stage (two terminals per cell).
        let width_bits = self.fabric.network().width();
        for cell in 0..cells {
            for _terminal in 0..2 {
                if !self.rng.gen_bool(self.config.offered_load) {
                    continue;
                }
                self.metrics.offered += 1;
                if self.queues[0][cell].len() >= capacity {
                    // No space at the source cell: the packet is refused.
                    continue;
                }
                let destination = self.config.traffic.destination(
                    cell as u32,
                    cells as u32,
                    width_bits,
                    &mut self.rng,
                );
                let packet = Packet {
                    id: self.next_packet_id,
                    source: cell as u32,
                    destination,
                    tag: self.fabric.tag_for(destination),
                    injected_at: self.cycle,
                };
                self.next_packet_id += 1;
                self.metrics.injected += 1;
                self.queues[0][cell].push_back(packet);
            }
        }

        self.cycle += 1;
        self.metrics.measured_cycles = self.cycle;
        self.metrics.in_flight_at_end = self.in_flight();
    }

    /// Runs the configured number of cycles and returns the metrics.
    pub fn run(&mut self) -> Metrics {
        for _ in 0..self.config.cycles {
            self.step();
        }
        self.metrics.clone()
    }
}

/// Convenience wrapper: build a simulator, run it, return the metrics.
pub fn simulate(net: ConnectionNetwork, config: SimConfig) -> Result<Metrics, FabricError> {
    Ok(Simulator::new(net, config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use min_networks::{baseline, omega};

    fn quick_config() -> SimConfig {
        SimConfig::default().with_cycles(400, 0).with_seed(42)
    }

    #[test]
    fn packets_are_never_misrouted() {
        for n in 2..=5 {
            let metrics = simulate(omega(n), quick_config().with_load(0.8)).unwrap();
            assert_eq!(metrics.misrouted, 0, "omega n={n}");
            assert!(metrics.delivered > 0);
        }
    }

    #[test]
    fn conservation_holds_in_both_buffer_modes() {
        for mode in [BufferMode::Unbuffered, BufferMode::Fifo(4)] {
            let metrics =
                simulate(omega(4), quick_config().with_load(0.9).with_buffer(mode)).unwrap();
            assert_eq!(
                metrics.injected,
                metrics.delivered + metrics.dropped + metrics.in_flight_at_end,
                "mode {mode:?}"
            );
            assert!(metrics.offered >= metrics.injected);
        }
    }

    #[test]
    fn unbuffered_mode_drops_under_heavy_load() {
        let metrics = simulate(omega(4), quick_config().with_load(1.0)).unwrap();
        assert!(
            metrics.dropped > 0,
            "full load must cause arbitration losses"
        );
        // Patel's analysis: the per-terminal throughput of an unbuffered
        // 4-stage delta network at full load is ≈ 0.52 — well below 1 and
        // above ~0.4.
        let tput = metrics.normalized_throughput(16);
        assert!(tput > 0.35 && tput < 0.75, "throughput {tput}");
    }

    #[test]
    fn buffered_mode_never_drops_inside_the_fabric() {
        let unbuffered = simulate(omega(4), quick_config().with_load(1.0)).unwrap();
        let buffered = simulate(
            omega(4),
            quick_config()
                .with_load(1.0)
                .with_buffer(BufferMode::Fifo(8)),
        )
        .unwrap();
        assert!(
            unbuffered.dropped > 0,
            "the unbuffered fabric loses packets"
        );
        assert_eq!(buffered.dropped, 0, "backpressure replaces dropping");
        assert!(buffered.delivered > 0);
        // With FIFOs, the fabric instead refuses injections when the source
        // queue is full: acceptance falls below 100% at full load.
        assert!(buffered.acceptance_rate() < 1.0);
    }

    #[test]
    fn low_load_uniform_traffic_is_delivered_almost_losslessly() {
        let metrics = simulate(omega(4), quick_config().with_load(0.1)).unwrap();
        let loss_rate = metrics.dropped as f64 / metrics.injected.max(1) as f64;
        assert!(
            loss_rate < 0.2,
            "loss rate {loss_rate} too high at 10% load"
        );
        assert!(metrics.mean_latency() >= (omega(4).stages() - 1) as f64 * 0.9);
    }

    #[test]
    fn hotspot_traffic_reduces_throughput() {
        let uniform = simulate(omega(5), quick_config().with_load(0.9)).unwrap();
        let hotspot = simulate(
            omega(5),
            quick_config()
                .with_load(0.9)
                .with_traffic(TrafficPattern::Hotspot {
                    fraction: 0.5,
                    target: 0,
                }),
        )
        .unwrap();
        assert!(
            hotspot.delivered < uniform.delivered,
            "hot-spot must congest the fabric: {} vs {}",
            hotspot.delivered,
            uniform.delivered
        );
    }

    #[test]
    fn equivalent_networks_have_similar_uniform_throughput() {
        // Topologically equivalent fabrics under the same symmetric traffic
        // produce statistically indistinguishable throughput; with a finite
        // run we allow a 10% band.
        let cfg = quick_config().with_load(0.8).with_cycles(1_500, 0);
        let a = simulate(omega(4), cfg.clone())
            .unwrap()
            .normalized_throughput(8);
        let b = simulate(baseline(4), cfg).unwrap().normalized_throughput(8);
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.10, "throughputs {a} vs {b} differ by {rel}");
    }

    #[test]
    fn simulation_is_deterministic_for_a_fixed_seed() {
        let m1 = simulate(omega(4), quick_config()).unwrap();
        let m2 = simulate(omega(4), quick_config()).unwrap();
        assert_eq!(m1, m2);
        let m3 = simulate(omega(4), quick_config().with_seed(43)).unwrap();
        assert_ne!(m1, m3, "different seeds should differ somewhere");
    }

    #[test]
    fn step_by_step_api_matches_run() {
        let cfg = quick_config().with_cycles(50, 0);
        let mut s1 = Simulator::new(omega(3), cfg.clone()).unwrap();
        for _ in 0..50 {
            s1.step();
        }
        let m1 = s1.metrics().clone();
        let m2 = simulate(omega(3), cfg).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(s1.cycle(), 50);
    }
}
