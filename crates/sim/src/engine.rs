//! The cycle-synchronous simulation engine.
//!
//! Each cycle proceeds in three phases, processed from the output side back
//! to the input side so that space freed in a stage is visible to the stage
//! behind it within the same cycle:
//!
//! 1. **delivery** — everything deliverable at a last-stage cell leaves the
//!    fabric (latencies are recorded, and a misroute counter audits that
//!    every packet really reached its destination cell);
//! 2. **switching** — every interior cell moves traffic one stage forward,
//!    choosing the out-port from the packet's destination tag;
//! 3. **injection** — each of the two terminals of every first-stage cell
//!    offers a packet with probability `offered_load`; accepted packets are
//!    tagged with the routing tag of their destination.
//!
//! The *storage* behind those phases is pluggable: the engine owns the
//! clock, the ChaCha8 RNG and the traffic sources, and drives a
//! [`SwitchCore`] — unbuffered, FIFO, or multi-lane wormhole (see
//! [`crate::switch`]) — selected by [`SimConfig::buffer_mode`]. All cores
//! store their state in flat, preallocated arenas.
//!
//! The engine is deterministic for a given [`SimConfig::seed`].

use crate::config::{ConfigError, SimConfig};
use crate::fabric::{Fabric, FabricError};
use crate::fault::{FaultError, FaultRuntime, FaultView};
use crate::metrics::Metrics;
use crate::packet::Packet;
use crate::switch::{build_core, SwitchCore};
use crate::traffic::{DestSampler, Offer, TrafficSources};
use min_core::ConnectionNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Why a simulator could not be built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// The configuration failed validation ([`SimConfig::validate`]).
    Config(ConfigError),
    /// The network cannot be simulated.
    Fabric(FabricError),
    /// The fault plan names a site outside the fabric.
    Fault(FaultError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimError::Fabric(e) => write!(f, "unsimulatable network: {e}"),
            SimError::Fault(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<FabricError> for SimError {
    fn from(e: FabricError) -> Self {
        SimError::Fabric(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

/// A running simulation.
#[derive(Debug)]
pub struct Simulator {
    fabric: Fabric,
    config: SimConfig,
    rng: ChaCha8Rng,
    core: Box<dyn SwitchCore>,
    /// Fault machinery, present only for a non-empty [`SimConfig::fault_plan`]
    /// — `None` runs the exact fault-free code path.
    faults: Option<FaultRuntime>,
    /// Injection state of the traffic pattern (ON/OFF chains, trace
    /// schedules; stateless for the classic patterns).
    sources: TrafficSources,
    /// Destination sampler of the traffic pattern (precomputed CDF for
    /// Zipf, a delegate for everything else).
    sampler: DestSampler,
    cycle: u64,
    next_packet_id: u64,
    metrics: Metrics,
}

impl Simulator {
    /// Builds a simulator for the given network and configuration. The
    /// configuration is validated first — including the traffic pattern
    /// against this fabric ([`crate::TrafficPattern::validate_for`]) — so
    /// an out-of-range load, a NaN hot-spot fraction, a permutation or
    /// trace that does not fit the fabric, an all-warm-up cycle budget, a
    /// zero lane/depth parameter or a fault site outside the fabric is a
    /// typed error here rather than a panic or silent misbehaviour mid-run.
    pub fn new(net: ConnectionNetwork, config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        let fabric = Fabric::for_traffic(net, &config.traffic)?;
        config
            .traffic
            .validate_for(fabric.cells() as u32)
            .map_err(ConfigError::from)?;
        let sampler = config
            .traffic
            .sampler(fabric.cells() as u32, fabric.network().width());
        let sources = TrafficSources::new(&config.traffic, fabric.cells());
        let core = build_core(config.buffer_mode, fabric.stages(), fabric.cells());
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let faults = if config.fault_plan.is_empty() {
            None
        } else {
            config
                .fault_plan
                .validate(fabric.stages(), fabric.cells())?;
            Some(FaultRuntime::new(
                &config.fault_plan,
                fabric.stages(),
                fabric.cells(),
            ))
        };
        Ok(Simulator {
            fabric,
            config,
            rng,
            core,
            faults,
            sources,
            sampler,
            cycle: 0,
            next_packet_id: 0,
            metrics: Metrics::default(),
        })
    }

    /// The fabric being simulated.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of packets currently inside the fabric.
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// Number of (source, destination) cell pairs currently severed by
    /// active faults (0 for a healthy fabric or before any onset).
    pub fn severed_pairs(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultRuntime::severed_pairs)
    }

    /// Runs one cycle.
    pub fn step(&mut self) {
        // Phase 0: cross any fault-onset boundary (recomputes the
        // per-pair reroute table; a cheap no-op on every other cycle).
        if let Some(rt) = self.faults.as_mut() {
            rt.advance(self.fabric.network(), self.cycle);
        }
        let faults = match self.faults.as_ref() {
            Some(rt) => FaultView::at(&rt.state, self.cycle),
            None => FaultView::healthy(self.cycle),
        };

        // Phase 1: delivery at the last stage.
        self.core.deliver(
            &self.fabric,
            &faults,
            self.cycle,
            self.config.warmup,
            &mut self.metrics,
        );

        // Phase 2: switching, from the next-to-last stage back to the first.
        self.core
            .switch(&self.fabric, &faults, &mut self.rng, &mut self.metrics);

        // Phase 3: injection at the first stage (two terminals per cell).
        // Injection is open-loop: `offered` counts every offer the sources
        // make, whether or not the core can accept it, so offered_rate vs
        // normalized_throughput divergence locates the saturation point.
        let cells = self.fabric.cells();
        for cell in 0..cells {
            for terminal in 0..2 {
                let offer = self.sources.offer(
                    self.cycle,
                    cell as u32,
                    terminal,
                    self.config.offered_load,
                    &mut self.rng,
                );
                if offer == Offer::Idle {
                    continue;
                }
                self.metrics.offered += 1;
                if !self.core.can_accept(cell) {
                    // No space at the source cell: the packet is refused.
                    continue;
                }
                let destination = match offer {
                    Offer::PacketTo(dest) => dest,
                    _ => self.sampler.draw(cell as u32, &mut self.rng),
                };
                // Under faults the tag comes from the pair's surviving path
                // (destination-tag reroute); otherwise the fabric's router
                // picks it per (source, terminal). Either way an unreachable
                // destination refuses the packet at the source instead of
                // losing it inside.
                let tag = match self.faults.as_ref() {
                    Some(rt) => match rt.pair_tag(cell, destination as usize) {
                        Some(tag) => tag,
                        None => {
                            self.metrics.unroutable_drops += 1;
                            continue;
                        }
                    },
                    None => match self.fabric.route(cell as u32, terminal, destination) {
                        Some(tag) => tag,
                        None => {
                            self.metrics.unroutable_drops += 1;
                            continue;
                        }
                    },
                };
                let packet = Packet {
                    id: self.next_packet_id,
                    source: cell as u32,
                    destination,
                    tag,
                    injected_at: self.cycle,
                };
                self.next_packet_id += 1;
                self.metrics.injected += 1;
                self.core.inject(cell, packet);
            }
        }

        self.cycle += 1;
        self.metrics.measured_cycles = self.cycle;
        self.metrics.in_flight_at_end = self.core.in_flight();
        let (occupied, slots) = self.core.occupancy();
        self.metrics.lane_occupancy_sum += occupied;
        self.metrics.lane_slot_cycles += slots;
    }

    /// Runs the configured number of cycles and returns the metrics.
    pub fn run(&mut self) -> Metrics {
        for _ in 0..self.config.cycles {
            self.step();
        }
        self.metrics.clone()
    }

    /// Rewinds the simulator to cycle 0 under a new seed, reusing the
    /// fabric tables, the switch core's arenas and the fault machinery
    /// (cached reroute epochs included). The next [`Simulator::run`] is
    /// bit-identical to a freshly built simulator with the same
    /// configuration and `seed` — this is what lets the batching layer run
    /// every replication of a scenario through one engine instance.
    pub fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self.core.reset();
        if let Some(rt) = self.faults.as_mut() {
            rt.rewind();
        }
        self.sources.reset();
        self.cycle = 0;
        self.next_packet_id = 0;
        self.metrics = Metrics::default();
    }
}

/// Convenience wrapper: build a simulator, run it, return the metrics.
pub fn simulate(net: ConnectionNetwork, config: SimConfig) -> Result<Metrics, SimError> {
    Ok(Simulator::new(net, config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BufferMode;
    use crate::traffic::TrafficPattern;
    use min_networks::{baseline, omega};

    fn quick_config() -> SimConfig {
        SimConfig::default().with_cycles(400, 0).with_seed(42)
    }

    fn wormhole(lanes: usize, lane_depth: usize, flits_per_packet: usize) -> BufferMode {
        BufferMode::Wormhole {
            lanes,
            lane_depth,
            flits_per_packet,
        }
    }

    #[test]
    fn packets_are_never_misrouted() {
        for n in 2..=5 {
            let metrics = simulate(omega(n), quick_config().with_load(0.8)).unwrap();
            assert_eq!(metrics.misrouted, 0, "omega n={n}");
            assert!(metrics.delivered > 0);
        }
    }

    #[test]
    fn conservation_holds_in_all_buffer_modes() {
        for mode in [
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            wormhole(2, 4, 4),
        ] {
            let metrics =
                simulate(omega(4), quick_config().with_load(0.9).with_buffer(mode)).unwrap();
            assert_eq!(
                metrics.injected,
                metrics.delivered + metrics.dropped() + metrics.in_flight_at_end,
                "mode {mode:?}"
            );
            assert!(metrics.offered >= metrics.injected);
        }
    }

    #[test]
    fn unbuffered_mode_drops_under_heavy_load() {
        let metrics = simulate(omega(4), quick_config().with_load(1.0)).unwrap();
        assert!(
            metrics.dropped() > 0,
            "full load must cause arbitration losses"
        );
        assert!(
            metrics.dropped_arbitration > 0,
            "unbuffered losses are arbitration losses"
        );
        // Patel's analysis: the per-terminal throughput of an unbuffered
        // 4-stage delta network at full load is ≈ 0.52 — well below 1 and
        // above ~0.4.
        let tput = metrics.normalized_throughput(16);
        assert!(tput > 0.35 && tput < 0.75, "throughput {tput}");
    }

    #[test]
    fn buffered_mode_never_drops_inside_the_fabric() {
        let unbuffered = simulate(omega(4), quick_config().with_load(1.0)).unwrap();
        let buffered = simulate(
            omega(4),
            quick_config()
                .with_load(1.0)
                .with_buffer(BufferMode::Fifo(8)),
        )
        .unwrap();
        assert!(
            unbuffered.dropped() > 0,
            "the unbuffered fabric loses packets"
        );
        assert_eq!(buffered.dropped(), 0, "backpressure replaces dropping");
        assert!(buffered.delivered > 0);
        // With FIFOs, the fabric instead refuses injections when the source
        // queue is full: acceptance falls below 100% at full load.
        assert!(buffered.acceptance_rate() < 1.0);
    }

    #[test]
    fn low_load_uniform_traffic_is_delivered_almost_losslessly() {
        let metrics = simulate(omega(4), quick_config().with_load(0.1)).unwrap();
        let loss_rate = metrics.dropped() as f64 / metrics.injected.max(1) as f64;
        assert!(
            loss_rate < 0.2,
            "loss rate {loss_rate} too high at 10% load"
        );
        assert!(metrics.mean_latency() >= (omega(4).stages() - 1) as f64 * 0.9);
    }

    #[test]
    fn hotspot_traffic_reduces_throughput() {
        let uniform = simulate(omega(5), quick_config().with_load(0.9)).unwrap();
        let hotspot = simulate(
            omega(5),
            quick_config()
                .with_load(0.9)
                .with_traffic(TrafficPattern::Hotspot {
                    fraction: 0.5,
                    target: 0,
                }),
        )
        .unwrap();
        assert!(
            hotspot.delivered < uniform.delivered,
            "hot-spot must congest the fabric: {} vs {}",
            hotspot.delivered,
            uniform.delivered
        );
    }

    #[test]
    fn equivalent_networks_have_similar_uniform_throughput() {
        // Topologically equivalent fabrics under the same symmetric traffic
        // produce statistically indistinguishable throughput; with a finite
        // run we allow a 10% band.
        let cfg = quick_config().with_load(0.8).with_cycles(1_500, 0);
        let a = simulate(omega(4), cfg.clone())
            .unwrap()
            .normalized_throughput(8);
        let b = simulate(baseline(4), cfg).unwrap().normalized_throughput(8);
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.10, "throughputs {a} vs {b} differ by {rel}");
    }

    #[test]
    fn simulation_is_deterministic_for_a_fixed_seed() {
        for mode in [
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            wormhole(2, 2, 3),
        ] {
            let cfg = quick_config().with_buffer(mode);
            let m1 = simulate(omega(4), cfg.clone()).unwrap();
            let m2 = simulate(omega(4), cfg.clone()).unwrap();
            assert_eq!(m1, m2, "mode {mode:?}");
            let m3 = simulate(omega(4), cfg.with_seed(43)).unwrap();
            assert_ne!(m1, m3, "different seeds should differ somewhere");
        }
    }

    #[test]
    fn step_by_step_api_matches_run() {
        let cfg = quick_config().with_cycles(50, 0);
        let mut s1 = Simulator::new(omega(3), cfg.clone()).unwrap();
        for _ in 0..50 {
            s1.step();
        }
        let m1 = s1.metrics().clone();
        let m2 = simulate(omega(3), cfg).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(s1.cycle(), 50);
    }

    #[test]
    fn invalid_configurations_are_typed_errors_not_panics() {
        let cases = [
            (
                quick_config().with_load(1.5),
                SimError::Config(ConfigError::InvalidLoad(1.5)),
            ),
            (
                quick_config().with_cycles(10, 10),
                SimError::Config(ConfigError::WarmupExceedsCycles {
                    warmup: 10,
                    cycles: 10,
                }),
            ),
            (
                quick_config().with_buffer(BufferMode::Fifo(0)),
                SimError::Config(ConfigError::ZeroParameter("fifo depth")),
            ),
            (
                quick_config().with_buffer(wormhole(0, 4, 4)),
                SimError::Config(ConfigError::ZeroParameter("wormhole lanes")),
            ),
        ];
        for (cfg, expected) in cases {
            assert_eq!(Simulator::new(omega(3), cfg).unwrap_err(), expected);
        }
    }

    #[test]
    fn reseeding_matches_a_freshly_built_simulator() {
        use crate::fault::FaultPlan;
        let plans = [
            FaultPlan::none(),
            FaultPlan::none()
                .with_dead_switch(1, 0, 200)
                .with_degraded_link(0, 1, 0, 0),
        ];
        for plan in plans {
            for mode in [
                BufferMode::Unbuffered,
                BufferMode::Fifo(4),
                wormhole(2, 2, 3),
            ] {
                let cfg = quick_config()
                    .with_load(0.9)
                    .with_buffer(mode)
                    .with_faults(plan.clone());
                let mut reused = Simulator::new(omega(4), cfg.clone()).unwrap();
                for seed in [42u64, 7, 42] {
                    reused.reseed(seed);
                    let fresh = simulate(omega(4), cfg.clone().with_seed(seed)).unwrap();
                    assert_eq!(reused.run(), fresh, "mode {mode:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn a_dormant_fault_plan_is_bit_identical_to_no_plan() {
        // A plan whose every onset lies beyond the run exercises the whole
        // fault machinery (runtime, pair table, per-cycle views) without a
        // single active fault — the metrics must be bit-identical to the
        // plain fault-free engine, in every buffer mode.
        use crate::fault::FaultPlan;
        let dormant = FaultPlan::none()
            .with_dead_link(1, 0, 1, 10_000)
            .with_dead_switch(2, 1, 10_000)
            .with_degraded_link(0, 2, 0, 10_000);
        for mode in [
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            wormhole(2, 2, 3),
        ] {
            let cfg = quick_config().with_load(0.9).with_buffer(mode);
            let clean = simulate(omega(4), cfg.clone()).unwrap();
            let pinned = simulate(omega(4), cfg.with_faults(dormant.clone())).unwrap();
            assert_eq!(clean, pinned, "mode {mode:?}");
        }
    }

    #[test]
    fn a_dead_link_severs_pairs_and_costs_delivery() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().with_dead_link(1, 0, 1, 0);
        for mode in [
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            wormhole(2, 2, 3),
        ] {
            let cfg = quick_config().with_load(0.8).with_buffer(mode);
            let clean = simulate(omega(4), cfg.clone()).unwrap();
            let faulty = simulate(omega(4), cfg.with_faults(plan.clone())).unwrap();
            assert!(
                faulty.delivered <= clean.delivered,
                "mode {mode:?}: {} > {}",
                faulty.delivered,
                clean.delivered
            );
            assert!(faulty.unroutable_drops > 0, "mode {mode:?}");
            assert_eq!(faulty.misrouted, 0, "reroute never misroutes");
            // Static fault + source-side refusal: nothing is lost in flight.
            assert_eq!(faulty.dropped_fault, 0, "mode {mode:?}");
            assert_eq!(
                faulty.injected,
                faulty.delivered + faulty.dropped() + faulty.in_flight_at_end,
                "conservation, mode {mode:?}"
            );
            assert!(faulty.delivered_despite_fault > 0);
        }
    }

    #[test]
    fn a_mid_run_switch_death_kills_traffic_in_flight() {
        use crate::fault::FaultPlan;
        let onset = 200;
        let plan = FaultPlan::none().with_dead_switch(1, 0, onset);
        for mode in [
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            wormhole(2, 2, 3),
        ] {
            let cfg = quick_config().with_load(1.0).with_buffer(mode);
            let m = simulate(omega(4), cfg.with_faults(plan.clone())).unwrap();
            assert!(
                m.dropped_fault > 0,
                "mode {mode:?}: traffic inside (or headed into) the dying \
                 switch must be lost"
            );
            assert!(m.unroutable_drops > 0, "post-onset refusals");
            assert!(m.total_fault_exposure() > 0);
            assert!(
                m.fault_exposure.iter().take(2).any(|&c| c > 0),
                "exposure concentrates at or before the dead switch's stage: {:?}",
                m.fault_exposure
            );
            assert_eq!(
                m.injected,
                m.delivered + m.dropped() + m.in_flight_at_end,
                "conservation, mode {mode:?}"
            );
        }
    }

    #[test]
    fn a_degraded_link_throttles_but_severs_nothing() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().with_degraded_link(1, 0, 0, 0);
        for mode in [BufferMode::Fifo(4), wormhole(2, 2, 3)] {
            // Long enough that the halved link capacity dominates the
            // arbitration coin noise between the paired runs.
            let cfg = quick_config()
                .with_cycles(2000, 0)
                .with_load(0.9)
                .with_buffer(mode);
            let clean = simulate(omega(4), cfg.clone()).unwrap();
            let throttled = simulate(omega(4), cfg.with_faults(plan.clone())).unwrap();
            assert_eq!(throttled.unroutable_drops, 0, "mode {mode:?}");
            assert_eq!(throttled.dropped_fault, 0, "buffered cores hold, not drop");
            assert!(throttled.delivered <= clean.delivered, "mode {mode:?}");
            assert!(throttled.total_fault_exposure() > 0, "stalls are recorded");
            assert_eq!(
                throttled.delivered_despite_fault, throttled.delivered,
                "every delivery happened on a degraded fabric"
            );
        }
        // The unbuffered core has nowhere to hold a throttled packet.
        let m = simulate(omega(4), quick_config().with_load(0.9).with_faults(plan)).unwrap();
        assert!(m.dropped_fault > 0);
    }

    #[test]
    fn fault_sites_outside_the_fabric_are_typed_errors() {
        use crate::fault::{FaultError, FaultPlan};
        let cfg = quick_config().with_faults(FaultPlan::none().with_dead_link(9, 0, 0, 0));
        assert_eq!(
            Simulator::new(omega(4), cfg).unwrap_err(),
            SimError::Fault(FaultError::LinkStageOutOfRange {
                stage: 9,
                connections: 3
            })
        );
    }

    #[test]
    fn severed_pair_count_matches_the_banyan_link_load() {
        // Any single link of a Banyan fabric carries exactly cells/2
        // (source, destination) pairs.
        use crate::fault::FaultPlan;
        for n in 3..=5 {
            let cfg = quick_config().with_faults(FaultPlan::none().with_dead_link(1, 0, 1, 0));
            let mut sim = Simulator::new(omega(n), cfg).unwrap();
            sim.step();
            let cells = sim.fabric().cells() as u64;
            assert_eq!(sim.severed_pairs(), cells / 2, "omega n={n}");
        }
        // Healthy simulators sever nothing.
        let mut sim = Simulator::new(omega(3), quick_config()).unwrap();
        sim.step();
        assert_eq!(sim.severed_pairs(), 0);
    }

    #[test]
    fn wormhole_delivers_without_drops_or_misroutes() {
        let metrics = simulate(
            omega(4),
            quick_config().with_load(0.8).with_buffer(wormhole(2, 4, 4)),
        )
        .unwrap();
        assert!(metrics.delivered > 0);
        assert_eq!(metrics.misrouted, 0);
        assert_eq!(metrics.dropped(), 0, "wormhole applies backpressure");
        assert_eq!(
            metrics.injected,
            metrics.delivered + metrics.in_flight_at_end
        );
    }

    #[test]
    fn wormhole_latency_reflects_flit_serialization() {
        // At low load a worm crosses stages - 1 links and then streams its
        // remaining flits out one per cycle, so the latency floor is roughly
        // (stages - 1) + (flits - 1); the packet-atomic modes sit near
        // stages - 1.
        let flits = 6;
        let packetized = simulate(omega(4), quick_config().with_load(0.05)).unwrap();
        let worm = simulate(
            omega(4),
            quick_config()
                .with_load(0.05)
                .with_buffer(wormhole(2, 4, flits)),
        )
        .unwrap();
        assert!(
            worm.mean_latency() >= packetized.mean_latency() + (flits - 2) as f64,
            "wormhole {} vs packet {}",
            worm.mean_latency(),
            packetized.mean_latency()
        );
    }

    #[test]
    fn wormhole_flit_accounting_brackets_the_deliveries() {
        let flits = 4u64;
        let m = simulate(
            omega(4),
            quick_config()
                .with_load(1.0)
                .with_buffer(wormhole(2, 2, flits as usize)),
        )
        .unwrap();
        // Every delivered worm ejected exactly `flits` flits; partially
        // ejected worms account for the slack up to in-flight count.
        assert!(m.flits_delivered >= m.delivered * flits);
        assert!(m.flits_delivered <= (m.delivered + m.in_flight_at_end) * flits);
        // Full load over a shared flit-wide link must stall someone.
        assert!(m.flit_stalls > 0);
        assert!(m.mean_lane_occupancy() > 0.0);
    }

    #[test]
    fn wormhole_packet_throughput_is_bounded_by_flit_serialization() {
        // Each output link moves one flit per cycle, so packet throughput
        // per terminal cannot exceed 1 / flits_per_packet.
        let flits = 4;
        let m = simulate(
            omega(4),
            quick_config()
                .with_load(1.0)
                .with_cycles(1_000, 0)
                .with_buffer(wormhole(4, 4, flits)),
        )
        .unwrap();
        let tput = m.normalized_throughput(16);
        assert!(
            tput <= 1.0 / flits as f64 + 0.02,
            "throughput {tput} exceeds the flit-serialization bound"
        );
        assert!(tput > 0.05, "throughput {tput} suspiciously low");
        // The flit throughput sits well above the packet throughput.
        assert!(m.flit_throughput(16) > tput);
    }

    #[test]
    fn zipf_traffic_congests_relative_to_uniform() {
        // A skewed destination law concentrates load on the popular cells'
        // output links; deliveries must fall below the uniform baseline.
        let uniform = simulate(omega(5), quick_config().with_load(0.9)).unwrap();
        let zipf = simulate(
            omega(5),
            quick_config()
                .with_load(0.9)
                .with_traffic(TrafficPattern::Zipf { exponent: 1.2 }),
        )
        .unwrap();
        assert!(
            zipf.delivered < uniform.delivered,
            "zipf must congest the fabric: {} vs {}",
            zipf.delivered,
            uniform.delivered
        );
        assert!(zipf.misrouted == 0 && zipf.delivered > 0);
    }

    #[test]
    fn on_off_duty_cycle_shapes_the_offered_rate() {
        // Equal dwells give a 50% duty cycle: the long-run offered rate is
        // half the configured load, while a Bernoulli source offers the
        // full load.
        let cfg = quick_config().with_load(0.8).with_cycles(4_000, 0);
        let steady = simulate(omega(4), cfg.clone()).unwrap();
        let bursty = simulate(
            omega(4),
            cfg.with_traffic(TrafficPattern::OnOff {
                on_dwell: 20.0,
                off_dwell: 20.0,
                on_rate: 1.0,
            }),
        )
        .unwrap();
        let steady_rate = steady.offered_rate(16);
        let bursty_rate = bursty.offered_rate(16);
        assert!(
            (steady_rate - 0.8).abs() < 0.05,
            "bernoulli offered rate {steady_rate}"
        );
        assert!(
            (bursty_rate - 0.4).abs() < 0.06,
            "on/off offered rate {bursty_rate} (want ≈ 0.4)"
        );
        assert!(bursty.delivered > 0);
    }

    #[test]
    fn trace_replay_injects_exactly_the_recorded_offers() {
        use crate::traffic::{TraceData, TraceRecord};
        // omega(4) has 8 first-stage cells = 16 terminals. Three records
        // over a 5-cycle period, replayed for 400 cycles = 80 full periods.
        let trace = TraceData {
            cells: 8,
            period: 5,
            records: vec![
                TraceRecord {
                    cycle: 0,
                    source: 0,
                    dest: 7,
                },
                TraceRecord {
                    cycle: 0,
                    source: 9,
                    dest: 1,
                },
                TraceRecord {
                    cycle: 3,
                    source: 15,
                    dest: 0,
                },
            ],
        };
        let m = simulate(
            omega(4),
            quick_config()
                .with_load(0.0)
                .with_traffic(TrafficPattern::Trace(trace)),
        )
        .unwrap();
        // The trace ignores the offered load (0.0 here): the schedule is
        // the load. So sparse a schedule is always accepted and delivered.
        assert_eq!(m.offered, 3 * 80);
        assert_eq!(m.injected, 3 * 80);
        assert_eq!(m.misrouted, 0);
        assert_eq!(m.dropped(), 0);
        assert!(m.delivered >= m.injected - m.in_flight_at_end);
    }

    #[test]
    fn non_finite_hotspot_from_json_is_rejected_at_construction() {
        use crate::config::ConfigError;
        use crate::traffic::TrafficError;
        // serde_json cannot *emit* a NaN, but hostile or corrupted input can
        // still smuggle a non-finite fraction in (1e999 parses to +inf).
        // Construction must return a typed error, not panic in gen_bool.
        let traffic: TrafficPattern =
            serde_json::from_str(r#"{"Hotspot":{"fraction":1e999,"target":0}}"#).unwrap();
        let err = Simulator::new(omega(4), quick_config().with_traffic(traffic)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(ConfigError::Traffic(TrafficError::NonFinite { .. }))
        ));
        // And a NaN built in-process is caught by the same gate.
        let err = Simulator::new(
            omega(4),
            quick_config().with_traffic(TrafficPattern::Hotspot {
                fraction: f64::NAN,
                target: 0,
            }),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(ConfigError::Traffic(TrafficError::NonFinite { .. }))
        ));
    }

    #[test]
    fn traffic_that_does_not_fit_the_fabric_is_rejected_at_construction() {
        use crate::config::ConfigError;
        use crate::traffic::{TraceData, TrafficError};
        // omega(4) has 8 cells per stage.
        let cases = [
            (
                TrafficPattern::Permutation(vec![0, 1, 2]),
                TrafficError::PermutationLength { len: 3, cells: 8 },
            ),
            (
                TrafficPattern::Permutation(vec![0, 1, 2, 3, 4, 5, 6, 8]),
                TrafficError::PermutationEntry {
                    index: 7,
                    entry: 8,
                    cells: 8,
                },
            ),
            (
                TrafficPattern::Hotspot {
                    fraction: 0.5,
                    target: 8,
                },
                TrafficError::HotspotTargetOutOfRange {
                    target: 8,
                    cells: 8,
                },
            ),
            (
                TrafficPattern::Trace(TraceData {
                    cells: 4,
                    period: 2,
                    records: vec![],
                }),
                TrafficError::TraceCellsMismatch { trace: 4, cells: 8 },
            ),
        ];
        for (traffic, expected) in cases {
            let err =
                Simulator::new(omega(4), quick_config().with_traffic(traffic.clone())).unwrap_err();
            assert_eq!(
                err,
                SimError::Config(ConfigError::Traffic(expected)),
                "{traffic:?}"
            );
        }
    }

    #[test]
    fn stateful_traffic_reseeds_bit_identically() {
        use crate::traffic::{TraceData, TraceRecord};
        let patterns = [
            TrafficPattern::OnOff {
                on_dwell: 10.0,
                off_dwell: 6.0,
                on_rate: 0.9,
            },
            TrafficPattern::Zipf { exponent: 1.0 },
            TrafficPattern::Trace(TraceData {
                cells: 8,
                period: 3,
                records: vec![
                    TraceRecord {
                        cycle: 0,
                        source: 2,
                        dest: 5,
                    },
                    TraceRecord {
                        cycle: 1,
                        source: 11,
                        dest: 0,
                    },
                ],
            }),
        ];
        for traffic in patterns {
            for mode in [BufferMode::Unbuffered, BufferMode::Fifo(4)] {
                let cfg = quick_config()
                    .with_load(0.7)
                    .with_buffer(mode)
                    .with_traffic(traffic.clone());
                let mut reused = Simulator::new(omega(4), cfg.clone()).unwrap();
                for seed in [42u64, 7, 42] {
                    reused.reseed(seed);
                    let fresh = simulate(omega(4), cfg.clone().with_seed(seed)).unwrap();
                    assert_eq!(reused.run(), fresh, "{traffic:?} mode {mode:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn wormhole_lane_starvation_throttles_injection() {
        // One lane per cell at full load: acceptance must fall well below 1.
        let m = simulate(
            omega(4),
            quick_config().with_load(1.0).with_buffer(wormhole(1, 2, 4)),
        )
        .unwrap();
        assert!(
            m.acceptance_rate() < 0.9,
            "acceptance {}",
            m.acceptance_rate()
        );
        assert!(m.delivered > 0);
    }
}
