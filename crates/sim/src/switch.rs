//! Pluggable switching cores over flat, preallocated arenas.
//!
//! [`SwitchCore`] abstracts the storage half of the engine's three-phase
//! cycle — delivery at the last stage, switching between stages, and the
//! admission test plus hand-off of injection — so one engine loop
//! ([`crate::Simulator`]) drives three buffer architectures:
//!
//! * [`UnbufferedCore`] — Patel's unbuffered crossbar cells: a packet that
//!   loses an out-port arbitration (or finds the downstream cell full) is
//!   dropped;
//! * [`FifoCore`] — per-cell FIFOs with backpressure: a packet that cannot
//!   advance stays queued, and injection is refused when the first-stage
//!   queue is full;
//! * [`WormholeCore`] — multi-lane virtual-channel wormhole switching:
//!   packets are split into flits, a worm's head flit allocates one lane per
//!   cell it enters, body flits stream behind it at one flit per out-port
//!   per cycle, and a blocked worm holds its lanes across stages until the
//!   tail drains through.
//!
//! The packet-atomic cores keep their state in struct-of-arrays ring
//! buffers: the routing tags, destinations and injection times of every
//! queued packet live in three parallel flat arrays indexed by
//! `(stage, cell)` ring cursors, with ring capacities padded to a power of
//! two so every wrap is a mask instead of a hardware division. Compared
//! with the previous array-of-`Packet` arena this keeps the per-cycle
//! advance/arbitrate/deliver loop branch-light and cache-linear: the switch
//! pass touches only the tag lane, delivery only the destination and
//! injection-time lanes, and the unobservable `id`/`source` header fields
//! are not stored at all. The wormhole core keeps its flits in a
//! [`RingArena`] (one contiguous, preallocated slot vector plus per-ring
//! `head`/`len` cursors) with the same power-of-two wrap.
//!
//! All cores support [`SwitchCore::reset`], which rewinds the arenas to
//! their pristine state without reallocating — the batching layer
//! ([`crate::batch`]) uses it to run every replication of a scenario
//! through one core instance.

use crate::config::BufferMode;
use crate::fabric::Fabric;
use crate::fault::{FaultView, LinkStatus};
use crate::metrics::Metrics;
use crate::packet::{Flit, Packet};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The storage-and-switching half of the simulation engine.
///
/// The engine calls the phases in a fixed order each cycle — [`deliver`],
/// [`switch`], then for each injection attempt [`can_accept`] followed by
/// [`inject`] — and reads [`in_flight`] / [`occupancy`] for the end-of-cycle
/// accounting. Implementations own every packet (or flit) inside the fabric;
/// the engine owns the clock, the RNG and the traffic sources.
///
/// [`deliver`]: SwitchCore::deliver
/// [`switch`]: SwitchCore::switch
/// [`can_accept`]: SwitchCore::can_accept
/// [`inject`]: SwitchCore::inject
/// [`in_flight`]: SwitchCore::in_flight
/// [`occupancy`]: SwitchCore::occupancy
pub trait SwitchCore: std::fmt::Debug + Send {
    /// Phase 1 — drain everything deliverable at the last stage, recording
    /// deliveries, misroutes and (post-warm-up) latencies. Traffic sitting
    /// in a dead last-stage switch is lost instead (`faults`).
    fn deliver(
        &mut self,
        fabric: &Fabric,
        faults: &FaultView<'_>,
        cycle: u64,
        warmup: u64,
        metrics: &mut Metrics,
    );

    /// Phase 2 — move packets (or flits) one stage forward, from the
    /// next-to-last stage back to the first so that space freed in a stage
    /// is visible to the stage behind it within the same cycle. `faults`
    /// supplies the cycle's dead/degraded components: traffic that must
    /// cross a dead link (or enter a dead switch) is dropped as a fault
    /// loss, and degraded links carry traffic on even cycles only.
    fn switch(
        &mut self,
        fabric: &Fabric,
        faults: &FaultView<'_>,
        rng: &mut ChaCha8Rng,
        metrics: &mut Metrics,
    );

    /// Whether first-stage cell `cell` can accept one more packet right now.
    fn can_accept(&self, cell: usize) -> bool;

    /// Phase 3 — admit `packet` at first-stage cell `cell`. Callers must
    /// check [`SwitchCore::can_accept`] first.
    fn inject(&mut self, cell: usize, packet: Packet);

    /// Number of packets currently inside the fabric.
    fn in_flight(&self) -> u64;

    /// `(occupied, total)` storage-unit snapshot — queued packets over queue
    /// slots for the packet cores, active lanes over all lanes for the
    /// wormhole core — accumulated by the engine into the occupancy metrics.
    fn occupancy(&self) -> (u64, u64);

    /// Rewinds the core to its freshly constructed (empty) state without
    /// reallocating, so one core instance can run many replications.
    fn reset(&mut self);
}

/// Builds the core matching `mode` for a `stages × cells` fabric.
///
/// `mode` must already be validated ([`BufferMode::validate`]); the engine
/// guarantees this by validating the whole `SimConfig` first.
pub(crate) fn build_core(mode: BufferMode, stages: usize, cells: usize) -> Box<dyn SwitchCore> {
    match mode {
        BufferMode::Unbuffered => Box::new(UnbufferedCore::new(stages, cells)),
        BufferMode::Fifo(depth) => Box::new(FifoCore::new(stages, cells, depth)),
        BufferMode::Wormhole {
            lanes,
            lane_depth,
            flits_per_packet,
        } => Box::new(WormholeCore::new(
            stages,
            cells,
            lanes,
            lane_depth,
            flits_per_packet,
        )),
    }
}

/// A flat arena of equally sized ring buffers.
///
/// Ring `r` occupies the slot range `r << shift .. (r + 1) << shift` of one
/// contiguous vector; `head[r]`/`len[r]` are its cursors. Storage per ring is
/// padded up to the next power of two so every cursor wrap is a bitwise AND
/// instead of a hardware division; the *logical* capacity (`is_full`,
/// [`RingArena::slot_count`]) stays exactly `cap`. Every operation is O(1)
/// with no allocation after construction.
#[derive(Debug, Clone)]
pub struct RingArena<T> {
    slots: Vec<T>,
    head: Vec<u32>,
    len: Vec<u32>,
    /// Logical per-ring capacity — the admission limit.
    cap: u32,
    /// `cap.next_power_of_two() - 1` — the cursor wrap mask.
    mask: u32,
    /// `log2(cap.next_power_of_two())` — the ring stride shift.
    shift: u32,
}

impl<T: Copy + Default> RingArena<T> {
    /// An arena of `rings` empty rings, each holding up to `cap` values.
    pub fn new(rings: usize, cap: usize) -> Self {
        assert!(cap > 0 && cap < u32::MAX as usize, "ring capacity {cap}");
        let storage = cap.next_power_of_two();
        RingArena {
            slots: vec![T::default(); rings * storage],
            head: vec![0; rings],
            len: vec![0; rings],
            cap: cap as u32,
            mask: storage as u32 - 1,
            shift: storage.trailing_zeros(),
        }
    }

    /// Number of values currently in ring `r`.
    #[inline]
    pub fn len(&self, r: usize) -> usize {
        self.len[r] as usize
    }

    /// Whether ring `r` holds no values.
    #[inline]
    pub fn is_empty(&self, r: usize) -> bool {
        self.len[r] == 0
    }

    /// Whether ring `r` is at (logical) capacity.
    #[inline]
    pub fn is_full(&self, r: usize) -> bool {
        self.len[r] == self.cap
    }

    #[inline]
    fn slot(&self, r: usize, offset: u32) -> usize {
        (r << self.shift) + ((self.head[r].wrapping_add(offset)) & self.mask) as usize
    }

    /// Appends `value` at the back of ring `r`.
    ///
    /// # Panics
    ///
    /// Panics when the ring is full — overflow would silently corrupt the
    /// ring's FIFO contents, so it is never allowed to pass.
    pub fn push_back(&mut self, r: usize, value: T) {
        assert!(!self.is_full(r), "ring {r} overflow");
        let s = self.slot(r, self.len[r]);
        self.slots[s] = value;
        self.len[r] += 1;
    }

    /// Prepends `value` at the front of ring `r` (used to retain blocked
    /// packets in their original order).
    ///
    /// # Panics
    ///
    /// Panics when the ring is full (see [`RingArena::push_back`]).
    pub fn push_front(&mut self, r: usize, value: T) {
        assert!(!self.is_full(r), "ring {r} overflow");
        self.head[r] = self.head[r].wrapping_add(self.mask) & self.mask;
        let s = self.slot(r, 0);
        self.slots[s] = value;
        self.len[r] += 1;
    }

    /// Removes and returns the front value of ring `r`, if any.
    pub fn pop_front(&mut self, r: usize) -> Option<T> {
        if self.len[r] == 0 {
            return None;
        }
        let s = self.slot(r, 0);
        let v = self.slots[s];
        self.head[r] = (self.head[r] + 1) & self.mask;
        self.len[r] -= 1;
        Some(v)
    }

    /// Total number of values across every ring.
    pub fn total_len(&self) -> u64 {
        self.len.iter().map(|&l| u64::from(l)).sum()
    }

    /// Total *logical* slot capacity of the arena (`rings × cap`), excluding
    /// power-of-two padding — this feeds the occupancy metrics and must not
    /// change with the storage layout.
    pub fn slot_count(&self) -> u64 {
        self.head.len() as u64 * u64::from(self.cap)
    }

    /// Empties every ring without reallocating or touching slot storage.
    pub fn reset(&mut self) {
        self.head.fill(0);
        self.len.fill(0);
    }
}

/// Shared state and cycle logic of the two packet-atomic cores, stored as
/// struct-of-arrays ring buffers: one ring per `(stage, cell)` whose slots
/// live in three parallel lanes — routing `tag`, `dest`ination, and
/// `injected_at` time. The `id`/`source` header fields of [`Packet`] are
/// never observable through the metrics, so they are not stored at all;
/// the switching pass reads only the tag lane to arbitrate, and delivery
/// reads only the destination and injection-time lanes.
#[derive(Debug)]
struct PacketQueues {
    tag: Vec<u32>,
    dest: Vec<u32>,
    injected_at: Vec<u64>,
    head: Vec<u32>,
    len: Vec<u32>,
    stages: usize,
    cells: usize,
    /// Logical per-ring capacity — the admission limit.
    capacity: u32,
    /// Power-of-two cursor wrap mask (storage is padded like [`RingArena`]).
    mask: u32,
    /// Ring stride shift into the slot lanes.
    shift: u32,
}

impl PacketQueues {
    fn new(stages: usize, cells: usize, capacity: usize) -> Self {
        assert!(
            capacity > 0 && capacity < u32::MAX as usize,
            "queue capacity {capacity}"
        );
        let storage = capacity.next_power_of_two();
        let rings = stages * cells;
        PacketQueues {
            tag: vec![0; rings * storage],
            dest: vec![0; rings * storage],
            injected_at: vec![0; rings * storage],
            head: vec![0; rings],
            len: vec![0; rings],
            stages,
            cells,
            capacity: capacity as u32,
            mask: storage as u32 - 1,
            shift: storage.trailing_zeros(),
        }
    }

    #[inline]
    fn ring(&self, stage: usize, cell: usize) -> usize {
        stage * self.cells + cell
    }

    #[inline]
    fn slot(&self, r: usize, offset: u32) -> usize {
        (r << self.shift) + ((self.head[r].wrapping_add(offset)) & self.mask) as usize
    }

    #[inline]
    fn pop_front(&mut self, r: usize) -> Option<(u32, u32, u64)> {
        if self.len[r] == 0 {
            return None;
        }
        let s = self.slot(r, 0);
        let v = (self.tag[s], self.dest[s], self.injected_at[s]);
        self.head[r] = (self.head[r] + 1) & self.mask;
        self.len[r] -= 1;
        Some(v)
    }

    #[inline]
    fn push_back(&mut self, r: usize, tag: u32, dest: u32, injected_at: u64) {
        debug_assert!(self.len[r] < self.capacity, "ring {r} overflow");
        let s = self.slot(r, self.len[r]);
        self.tag[s] = tag;
        self.dest[s] = dest;
        self.injected_at[s] = injected_at;
        self.len[r] += 1;
    }

    #[inline]
    fn push_front(&mut self, r: usize, tag: u32, dest: u32, injected_at: u64) {
        debug_assert!(self.len[r] < self.capacity, "ring {r} overflow");
        self.head[r] = self.head[r].wrapping_add(self.mask) & self.mask;
        let s = self.slot(r, 0);
        self.tag[s] = tag;
        self.dest[s] = dest;
        self.injected_at[s] = injected_at;
        self.len[r] += 1;
    }

    fn total_len(&self) -> u64 {
        self.len.iter().map(|&l| u64::from(l)).sum()
    }

    /// Logical slot capacity (`rings × capacity`), excluding padding.
    fn slot_count(&self) -> u64 {
        self.head.len() as u64 * u64::from(self.capacity)
    }

    fn reset(&mut self) {
        self.head.fill(0);
        self.len.fill(0);
    }

    fn deliver(&mut self, faults: &FaultView<'_>, cycle: u64, warmup: u64, metrics: &mut Metrics) {
        let last = self.stages - 1;
        let degraded = faults.any_active();
        for cell in 0..self.cells {
            let r = self.ring(last, cell);
            if faults.cell_dead(last, cell) {
                while self.pop_front(r).is_some() {
                    metrics.dropped_fault += 1;
                    metrics.record_fault_exposure(last);
                }
                continue;
            }
            while let Some((_, dest, injected_at)) = self.pop_front(r) {
                metrics.delivered += 1;
                if degraded {
                    metrics.delivered_despite_fault += 1;
                }
                if dest as usize != cell {
                    metrics.misrouted += 1;
                }
                if injected_at >= warmup {
                    metrics.record_latency(cycle - injected_at);
                }
            }
        }
    }

    /// One switching pass. `unbuffered` selects the drop-on-conflict policy;
    /// otherwise blocked packets are retained at the head of their queue in
    /// arrival order.
    fn switch(
        &mut self,
        fabric: &Fabric,
        faults: &FaultView<'_>,
        rng: &mut ChaCha8Rng,
        metrics: &mut Metrics,
        unbuffered: bool,
    ) {
        for s in (0..self.stages - 1).rev() {
            for cell in 0..self.cells {
                let r = self.ring(s, cell);
                // A switch that died takes its queued traffic with it.
                if faults.cell_dead(s, cell) {
                    while self.pop_front(r).is_some() {
                        metrics.dropped_fault += 1;
                        metrics.record_fault_exposure(s);
                    }
                    continue;
                }
                // A 2x2 cell forwards at most one packet per out-port per
                // cycle; only the two packets at the head of the queue are
                // considered this cycle (FIFO order preserved).
                let mut port_used = [false; 2];
                let mut cand_tag = [0u32; 2];
                let mut cand_dest = [0u32; 2];
                let mut cand_inj = [0u64; 2];
                let mut count = 0;
                while count < 2 {
                    match self.pop_front(r) {
                        Some((tag, dest, injected_at)) => {
                            cand_tag[count] = tag;
                            cand_dest[count] = dest;
                            cand_inj[count] = injected_at;
                            count += 1;
                        }
                        None => break,
                    }
                }
                // Resolve same-port contention with a fair coin.
                if count == 2 && ((cand_tag[0] ^ cand_tag[1]) >> s) & 1 == 0 && rng.gen_bool(0.5) {
                    cand_tag.swap(0, 1);
                    cand_dest.swap(0, 1);
                    cand_inj.swap(0, 1);
                }
                let mut ret_tag = [0u32; 2];
                let mut ret_dest = [0u32; 2];
                let mut ret_inj = [0u64; 2];
                let mut retained_count = 0;
                for i in 0..count {
                    let (tag, dest, injected_at) = (cand_tag[i], cand_dest[i], cand_inj[i]);
                    let port = ((tag >> s) & 1) as usize;
                    if port_used[port] {
                        // Lost arbitration.
                        if unbuffered {
                            metrics.dropped_arbitration += 1;
                        } else {
                            ret_tag[retained_count] = tag;
                            ret_dest[retained_count] = dest;
                            ret_inj[retained_count] = injected_at;
                            retained_count += 1;
                        }
                        continue;
                    }
                    match faults.link_status(s, cell, port) {
                        LinkStatus::Down => {
                            // The packet's next hop is gone: it is lost in
                            // flight.
                            metrics.dropped_fault += 1;
                            metrics.record_fault_exposure(s);
                            continue;
                        }
                        LinkStatus::Throttled => {
                            // Half-bandwidth link on an off cycle: wait if
                            // the core can hold the packet, lose it if not.
                            metrics.record_fault_exposure(s);
                            if unbuffered {
                                metrics.dropped_fault += 1;
                            } else {
                                ret_tag[retained_count] = tag;
                                ret_dest[retained_count] = dest;
                                ret_inj[retained_count] = injected_at;
                                retained_count += 1;
                            }
                            continue;
                        }
                        LinkStatus::Up => {}
                    }
                    let next = fabric.next_cell(s, cell as u32, port as u8) as usize;
                    if faults.cell_dead(s + 1, next) {
                        metrics.dropped_fault += 1;
                        metrics.record_fault_exposure(s);
                        continue;
                    }
                    let nr = self.ring(s + 1, next);
                    if self.len[nr] < self.capacity {
                        port_used[port] = true;
                        self.push_back(nr, tag, dest, injected_at);
                    } else if unbuffered {
                        metrics.dropped_backpressure += 1;
                    } else {
                        ret_tag[retained_count] = tag;
                        ret_dest[retained_count] = dest;
                        ret_inj[retained_count] = injected_at;
                        retained_count += 1;
                    }
                }
                // Put retained packets back at the front, preserving order.
                for i in (0..retained_count).rev() {
                    self.push_front(r, ret_tag[i], ret_dest[i], ret_inj[i]);
                }
                // In unbuffered mode nothing may linger in an interior queue.
                if unbuffered && s > 0 {
                    while self.pop_front(r).is_some() {
                        metrics.dropped_backpressure += 1;
                    }
                }
            }
        }
    }

    fn can_accept(&self, cell: usize) -> bool {
        self.len[self.ring(0, cell)] < self.capacity
    }

    fn inject(&mut self, cell: usize, packet: Packet) {
        let r = self.ring(0, cell);
        self.push_back(r, packet.tag, packet.destination, packet.injected_at);
    }
}

/// The shared packet-atomic core, parameterized at the type level by its
/// conflict policy: `UNBUFFERED = true` drops conflict losers (Patel's
/// model), `false` retains them with backpressure. Use through the
/// [`UnbufferedCore`] and [`FifoCore`] aliases.
#[derive(Debug)]
pub struct PacketCore<const UNBUFFERED: bool> {
    queues: PacketQueues,
}

/// Patel's unbuffered crossbar cells over a flat arena: conflict losers and
/// backpressured packets are dropped, so the fabric never holds more than
/// two packets per cell.
pub type UnbufferedCore = PacketCore<true>;

/// Per-cell FIFOs with backpressure over a flat arena: blocked packets stay
/// queued, and injection is refused when the first-stage queue is full.
pub type FifoCore = PacketCore<false>;

impl PacketCore<true> {
    /// An unbuffered core for a `stages × cells` fabric.
    pub fn new(stages: usize, cells: usize) -> Self {
        PacketCore {
            queues: PacketQueues::new(stages, cells, 2),
        }
    }
}

impl PacketCore<false> {
    /// A FIFO core for a `stages × cells` fabric with per-cell FIFOs holding
    /// `2 · depth` packets (depth per input port of the 2×2 cell).
    pub fn new(stages: usize, cells: usize, depth: usize) -> Self {
        PacketCore {
            queues: PacketQueues::new(stages, cells, 2 * depth.max(1)),
        }
    }
}

impl<const UNBUFFERED: bool> SwitchCore for PacketCore<UNBUFFERED> {
    fn deliver(
        &mut self,
        _fabric: &Fabric,
        faults: &FaultView<'_>,
        cycle: u64,
        warmup: u64,
        metrics: &mut Metrics,
    ) {
        self.queues.deliver(faults, cycle, warmup, metrics);
    }

    fn switch(
        &mut self,
        fabric: &Fabric,
        faults: &FaultView<'_>,
        rng: &mut ChaCha8Rng,
        metrics: &mut Metrics,
    ) {
        self.queues.switch(fabric, faults, rng, metrics, UNBUFFERED);
    }

    fn can_accept(&self, cell: usize) -> bool {
        self.queues.can_accept(cell)
    }

    fn inject(&mut self, cell: usize, packet: Packet) {
        self.queues.inject(cell, packet);
    }

    fn in_flight(&self) -> u64 {
        self.queues.total_len()
    }

    fn occupancy(&self) -> (u64, u64) {
        (self.queues.total_len(), self.queues.slot_count())
    }

    fn reset(&mut self) {
        self.queues.reset();
    }
}

/// Bookkeeping of one virtual-channel lane.
#[derive(Debug, Clone, Copy, Default)]
struct LaneState {
    /// Whether a worm currently owns this lane.
    active: bool,
    /// Header of the owning worm (routing tag, destination, injection time).
    packet: Packet,
    /// Flits of the worm that have not yet arrived into this lane (they are
    /// still in the upstream lane, or in the source staging buffer for
    /// first-stage lanes).
    to_receive: u32,
    /// Whether the head flit has already allocated a downstream lane.
    route_set: bool,
    /// Global index of the allocated downstream lane (valid iff `route_set`).
    out_lane: u32,
}

/// Multi-lane virtual-channel wormhole core.
///
/// Every cell owns `lanes` lanes, each a [`RingArena`] ring of `lane_depth`
/// flits. A packet is injected as a worm of `flits_per_packet` flits into a
/// free first-stage lane; its head flit allocates a free lane in the
/// downstream cell chosen by destination-tag routing, and the body streams
/// behind it at one flit per out-port per cycle (same-port contention between
/// lanes is arbitrated uniformly at random, and a blocked winner yields the
/// port to the next ready lane). A lane is released only when the worm's tail
/// flit has drained through it, so a blocked worm holds lanes across several
/// stages — the defining wormhole behaviour. The stage-ordered channel
/// dependencies of a MIN are acyclic, so this cannot deadlock.
#[derive(Debug)]
pub struct WormholeCore {
    stages: usize,
    cells: usize,
    lanes_per_cell: usize,
    flits_per_packet: u32,
    lane: Vec<LaneState>,
    flits: RingArena<Flit>,
    in_flight: u64,
    /// Reused per-port candidate lists for the switching pass, kept on the
    /// core so steady-state switching allocates nothing.
    want_scratch: [Vec<usize>; 2],
}

impl WormholeCore {
    /// A core for a `stages × cells` fabric with `lanes` lanes of
    /// `lane_depth` flits per cell and `flits_per_packet` flits per worm.
    /// All three parameters must be nonzero (see [`BufferMode::validate`]).
    pub fn new(
        stages: usize,
        cells: usize,
        lanes: usize,
        lane_depth: usize,
        flits_per_packet: usize,
    ) -> Self {
        assert!(
            lanes > 0 && lane_depth > 0 && flits_per_packet > 0,
            "wormhole parameters must be nonzero"
        );
        let lane_count = stages * cells * lanes;
        WormholeCore {
            stages,
            cells,
            lanes_per_cell: lanes,
            flits_per_packet: flits_per_packet as u32,
            lane: vec![LaneState::default(); lane_count],
            flits: RingArena::new(lane_count, lane_depth),
            in_flight: 0,
            want_scratch: [Vec::new(), Vec::new()],
        }
    }

    #[inline]
    fn lane_index(&self, stage: usize, cell: usize, lane: usize) -> usize {
        (stage * self.cells + cell) * self.lanes_per_cell + lane
    }

    /// First free lane of `(stage, cell)`, scanning in lane order.
    fn free_lane(&self, stage: usize, cell: usize) -> Option<usize> {
        (0..self.lanes_per_cell)
            .map(|l| self.lane_index(stage, cell, l))
            .find(|&li| !self.lane[li].active)
    }

    /// Tries to move the front flit of lane `li` across the stage-`s` link
    /// through `port`. Returns whether a flit moved.
    fn try_forward(
        &mut self,
        fabric: &Fabric,
        li: usize,
        s: usize,
        cell: usize,
        port: usize,
    ) -> bool {
        if !self.lane[li].route_set {
            // Head flit: allocate a free lane in the downstream cell.
            let next_cell = fabric.next_cell(s, cell as u32, port as u8) as usize;
            let Some(dl) = self.free_lane(s + 1, next_cell) else {
                return false;
            };
            let packet = self.lane[li].packet;
            self.lane[li].route_set = true;
            self.lane[li].out_lane = dl as u32;
            self.lane[dl] = LaneState {
                active: true,
                packet,
                to_receive: self.flits_per_packet,
                route_set: false,
                out_lane: 0,
            };
        }
        let dl = self.lane[li].out_lane as usize;
        if self.flits.is_full(dl) {
            return false;
        }
        let flit = self
            .flits
            .pop_front(li)
            .expect("forward candidates hold a flit");
        self.flits.push_back(dl, flit);
        self.lane[dl].to_receive -= 1;
        // The whole worm has drained through: release the upstream lane.
        if self.flits.is_empty(li) && self.lane[li].to_receive == 0 {
            self.lane[li] = LaneState::default();
        }
        true
    }

    /// Kills the worm with packet id `id` outright: every lane it holds (in
    /// any stage, including flits already forwarded past the fault and the
    /// source staging remainder) is drained and freed. One fault loss is
    /// recorded at `stage`.
    fn kill_worm(&mut self, id: u64, stage: usize, metrics: &mut Metrics) {
        for li in 0..self.lane.len() {
            if self.lane[li].active && self.lane[li].packet.id == id {
                while self.flits.pop_front(li).is_some() {}
                self.lane[li] = LaneState::default();
            }
        }
        self.in_flight -= 1;
        metrics.dropped_fault += 1;
        metrics.record_fault_exposure(stage);
    }

    /// Kills every worm holding a lane at `(stage, cell)` — the cell died.
    fn kill_worms_at(&mut self, stage: usize, cell: usize, metrics: &mut Metrics) {
        for l in 0..self.lanes_per_cell {
            let li = self.lane_index(stage, cell, l);
            if self.lane[li].active {
                let id = self.lane[li].packet.id;
                self.kill_worm(id, stage, metrics);
            }
        }
    }
}

impl SwitchCore for WormholeCore {
    fn deliver(
        &mut self,
        _fabric: &Fabric,
        faults: &FaultView<'_>,
        cycle: u64,
        warmup: u64,
        metrics: &mut Metrics,
    ) {
        // A last-stage cell has two output terminals, so it ejects at most
        // two flits per cycle (one per ejection link, matching the
        // one-flit-per-link discipline of the interior stages). Lanes take
        // the ejection links round-robin — the scan start rotates with the
        // cycle — and a worm is delivered when its tail flit leaves.
        let degraded = faults.any_active();
        for cell in 0..self.cells {
            if degraded && faults.cell_dead(self.stages - 1, cell) {
                self.kill_worms_at(self.stages - 1, cell, metrics);
                continue;
            }
            let mut eject_budget = 2u32;
            let start = (cycle as usize) % self.lanes_per_cell;
            for k in 0..self.lanes_per_cell {
                if eject_budget == 0 {
                    break;
                }
                let l = (start + k) % self.lanes_per_cell;
                let li = self.lane_index(self.stages - 1, cell, l);
                if !self.lane[li].active {
                    continue;
                }
                if let Some(flit) = self.flits.pop_front(li) {
                    eject_budget -= 1;
                    metrics.flits_delivered += 1;
                    if flit.is_tail() {
                        let p = self.lane[li].packet;
                        metrics.delivered += 1;
                        if degraded {
                            metrics.delivered_despite_fault += 1;
                        }
                        if p.destination as usize != cell {
                            metrics.misrouted += 1;
                        }
                        if p.injected_at >= warmup {
                            metrics.record_latency(cycle - p.injected_at);
                        }
                        self.lane[li] = LaneState::default();
                        self.in_flight -= 1;
                    }
                }
            }
        }
    }

    fn switch(
        &mut self,
        fabric: &Fabric,
        faults: &FaultView<'_>,
        rng: &mut ChaCha8Rng,
        metrics: &mut Metrics,
    ) {
        // Per cell, lanes with a flit ready to cross this stage's link,
        // grouped by the out-port their worm's routing tag requests. The
        // scratch buffers live on the core so steady-state switching stays
        // allocation-free. The fault checks are gated on `faulty` so the
        // healthy hot path is untouched.
        let faulty = faults.any_active();
        let mut want = std::mem::take(&mut self.want_scratch);
        for s in (0..self.stages - 1).rev() {
            for cell in 0..self.cells {
                if faulty && faults.cell_dead(s, cell) {
                    self.kill_worms_at(s, cell, metrics);
                    continue;
                }
                want[0].clear();
                want[1].clear();
                for l in 0..self.lanes_per_cell {
                    let li = self.lane_index(s, cell, l);
                    if self.lane[li].active && !self.flits.is_empty(li) {
                        let port = self.lane[li].packet.port_at(s) as usize;
                        want[port].push(li);
                    }
                }
                for port in 0..2 {
                    let candidates = std::mem::take(&mut want[port]);
                    if candidates.is_empty() {
                        continue;
                    }
                    if faulty {
                        let next = fabric.next_cell(s, cell as u32, port as u8) as usize;
                        let status = faults.link_status(s, cell, port);
                        if status == LinkStatus::Down || faults.cell_dead(s + 1, next) {
                            // The link (or the switch behind it) is gone:
                            // every worm routed through it dies in place.
                            for &li in &candidates {
                                let id = self.lane[li].packet.id;
                                self.kill_worm(id, s, metrics);
                            }
                            want[port] = candidates;
                            continue;
                        }
                        if status == LinkStatus::Throttled {
                            // Off cycle of a half-bandwidth link: everyone
                            // holds their lanes and waits.
                            for _ in &candidates {
                                metrics.flit_stalls += 1;
                                metrics.record_fault_exposure(s);
                            }
                            want[port] = candidates;
                            continue;
                        }
                    }
                    // Fair arbitration: a uniformly chosen winner gets the
                    // port; if it cannot actually move (no free downstream
                    // lane, or downstream lane full) the port falls through
                    // to the next ready lane in cyclic order.
                    let winner = if candidates.len() == 1 {
                        0
                    } else {
                        rng.gen_range(0..candidates.len())
                    };
                    let mut moved = false;
                    for k in 0..candidates.len() {
                        let li = candidates[(winner + k) % candidates.len()];
                        if !moved && self.try_forward(fabric, li, s, cell, port) {
                            moved = true;
                        } else {
                            metrics.flit_stalls += 1;
                        }
                    }
                    want[port] = candidates;
                }
            }
        }
        self.want_scratch = want;
        // Source streaming: each first-stage lane draws one flit per cycle
        // from its worm's injection staging buffer, after the stage pass so
        // space freed this cycle is usable immediately.
        for cell in 0..self.cells {
            for l in 0..self.lanes_per_cell {
                let li = self.lane_index(0, cell, l);
                let state = self.lane[li];
                if state.active && state.to_receive > 0 && !self.flits.is_full(li) {
                    let seq = self.flits_per_packet - state.to_receive;
                    self.flits
                        .push_back(li, state.packet.flit(seq, self.flits_per_packet));
                    self.lane[li].to_receive -= 1;
                }
            }
        }
    }

    fn can_accept(&self, cell: usize) -> bool {
        self.free_lane(0, cell).is_some()
    }

    fn inject(&mut self, cell: usize, packet: Packet) {
        let li = self
            .free_lane(0, cell)
            .expect("inject is only called after can_accept");
        self.lane[li] = LaneState {
            active: true,
            packet,
            // The head flit enters the lane in the injection cycle itself;
            // the rest of the worm streams in from the source staging buffer.
            to_receive: self.flits_per_packet - 1,
            route_set: false,
            out_lane: 0,
        };
        self.flits
            .push_back(li, packet.flit(0, self.flits_per_packet));
        self.in_flight += 1;
    }

    fn in_flight(&self) -> u64 {
        self.in_flight
    }

    fn occupancy(&self) -> (u64, u64) {
        let occupied = self.lane.iter().filter(|l| l.active).count() as u64;
        (occupied, self.lane.len() as u64)
    }

    fn reset(&mut self) {
        self.lane.fill(LaneState::default());
        self.flits.reset();
        self.in_flight = 0;
        self.want_scratch[0].clear();
        self.want_scratch[1].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_arena_is_fifo_and_wraps() {
        let mut a: RingArena<u32> = RingArena::new(2, 3);
        assert!(a.is_empty(0) && a.is_empty(1));
        a.push_back(0, 1);
        a.push_back(0, 2);
        a.push_back(0, 3);
        assert!(a.is_full(0));
        assert!(a.is_empty(1), "rings are independent");
        assert_eq!(a.pop_front(0), Some(1));
        a.push_back(0, 4); // wraps around the slot boundary
        assert_eq!(a.pop_front(0), Some(2));
        assert_eq!(a.pop_front(0), Some(3));
        assert_eq!(a.pop_front(0), Some(4));
        assert_eq!(a.pop_front(0), None);
    }

    #[test]
    fn ring_arena_push_front_restores_order() {
        let mut a: RingArena<u32> = RingArena::new(1, 4);
        a.push_back(0, 10);
        a.push_back(0, 11);
        let first = a.pop_front(0).unwrap();
        let second = a.pop_front(0).unwrap();
        // Retain both, preserving order, as the switch phase does.
        a.push_front(0, second);
        a.push_front(0, first);
        assert_eq!(a.pop_front(0), Some(10));
        assert_eq!(a.pop_front(0), Some(11));
        assert_eq!(a.total_len(), 0);
        assert_eq!(a.slot_count(), 4);
    }

    #[test]
    fn ring_arena_padding_keeps_logical_capacity_and_reset_empties() {
        // cap = 3 pads storage to 4, but admission and the occupancy
        // denominator must still see 3 slots per ring.
        let mut a: RingArena<u32> = RingArena::new(2, 3);
        assert_eq!(a.slot_count(), 6);
        a.push_back(0, 1);
        a.push_back(0, 2);
        a.push_back(0, 3);
        assert!(a.is_full(0), "logical capacity, not padded storage");
        a.push_back(1, 9);
        a.reset();
        assert!(a.is_empty(0) && a.is_empty(1));
        assert_eq!(a.total_len(), 0);
        a.push_back(0, 7);
        assert_eq!(a.pop_front(0), Some(7));
    }

    #[test]
    fn packet_cores_reset_to_empty() {
        for mode in [BufferMode::Unbuffered, BufferMode::Fifo(3)] {
            let mut core = build_core(mode, 3, 4);
            core.inject(1, Packet::default());
            assert_eq!(core.in_flight(), 1);
            core.reset();
            assert_eq!(core.in_flight(), 0);
            assert_eq!(core.occupancy().0, 0);
            assert!(core.can_accept(1));
        }
        let mut worm = WormholeCore::new(3, 4, 2, 2, 3);
        worm.inject(1, Packet::default());
        worm.inject(1, Packet::default());
        assert_eq!(worm.in_flight(), 2);
        worm.reset();
        assert_eq!(worm.in_flight(), 0);
        assert_eq!(worm.occupancy().0, 0);
        assert!(worm.can_accept(1));
    }

    #[test]
    fn fifo_core_occupancy_denominator_ignores_padding() {
        // Fifo(3) queues hold 2·3 = 6 packets; padded storage is 8 per ring
        // but the occupancy denominator must stay 6 per ring.
        let core = FifoCore::new(3, 4, 3);
        assert_eq!(core.occupancy().1, 3 * 4 * 6);
    }

    #[test]
    fn wormhole_lane_allocation_scans_in_order_and_respects_occupancy() {
        let mut core = WormholeCore::new(3, 4, 2, 2, 3);
        assert_eq!(core.free_lane(0, 1), Some(core.lane_index(0, 1, 0)));
        let p = Packet::default();
        core.inject(1, p);
        assert_eq!(core.free_lane(0, 1), Some(core.lane_index(0, 1, 1)));
        core.inject(1, p);
        assert_eq!(core.free_lane(0, 1), None);
        assert!(!core.can_accept(1));
        assert!(core.can_accept(0));
        assert_eq!(core.in_flight(), 2);
        let (occupied, total) = core.occupancy();
        assert_eq!(occupied, 2);
        assert_eq!(total, 3 * 4 * 2);
    }

    #[test]
    fn build_core_matches_the_mode() {
        let modes = [
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 2,
                flits_per_packet: 4,
            },
        ];
        for mode in modes {
            let core = build_core(mode, 3, 4);
            assert_eq!(core.in_flight(), 0);
            assert!(core.can_accept(0));
        }
    }
}
