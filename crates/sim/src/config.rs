//! Simulation configuration.

use crate::traffic::TrafficPattern;
use serde::{Deserialize, Serialize};

/// Buffering discipline of the 2×2 cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferMode {
    /// Patel's unbuffered model: when two packets request the same out-port
    /// in the same cycle one of them (chosen uniformly) is dropped.
    Unbuffered,
    /// Per-input FIFOs of the given depth with backpressure: a packet that
    /// cannot advance stays in its queue; injection fails when the
    /// first-stage queue is full.
    Fifo(usize),
}

/// Complete description of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Probability that an idle input injects a packet in a given cycle.
    pub offered_load: f64,
    /// Buffering discipline.
    pub buffer_mode: BufferMode,
    /// Traffic pattern (destination distribution).
    pub traffic: TrafficPattern,
    /// Total number of simulated cycles (the warm-up runs inside this
    /// budget).
    pub cycles: u64,
    /// Number of warm-up cycles at the start of the run, excluded from the
    /// latency statistics.
    pub warmup: u64,
    /// PRNG seed (the simulation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            offered_load: 0.5,
            buffer_mode: BufferMode::Unbuffered,
            traffic: TrafficPattern::Uniform,
            cycles: 1_000,
            warmup: 100,
            seed: 0x1988,
        }
    }
}

impl SimConfig {
    /// Builder-style setter for the offered load.
    pub fn with_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be a probability");
        self.offered_load = load;
        self
    }

    /// Builder-style setter for the buffer mode.
    pub fn with_buffer(mut self, mode: BufferMode) -> Self {
        self.buffer_mode = mode;
        self
    }

    /// Builder-style setter for the traffic pattern.
    pub fn with_traffic(mut self, traffic: TrafficPattern) -> Self {
        self.traffic = traffic;
        self
    }

    /// Builder-style setter for the cycle counts.
    pub fn with_cycles(mut self, cycles: u64, warmup: u64) -> Self {
        self.cycles = cycles;
        self.warmup = warmup;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_compose() {
        let cfg = SimConfig::default()
            .with_load(0.9)
            .with_buffer(BufferMode::Fifo(4))
            .with_traffic(TrafficPattern::Hotspot {
                fraction: 0.2,
                target: 0,
            })
            .with_cycles(500, 50)
            .with_seed(7);
        assert_eq!(cfg.offered_load, 0.9);
        assert_eq!(cfg.buffer_mode, BufferMode::Fifo(4));
        assert_eq!(cfg.cycles, 500);
        assert_eq!(cfg.warmup, 50);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_load_is_rejected() {
        let _ = SimConfig::default().with_load(1.5);
    }
}
