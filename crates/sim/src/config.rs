//! Simulation configuration.

use crate::fault::FaultPlan;
use crate::traffic::{TrafficError, TrafficPattern};
use serde::{Deserialize, Serialize};

/// Buffering discipline of the 2×2 cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferMode {
    /// Patel's unbuffered model: when two packets request the same out-port
    /// in the same cycle one of them (chosen uniformly) is dropped.
    Unbuffered,
    /// Per-input FIFOs of the given depth with backpressure: a packet that
    /// cannot advance stays in its queue; injection fails when the
    /// first-stage queue is full.
    Fifo(usize),
    /// Multi-lane virtual-channel wormhole switching: each packet is split
    /// into `flits_per_packet` flits, every cell owns `lanes` lanes of
    /// `lane_depth` flits each, a worm's head flit allocates one lane per
    /// cell it traverses, and a blocked worm holds its lanes across stages
    /// until the tail flit drains through.
    Wormhole {
        /// Virtual-channel lanes per cell.
        lanes: usize,
        /// Flit capacity of each lane.
        lane_depth: usize,
        /// Number of flits every packet is split into.
        flits_per_packet: usize,
    },
}

impl BufferMode {
    /// Short stable label for tables and report identifiers.
    pub fn label(&self) -> String {
        match self {
            BufferMode::Unbuffered => "unbuffered".to_string(),
            BufferMode::Fifo(depth) => format!("fifo({depth})"),
            BufferMode::Wormhole {
                lanes,
                lane_depth,
                flits_per_packet,
            } => format!("worm({lanes}x{lane_depth}x{flits_per_packet})"),
        }
    }

    /// Checks the mode's parameters (every lane/depth/flit count must be
    /// nonzero).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            BufferMode::Unbuffered => Ok(()),
            BufferMode::Fifo(depth) => {
                if depth == 0 {
                    Err(ConfigError::ZeroParameter("fifo depth"))
                } else {
                    Ok(())
                }
            }
            BufferMode::Wormhole {
                lanes,
                lane_depth,
                flits_per_packet,
            } => {
                if lanes == 0 {
                    Err(ConfigError::ZeroParameter("wormhole lanes"))
                } else if lane_depth == 0 {
                    Err(ConfigError::ZeroParameter("wormhole lane depth"))
                } else if flits_per_packet == 0 {
                    Err(ConfigError::ZeroParameter("flits per packet"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Why a [`SimConfig`] is not runnable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The offered load is not a probability in `[0, 1]`.
    InvalidLoad(f64),
    /// The warm-up consumes the whole cycle budget, leaving no measurement
    /// window.
    WarmupExceedsCycles {
        /// Configured warm-up cycles.
        warmup: u64,
        /// Configured total cycles.
        cycles: u64,
    },
    /// A buffer-mode parameter that must be nonzero is zero.
    ZeroParameter(&'static str),
    /// The traffic pattern is invalid (non-finite hot-spot fraction,
    /// malformed permutation or trace, …) — rejected here instead of
    /// asserting at draw time in the injection hot path.
    Traffic(TrafficError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidLoad(load) => {
                write!(f, "offered load {load} is not a probability in [0, 1]")
            }
            ConfigError::WarmupExceedsCycles { warmup, cycles } => write!(
                f,
                "warm-up of {warmup} cycles consumes the whole {cycles}-cycle budget"
            ),
            ConfigError::ZeroParameter(what) => write!(f, "{what} must be nonzero"),
            ConfigError::Traffic(e) => write!(f, "invalid traffic pattern: {e}"),
        }
    }
}

impl From<TrafficError> for ConfigError {
    fn from(e: TrafficError) -> Self {
        ConfigError::Traffic(e)
    }
}

impl std::error::Error for ConfigError {}

/// Complete description of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Probability that an idle input injects a packet in a given cycle.
    pub offered_load: f64,
    /// Buffering discipline.
    pub buffer_mode: BufferMode,
    /// Traffic pattern (destination distribution).
    pub traffic: TrafficPattern,
    /// Total number of simulated cycles (the warm-up runs inside this
    /// budget).
    pub cycles: u64,
    /// Number of warm-up cycles at the start of the run, excluded from the
    /// latency statistics.
    pub warmup: u64,
    /// PRNG seed (the simulation is fully deterministic given the seed).
    pub seed: u64,
    /// Failures injected into the run ([`FaultPlan::none`] = healthy
    /// fabric; the empty plan runs the exact fault-free code path). Fault
    /// sites are validated against the fabric at simulator construction.
    pub fault_plan: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            offered_load: 0.5,
            buffer_mode: BufferMode::Unbuffered,
            traffic: TrafficPattern::Uniform,
            cycles: 1_000,
            warmup: 100,
            seed: 0x1988,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl SimConfig {
    /// Checks the configuration for typed errors instead of panicking or
    /// silently misbehaving mid-run: the offered load must be a probability,
    /// the warm-up must leave a measurement window, every buffer-mode
    /// parameter must be nonzero, and the traffic pattern's parameters must
    /// be in range ([`TrafficPattern::validate`] — fabric-dependent checks
    /// like hot-spot targets run at simulator construction via
    /// [`TrafficPattern::validate_for`]). [`crate::Simulator::new`] calls
    /// this, so invalid configurations are rejected at construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.offered_load) {
            // NaN fails the range check too: PartialOrd orders it with nothing.
            return Err(ConfigError::InvalidLoad(self.offered_load));
        }
        if self.warmup >= self.cycles {
            return Err(ConfigError::WarmupExceedsCycles {
                warmup: self.warmup,
                cycles: self.cycles,
            });
        }
        self.buffer_mode.validate()?;
        self.traffic.validate()?;
        Ok(())
    }

    /// Builder-style setter for the offered load (validated by
    /// [`SimConfig::validate`] at simulator construction).
    pub fn with_load(mut self, load: f64) -> Self {
        self.offered_load = load;
        self
    }

    /// Builder-style setter for the buffer mode.
    pub fn with_buffer(mut self, mode: BufferMode) -> Self {
        self.buffer_mode = mode;
        self
    }

    /// Builder-style setter for the traffic pattern.
    pub fn with_traffic(mut self, traffic: TrafficPattern) -> Self {
        self.traffic = traffic;
        self
    }

    /// Builder-style setter for the cycle counts.
    pub fn with_cycles(mut self, cycles: u64, warmup: u64) -> Self {
        self.cycles = cycles;
        self.warmup = warmup;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_compose() {
        let cfg = SimConfig::default()
            .with_load(0.9)
            .with_buffer(BufferMode::Fifo(4))
            .with_traffic(TrafficPattern::Hotspot {
                fraction: 0.2,
                target: 0,
            })
            .with_cycles(500, 50)
            .with_seed(7);
        assert_eq!(cfg.offered_load, 0.9);
        assert_eq!(cfg.buffer_mode, BufferMode::Fifo(4));
        assert_eq!(cfg.cycles, 500);
        assert_eq!(cfg.warmup, 50);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn out_of_range_loads_are_rejected_with_a_typed_error() {
        assert_eq!(
            SimConfig::default().with_load(1.5).validate(),
            Err(ConfigError::InvalidLoad(1.5))
        );
        assert_eq!(
            SimConfig::default().with_load(-0.1).validate(),
            Err(ConfigError::InvalidLoad(-0.1))
        );
        assert!(matches!(
            SimConfig::default().with_load(f64::NAN).validate(),
            Err(ConfigError::InvalidLoad(_))
        ));
    }

    #[test]
    fn warmup_must_leave_a_measurement_window() {
        assert_eq!(
            SimConfig::default().with_cycles(100, 100).validate(),
            Err(ConfigError::WarmupExceedsCycles {
                warmup: 100,
                cycles: 100
            })
        );
        assert_eq!(
            SimConfig::default().with_cycles(0, 0).validate(),
            Err(ConfigError::WarmupExceedsCycles {
                warmup: 0,
                cycles: 0
            })
        );
        assert_eq!(SimConfig::default().with_cycles(100, 99).validate(), Ok(()));
    }

    #[test]
    fn zero_buffer_parameters_are_rejected() {
        assert_eq!(
            BufferMode::Fifo(0).validate(),
            Err(ConfigError::ZeroParameter("fifo depth"))
        );
        for (lanes, lane_depth, flits_per_packet) in [(0, 4, 4), (2, 0, 4), (2, 4, 0)] {
            let mode = BufferMode::Wormhole {
                lanes,
                lane_depth,
                flits_per_packet,
            };
            assert!(matches!(
                mode.validate(),
                Err(ConfigError::ZeroParameter(_))
            ));
        }
        assert_eq!(
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 4,
                flits_per_packet: 4
            }
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn invalid_traffic_parameters_are_rejected_with_a_typed_error() {
        assert!(matches!(
            SimConfig::default()
                .with_traffic(TrafficPattern::Hotspot {
                    fraction: f64::NAN,
                    target: 0
                })
                .validate(),
            Err(ConfigError::Traffic(TrafficError::NonFinite { .. }))
        ));
        assert!(matches!(
            SimConfig::default()
                .with_traffic(TrafficPattern::Zipf { exponent: -0.5 })
                .validate(),
            Err(ConfigError::Traffic(TrafficError::OutOfRange { .. }))
        ));
        assert_eq!(
            SimConfig::default()
                .with_traffic(TrafficPattern::Zipf { exponent: 1.0 })
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn labels_are_short_and_parameterized() {
        assert_eq!(BufferMode::Unbuffered.label(), "unbuffered");
        assert_eq!(BufferMode::Fifo(8).label(), "fifo(8)");
        assert_eq!(
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 4,
                flits_per_packet: 8
            }
            .label(),
            "worm(2x4x8)"
        );
    }
}
