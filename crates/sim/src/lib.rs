//! # `min-sim` — switch-level simulation of multistage interconnection networks
//!
//! The paper contains no measured evaluation; its claims are purely
//! topological. What a systems audience ultimately cares about, though, is
//! that *topologically equivalent networks are behaviourally
//! interchangeable*: the same traffic, pushed through any of the six
//! classical networks, produces the same throughput and latency statistics
//! (up to terminal relabelling). This crate provides the synthetic substrate
//! with which that consequence is demonstrated and benchmarked:
//!
//! * a cycle-synchronous model of a MIN built from 2×2 crossbar cells
//!   ([`fabric::Fabric`]) driven through a pluggable, arena-backed
//!   [`switch::SwitchCore`] in three flavours — **unbuffered** (Patel's
//!   delta-network model: a packet losing arbitration is dropped),
//!   **buffered** (per-cell FIFOs with backpressure) and **wormhole**
//!   (multi-lane virtual channels: packets split into flits, lanes
//!   allocated per worm and held across stages while blocked);
//! * destination-tag routing using the self-routing tables of `min-routing`
//!   (the simulator therefore requires a delta network, which every
//!   PIPID-built network is);
//! * traffic generators ([`traffic`]) — Bernoulli uniform, hot-spot, fixed
//!   permutation and bit-reversal, plus the production-shaped suite:
//!   Zipf-skewed destinations (precomputed-CDF sampling), bursty
//!   Markov-modulated ON/OFF sources, and trace replay from a compact
//!   versioned on-disk format — all validated up front with typed errors
//!   and deterministic under the per-scenario seeding;
//! * metrics ([`metrics`]) — offered/accepted/delivered counts, normalized
//!   throughput, per-cause drop counters (arbitration loss vs. downstream
//!   backpressure), flit-level stall and lane-occupancy accounting for
//!   saturation curves, latency mean and tail (histogram-backed
//!   percentiles), plus a conservation audit (injected = delivered +
//!   dropped + in flight) used by the property tests;
//! * fault injection ([`fault`]) — deterministic [`fault::FaultPlan`]s of
//!   dead switches, dead links and degraded lanes with static or
//!   mid-simulation onset, driving disjoint-path fault-tolerant rerouting
//!   (via `min-routing`) and reliability metrics (fault drops, unroutable
//!   refusals, per-stage exposure);
//! * campaigns ([`campaign`]) — declarative simulation grids (catalog cell ×
//!   traffic × load × buffer mode × fault plan × replication) expanded by
//!   [`campaign::CampaignConfig::plan`] into ordered [`campaign::Shard`]s,
//!   executed purely by [`campaign::execute_shard`] and reassembled
//!   slot-by-index by [`campaign::assemble`]; [`run_campaign`] wraps the
//!   three phases over scoped threads, and the `min-serve` crate drives the
//!   same plan over TCP workers — per-scenario seeds derived from the
//!   campaign seed keep reports bitwise reproducible under any executor;
//! * the bit-parallel fast path ([`lane`] and [`batch`]) — a word-packed
//!   [`lane::LaneEngine`] simulating up to 64 independent unbuffered
//!   replications per `u64` (occupancy, conflict and drop sets as bitwise
//!   operations over replication words), routed in automatically by
//!   [`batch::run_replications`] for eligible workloads and pinned
//!   bit-identical to the scalar engine by the packed-oracle tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod campaign;
pub mod config;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod lane;
pub mod metrics;
pub mod packet;
pub mod switch;
pub mod traffic;

pub use batch::{run_replications, run_replications_merged};
pub use campaign::{
    assemble, execute_shard, run_campaign, CampaignConfig, CampaignPlan, CampaignReport,
    MergeError, Scenario, ScenarioResult, Shard,
};
pub use config::{BufferMode, ConfigError, SimConfig};
pub use engine::{simulate, SimError, Simulator};
pub use fault::{Fault, FaultError, FaultKind, FaultPlan, FaultView, LinkStatus};
pub use lane::{LaneEngine, LANE_WIDTH};
pub use metrics::Metrics;
pub use packet::{Flit, Packet};
pub use switch::{FifoCore, RingArena, SwitchCore, UnbufferedCore, WormholeCore};
pub use traffic::{
    DestSampler, Offer, TraceData, TraceError, TraceRecord, TrafficError, TrafficPattern,
    TrafficSources, ZipfCdf,
};
