//! Traffic generation: destination distributions and injection processes.
//!
//! The original four patterns (uniform, hot-spot, fixed permutation,
//! bit-reversal) are *stateless*: each injection draws a destination and
//! nothing else persists between cycles. The production-shaped suite adds
//!
//! * [`TrafficPattern::Zipf`] — destinations skewed by a Zipf law over the
//!   cell index, sampled from a precomputed CDF ([`ZipfCdf`]) with one
//!   64-bit draw and a binary search;
//! * [`TrafficPattern::OnOff`] — bursty Markov-modulated sources: every
//!   terminal owns a two-state (ON/OFF) chain with geometric dwell times
//!   and injects only while ON, so the instantaneous rate during a burst
//!   far exceeds the long-run mean;
//! * [`TrafficPattern::Trace`] — exact replay of a recorded
//!   `(cycle, source, dest)` schedule ([`TraceData`]), with a compact
//!   versioned on-disk format and a loader returning typed errors.
//!
//! Injection state lives in [`TrafficSources`], which the engine asks for
//! an [`Offer`] per (cell, terminal) each cycle; destination draws go
//! through a [`DestSampler`] so the scalar and word-packed engines share
//! one draw path and stay bit-identical. Everything is deterministic under
//! the engine's per-scenario ChaCha8 streams: a pattern draws nothing
//! beyond its documented per-offer draws, in a fixed order.
//!
//! Parameters are validated **up front** ([`TrafficPattern::validate`] for
//! cell-count-independent checks, [`TrafficPattern::validate_for`] against
//! a concrete fabric) and the draw paths assume validated input: a NaN
//! hot-spot fraction or a mismatched permutation is a typed
//! [`TrafficError`] at configuration time, never a panic in the hot path.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How injected packets choose their destination cell — and, for the
/// stateful members, *when* packets are injected at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every destination cell is equally likely.
    Uniform,
    /// With probability `fraction` the packet goes to `target`; otherwise the
    /// destination is uniform (the classic hot-spot model).
    Hotspot {
        /// Probability of addressing the hot cell (finite, in `[0, 1]`).
        fraction: f64,
        /// The hot destination cell (must lie inside the fabric).
        target: u32,
    },
    /// Source cell `s` always sends to `destinations[s]` (a fixed
    /// cell-level traffic permutation or many-to-one pattern). The vector
    /// must have exactly one entry per cell, each a valid cell index.
    Permutation(Vec<u32>),
    /// Source cell `s` sends to the bit-reversal of `s`.
    BitReversal,
    /// Destinations follow a Zipf law over the cell index: cell `d` is
    /// drawn with probability proportional to `1 / (d + 1)^exponent`, so
    /// low-numbered cells are "popular" and the skew grows with the
    /// exponent (`0` degenerates to uniform). Sampling uses a precomputed
    /// CDF and costs one 64-bit draw plus a binary search.
    Zipf {
        /// Skew exponent (finite, non-negative; typical values `0.5..=1.5`).
        exponent: f64,
    },
    /// Bursty Markov-modulated sources: each of the `2 × cells` terminals
    /// runs an independent two-state chain. A terminal starts ON, leaves
    /// the ON state with probability `1 / on_dwell` per cycle and the OFF
    /// state with probability `1 / off_dwell`, so dwell times are geometric
    /// with the configured means. While ON it injects with probability
    /// `offered_load × on_rate` per cycle (destinations uniform); while OFF
    /// it injects nothing. The long-run offered rate is therefore
    /// `offered_load × on_rate × on_dwell / (on_dwell + off_dwell)`, while
    /// the in-burst rate is `offered_load × on_rate` — the gap is the
    /// burstiness.
    OnOff {
        /// Mean ON-burst length in cycles (finite, `>= 1`).
        on_dwell: f64,
        /// Mean OFF-gap length in cycles (finite, `>= 1`).
        off_dwell: f64,
        /// In-burst injection probability scale (finite, in `(0, 1]`),
        /// multiplied with the configured offered load.
        on_rate: f64,
    },
    /// Exact replay of a recorded schedule: packets are injected at the
    /// recorded (cycle, terminal) slots toward the recorded destinations,
    /// wrapping around the trace period. The configured offered load is
    /// ignored — the trace *is* the load. No RNG is drawn.
    Trace(TraceData),
}

/// Why a traffic pattern (or its fit to a fabric) is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficError {
    /// A parameter that must be a finite float is NaN or infinite. (A NaN
    /// can arrive through deserialization — `1e999` parses to infinity —
    /// and previously propagated through a `clamp` into the RNG's range
    /// assertion; now it is rejected here.)
    NonFinite {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter is outside its documented range.
    OutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The hot-spot target does not name a cell of the fabric.
    HotspotTargetOutOfRange {
        /// The configured target cell.
        target: u32,
        /// Cells per stage of the fabric.
        cells: u32,
    },
    /// The permutation vector's length does not match the fabric (one entry
    /// per cell). Previously the draw path silently wrapped the source
    /// index around the vector, masking the misconfiguration.
    PermutationLength {
        /// The configured vector length.
        len: usize,
        /// Cells per stage of the fabric.
        cells: u32,
    },
    /// A permutation entry does not name a cell of the fabric. Previously
    /// the draw path silently reduced entries modulo the cell count.
    PermutationEntry {
        /// Index of the offending entry.
        index: usize,
        /// The offending entry.
        entry: u32,
        /// Cells per stage of the fabric.
        cells: u32,
    },
    /// The trace was recorded for a different fabric width.
    TraceCellsMismatch {
        /// Cells per stage the trace was recorded for.
        trace: u32,
        /// Cells per stage of the fabric.
        cells: u32,
    },
    /// The trace has a zero period or zero cells — nothing to replay.
    TraceEmpty,
    /// A trace record's cycle lies at or beyond the trace period.
    TraceCycleBeyondPeriod {
        /// Index of the offending record.
        record: usize,
        /// The record's cycle.
        cycle: u32,
        /// The trace period.
        period: u32,
    },
    /// A trace record's source is not a terminal index (`0..2 × cells`).
    TraceSourceOutOfRange {
        /// Index of the offending record.
        record: usize,
        /// The record's source terminal.
        source: u32,
        /// Number of injection terminals (`2 × cells`).
        terminals: u32,
    },
    /// A trace record's destination is not a cell index.
    TraceDestOutOfRange {
        /// Index of the offending record.
        record: usize,
        /// The record's destination cell.
        dest: u32,
        /// Cells per stage the trace was recorded for.
        cells: u32,
    },
    /// Trace records are not strictly sorted by `(cycle, source)` — the
    /// canonical order, which also forbids two packets from one terminal
    /// in one cycle.
    TraceUnsorted {
        /// Index of the first out-of-order record.
        record: usize,
    },
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            TrafficError::OutOfRange { what, value } => {
                write!(f, "{what} is out of range: {value}")
            }
            TrafficError::HotspotTargetOutOfRange { target, cells } => {
                write!(f, "hot-spot target {target} is not a cell index (< {cells})")
            }
            TrafficError::PermutationLength { len, cells } => write!(
                f,
                "permutation has {len} entries but the fabric has {cells} cells per stage"
            ),
            TrafficError::PermutationEntry {
                index,
                entry,
                cells,
            } => write!(
                f,
                "permutation entry {index} is {entry}, not a cell index (< {cells})"
            ),
            TrafficError::TraceCellsMismatch { trace, cells } => write!(
                f,
                "trace was recorded for {trace} cells per stage but the fabric has {cells}"
            ),
            TrafficError::TraceEmpty => write!(f, "trace has a zero period or zero cells"),
            TrafficError::TraceCycleBeyondPeriod {
                record,
                cycle,
                period,
            } => write!(
                f,
                "trace record {record} is at cycle {cycle}, beyond the period {period}"
            ),
            TrafficError::TraceSourceOutOfRange {
                record,
                source,
                terminals,
            } => write!(
                f,
                "trace record {record} injects at terminal {source}, not a terminal index (< {terminals})"
            ),
            TrafficError::TraceDestOutOfRange {
                record,
                dest,
                cells,
            } => write!(
                f,
                "trace record {record} addresses cell {dest}, not a cell index (< {cells})"
            ),
            TrafficError::TraceUnsorted { record } => write!(
                f,
                "trace record {record} is not strictly ordered by (cycle, source)"
            ),
        }
    }
}

impl std::error::Error for TrafficError {}

/// Checks that `value` is finite, returning the typed error otherwise.
fn finite(what: &'static str, value: f64) -> Result<f64, TrafficError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(TrafficError::NonFinite { what, value })
    }
}

impl TrafficPattern {
    /// Short stable name for tables and benchmark/report identifiers.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Permutation(_) => "permutation",
            TrafficPattern::BitReversal => "bit-reversal",
            TrafficPattern::Zipf { .. } => "zipf",
            TrafficPattern::OnOff { .. } => "on-off",
            TrafficPattern::Trace(_) => "trace",
        }
    }

    /// Whether the pattern carries per-source injection state across cycles
    /// (ON/OFF chains, trace schedules). Stateful patterns run on the
    /// scalar engine only; the batching layer routes them away from the
    /// word-packed path.
    pub fn is_stateful(&self) -> bool {
        matches!(
            self,
            TrafficPattern::OnOff { .. } | TrafficPattern::Trace(_)
        )
    }

    /// Checks every parameter that can be checked without knowing the
    /// fabric: probabilities are finite and in range, dwell times are at
    /// least one cycle, the trace is internally consistent.
    ///
    /// [`crate::SimConfig::validate`] calls this, so invalid parameters are
    /// typed errors at configuration time rather than panics at draw time.
    pub fn validate(&self) -> Result<(), TrafficError> {
        match self {
            TrafficPattern::Uniform
            | TrafficPattern::BitReversal
            | TrafficPattern::Permutation(_) => Ok(()),
            TrafficPattern::Hotspot { fraction, .. } => {
                let fraction = finite("hot-spot fraction", *fraction)?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(TrafficError::OutOfRange {
                        what: "hot-spot fraction",
                        value: fraction,
                    });
                }
                Ok(())
            }
            TrafficPattern::Zipf { exponent } => {
                let exponent = finite("zipf exponent", *exponent)?;
                if exponent < 0.0 {
                    return Err(TrafficError::OutOfRange {
                        what: "zipf exponent",
                        value: exponent,
                    });
                }
                Ok(())
            }
            TrafficPattern::OnOff {
                on_dwell,
                off_dwell,
                on_rate,
            } => {
                // Dwells of at least one cycle keep the per-cycle exit
                // probabilities `1 / dwell` valid; an on-rate in `(0, 1]`
                // keeps the in-burst injection probability
                // `offered_load × on_rate` a probability for any valid load.
                for (what, value) in [("on dwell", *on_dwell), ("off dwell", *off_dwell)] {
                    if finite(what, value)? < 1.0 {
                        return Err(TrafficError::OutOfRange { what, value });
                    }
                }
                let on_rate = finite("on rate", *on_rate)?;
                if !(on_rate > 0.0 && on_rate <= 1.0) {
                    return Err(TrafficError::OutOfRange {
                        what: "on rate",
                        value: on_rate,
                    });
                }
                Ok(())
            }
            TrafficPattern::Trace(trace) => trace.validate(),
        }
    }

    /// Checks the pattern against a concrete fabric of `cells` cells per
    /// stage, including everything [`TrafficPattern::validate`] checks: the
    /// hot-spot target and every permutation entry must name a cell, the
    /// permutation must have one entry per cell, and a trace must have been
    /// recorded for exactly this width. [`crate::Simulator::new`] calls
    /// this, so a mismatched pattern is a typed error at construction.
    pub fn validate_for(&self, cells: u32) -> Result<(), TrafficError> {
        self.validate()?;
        match self {
            TrafficPattern::Hotspot { target, .. } => {
                if *target >= cells {
                    return Err(TrafficError::HotspotTargetOutOfRange {
                        target: *target,
                        cells,
                    });
                }
                Ok(())
            }
            TrafficPattern::Permutation(dest) => {
                if dest.len() != cells as usize {
                    return Err(TrafficError::PermutationLength {
                        len: dest.len(),
                        cells,
                    });
                }
                for (index, &entry) in dest.iter().enumerate() {
                    if entry >= cells {
                        return Err(TrafficError::PermutationEntry {
                            index,
                            entry,
                            cells,
                        });
                    }
                }
                Ok(())
            }
            TrafficPattern::Trace(trace) => {
                if trace.cells != cells {
                    return Err(TrafficError::TraceCellsMismatch {
                        trace: trace.cells,
                        cells,
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Draws a destination for a packet injected at `source`, given `cells`
    /// cells per stage and `width_bits = log2(cells)`.
    ///
    /// The pattern must be valid for the fabric
    /// ([`TrafficPattern::validate_for`]); the engines guarantee this by
    /// validating at construction. For [`TrafficPattern::Zipf`] this
    /// rebuilds the CDF per call — engines draw through
    /// [`TrafficPattern::sampler`] instead, which precomputes it once (the
    /// draws themselves are bit-identical either way).
    ///
    /// # Panics
    ///
    /// Panics for [`TrafficPattern::Trace`]: trace destinations come from
    /// the recorded schedule via [`TrafficSources::offer`], never from a
    /// distribution draw. The engines never call this for a trace.
    pub fn destination<R: Rng>(
        &self,
        source: u32,
        cells: u32,
        width_bits: usize,
        rng: &mut R,
    ) -> u32 {
        match self {
            TrafficPattern::Uniform | TrafficPattern::OnOff { .. } => rng.gen_range(0..cells),
            TrafficPattern::Hotspot { fraction, target } => {
                // `fraction` is validated finite and in [0, 1] up front, so
                // no clamp runs here (a clamp would silently launder a NaN
                // into the RNG's range assertion).
                if rng.gen_bool(*fraction) {
                    *target
                } else {
                    rng.gen_range(0..cells)
                }
            }
            TrafficPattern::Permutation(dest) => dest[source as usize],
            TrafficPattern::BitReversal => {
                let mut r = 0u32;
                for k in 0..width_bits {
                    r |= ((source >> k) & 1) << (width_bits - 1 - k);
                }
                r
            }
            TrafficPattern::Zipf { exponent } => ZipfCdf::new(cells, *exponent).sample(rng),
            TrafficPattern::Trace(_) => {
                panic!("trace destinations are replayed via TrafficSources::offer, not drawn")
            }
        }
    }

    /// Builds the destination sampler the engines draw through: a
    /// precomputed [`ZipfCdf`] for [`TrafficPattern::Zipf`], a delegate to
    /// [`TrafficPattern::destination`] for every other pattern. The sampler
    /// draws bit-identically to `destination`, so the scalar and packed
    /// engines share one stream shape.
    pub fn sampler(&self, cells: u32, width_bits: usize) -> DestSampler {
        let kind = match self {
            TrafficPattern::Zipf { exponent } => SamplerKind::Zipf(ZipfCdf::new(cells, *exponent)),
            other => SamplerKind::Pattern(other.clone()),
        };
        DestSampler {
            kind,
            cells,
            width_bits,
        }
    }
}

/// A precomputed Zipf CDF over cell indices, sampled with one `u64` draw
/// and a binary search.
///
/// Cell `d` has weight `1 / (d + 1)^exponent`; the normalized cumulative
/// weights are stored as fixed-point `u64` thresholds so sampling compares
/// a raw [`rand::RngCore::next_u64`] draw against them — no floating-point
/// arithmetic on the draw path, hence bit-identical across platforms.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfCdf {
    /// Exclusive cumulative thresholds: cell `d` is chosen when the draw
    /// falls in `thresholds[d - 1]..thresholds[d]` (with an implicit 0
    /// before the first). The last entry is `u64::MAX`.
    thresholds: Vec<u64>,
}

impl ZipfCdf {
    /// Precomputes the CDF for `cells` destinations with the given (finite,
    /// non-negative) exponent.
    pub fn new(cells: u32, exponent: f64) -> Self {
        let weights: Vec<f64> = (0..cells)
            .map(|d| (f64::from(d) + 1.0).powf(-exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut thresholds = Vec::with_capacity(cells as usize);
        let mut cum = 0.0;
        for &w in &weights {
            cum += w;
            // Round-to-nearest keeps each cell's share within one ulp of
            // the real CDF; the final threshold is pinned to the maximum so
            // every draw lands on some cell.
            thresholds.push(((cum / total) * (u64::MAX as f64)) as u64);
        }
        if let Some(last) = thresholds.last_mut() {
            *last = u64::MAX;
        }
        ZipfCdf { thresholds }
    }

    /// Draws one destination: a single 64-bit draw, then a binary search
    /// over the thresholds.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let x = rng.next_u64();
        // First threshold strictly above the draw; the u64::MAX pin plus
        // the min() guard keep the edge draw x == u64::MAX in range.
        let idx = self.thresholds.partition_point(|&t| t <= x);
        idx.min(self.thresholds.len() - 1) as u32
    }
}

/// How a traffic pattern resolves destinations inside the engines: either a
/// delegate to the pattern's own draw or a precomputed [`ZipfCdf`].
///
/// Built once per simulator via [`TrafficPattern::sampler`]; both the
/// scalar and the word-packed engine draw through it, which is what keeps
/// Zipf scenarios bit-identical across the two paths.
#[derive(Debug, Clone)]
pub struct DestSampler {
    kind: SamplerKind,
    cells: u32,
    width_bits: usize,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Pattern(TrafficPattern),
    Zipf(ZipfCdf),
}

impl DestSampler {
    /// Draws a destination for a packet injected at `source`.
    #[inline]
    pub fn draw<R: Rng>(&self, source: u32, rng: &mut R) -> u32 {
        match &self.kind {
            SamplerKind::Pattern(pattern) => {
                pattern.destination(source, self.cells, self.width_bits, rng)
            }
            SamplerKind::Zipf(cdf) => cdf.sample(rng),
        }
    }
}

/// One recorded injection: at `cycle` (within the trace period), terminal
/// `source` injects a packet destined for cell `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Cycle within the trace period (`0..period`).
    pub cycle: u32,
    /// Injecting terminal (`0..2 × cells`; terminal `t` of cell `c` is
    /// `2c + t`).
    pub source: u32,
    /// Destination cell (`0..cells`).
    pub dest: u32,
}

/// A recorded traffic trace: a periodic schedule of
/// `(cycle, source terminal, destination cell)` injections.
///
/// Replay wraps around [`TraceData::period`], so a trace shorter than the
/// simulated run repeats. Records must be strictly sorted by
/// `(cycle, source)` — the canonical order produced by
/// [`TraceData::to_bytes`] and enforced by [`TraceData::validate`].
///
/// The struct serializes through serde like every other pattern variant
/// (campaign grids and the min-serve wire protocol carry it as JSON); the
/// compact binary form ([`TraceData::to_bytes`] / [`TraceData::from_bytes`]
/// and the file wrappers) is for on-disk trace libraries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceData {
    /// Cells per stage of the fabric the trace was recorded for.
    pub cells: u32,
    /// Trace period in cycles; replay uses `cycle % period`.
    pub period: u32,
    /// The recorded injections, strictly sorted by `(cycle, source)`.
    pub records: Vec<TraceRecord>,
}

/// Magic bytes opening the binary trace format.
pub const TRACE_MAGIC: [u8; 4] = *b"MINT";
/// Current (and only) binary trace format version.
pub const TRACE_VERSION: u16 = 1;

/// Why binary trace bytes could not be decoded.
#[derive(Debug)]
pub enum TraceError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The bytes do not start with [`TRACE_MAGIC`].
    BadMagic([u8; 4]),
    /// The header names a format version this loader does not speak.
    UnsupportedVersion(u16),
    /// The bytes end before the header or the declared records do.
    Truncated {
        /// Bytes the declared content needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Decodable bytes remain after the declared records.
    TrailingBytes(usize),
    /// The decoded trace fails semantic validation.
    Invalid(TrafficError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::BadMagic(m) => {
                write!(f, "not a trace file (magic {m:?}, want {TRACE_MAGIC:?})")
            }
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (loader speaks {TRACE_VERSION})"
                )
            }
            TraceError::Truncated { needed, available } => {
                write!(f, "trace truncated: need {needed} bytes, have {available}")
            }
            TraceError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared records")
            }
            TraceError::Invalid(e) => write!(f, "trace is invalid: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Reads a little-endian `u32` at `offset` (caller guarantees bounds).
fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

impl TraceData {
    /// Header size of the binary format: magic, version, reserved, cells,
    /// period, record count.
    const HEADER_LEN: usize = 4 + 2 + 2 + 4 + 4 + 4;
    /// Bytes per record: three little-endian `u32`s.
    const RECORD_LEN: usize = 12;

    /// Checks the trace's internal consistency: a nonzero period and cell
    /// count, every record inside the period and the terminal/cell ranges,
    /// and strict `(cycle, source)` ordering.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if self.period == 0 || self.cells == 0 {
            return Err(TrafficError::TraceEmpty);
        }
        let terminals = self.cells * 2;
        let mut prev: Option<(u32, u32)> = None;
        for (record, r) in self.records.iter().enumerate() {
            if r.cycle >= self.period {
                return Err(TrafficError::TraceCycleBeyondPeriod {
                    record,
                    cycle: r.cycle,
                    period: self.period,
                });
            }
            if r.source >= terminals {
                return Err(TrafficError::TraceSourceOutOfRange {
                    record,
                    source: r.source,
                    terminals,
                });
            }
            if r.dest >= self.cells {
                return Err(TrafficError::TraceDestOutOfRange {
                    record,
                    dest: r.dest,
                    cells: self.cells,
                });
            }
            if prev.is_some_and(|p| p >= (r.cycle, r.source)) {
                return Err(TrafficError::TraceUnsorted { record });
            }
            prev = Some((r.cycle, r.source));
        }
        Ok(())
    }

    /// Encodes the trace in the compact binary format: a 20-byte header
    /// (magic, version, cells, period, record count) followed by one
    /// 12-byte little-endian record per injection.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER_LEN + self.records.len() * Self::RECORD_LEN);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.cells.to_le_bytes());
        out.extend_from_slice(&self.period.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.cycle.to_le_bytes());
            out.extend_from_slice(&r.source.to_le_bytes());
            out.extend_from_slice(&r.dest.to_le_bytes());
        }
        out
    }

    /// Decodes and validates a trace from the binary format, with typed
    /// errors for a bad magic, an unknown version, truncation, trailing
    /// garbage, and semantic problems.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < Self::HEADER_LEN {
            return Err(TraceError::Truncated {
                needed: Self::HEADER_LEN,
                available: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let cells = read_u32(bytes, 8);
        let period = read_u32(bytes, 12);
        let count = read_u32(bytes, 16) as usize;
        let needed = Self::HEADER_LEN + count * Self::RECORD_LEN;
        if bytes.len() < needed {
            return Err(TraceError::Truncated {
                needed,
                available: bytes.len(),
            });
        }
        if bytes.len() > needed {
            return Err(TraceError::TrailingBytes(bytes.len() - needed));
        }
        let records = (0..count)
            .map(|i| {
                let at = Self::HEADER_LEN + i * Self::RECORD_LEN;
                TraceRecord {
                    cycle: read_u32(bytes, at),
                    source: read_u32(bytes, at + 4),
                    dest: read_u32(bytes, at + 8),
                }
            })
            .collect();
        let trace = TraceData {
            cells,
            period,
            records,
        };
        trace.validate().map_err(TraceError::Invalid)?;
        Ok(trace)
    }

    /// Writes the binary form to a file.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Reads and validates a trace file.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> Result<Self, TraceError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// One injection decision for a (cell, terminal) slot in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Nothing to inject this cycle.
    Idle,
    /// Inject one packet; the destination comes from the pattern's
    /// [`DestSampler`].
    Packet,
    /// Inject one packet to the given destination cell (trace replay — the
    /// destination is part of the schedule, no draw happens).
    PacketTo(u32),
}

/// Per-run injection state of a traffic pattern: the ON/OFF chains of
/// bursty sources, the expanded schedule of a trace — or nothing at all for
/// the stateless patterns, which keep the plain Bernoulli coin.
///
/// The engine asks [`TrafficSources::offer`] once per (cell, terminal) slot
/// per cycle, in (cell ascending, terminal) order; each call makes the
/// documented RNG draws for its pattern (exactly one `gen_bool` for
/// stateless patterns — the same coin the engine drew before this type
/// existed — one or two for ON/OFF chains, none for a trace), which is what
/// keeps runs deterministic and replications bit-identical across engines.
#[derive(Debug, Clone)]
pub struct TrafficSources {
    kind: SourceKind,
}

#[derive(Debug, Clone)]
enum SourceKind {
    /// Stateless patterns: one Bernoulli coin per slot per cycle.
    Bernoulli,
    /// Markov-modulated ON/OFF: per-terminal chain state plus the
    /// precomputed exit probabilities.
    OnOff {
        /// Chain state per terminal (`2 × cells`, terminal `t` of cell `c`
        /// at index `2c + t`); everyone starts ON.
        on: Vec<bool>,
        exit_on: f64,
        exit_off: f64,
        on_rate: f64,
    },
    /// Trace replay: the records expanded into a per-cycle schedule,
    /// sorted by terminal for binary search.
    Trace {
        period: u64,
        /// `schedule[cycle % period]` = sorted `(terminal, dest)` pairs.
        schedule: Vec<Vec<(u32, u32)>>,
    },
}

impl TrafficSources {
    /// Builds the injection state for a validated pattern on a fabric of
    /// `cells` cells per stage.
    pub fn new(pattern: &TrafficPattern, cells: usize) -> Self {
        let kind = match pattern {
            TrafficPattern::OnOff {
                on_dwell,
                off_dwell,
                on_rate,
            } => SourceKind::OnOff {
                on: vec![true; cells * 2],
                exit_on: 1.0 / on_dwell,
                exit_off: 1.0 / off_dwell,
                on_rate: *on_rate,
            },
            TrafficPattern::Trace(trace) => {
                let mut schedule = vec![Vec::new(); trace.period as usize];
                for r in &trace.records {
                    schedule[r.cycle as usize].push((r.source, r.dest));
                }
                // Validated traces are (cycle, source)-sorted, so each
                // cycle's list arrives terminal-sorted for binary search.
                SourceKind::Trace {
                    period: u64::from(trace.period),
                    schedule,
                }
            }
            _ => SourceKind::Bernoulli,
        };
        TrafficSources { kind }
    }

    /// Rewinds the injection state to cycle 0 (every ON/OFF chain back to
    /// ON). [`crate::Simulator::reseed`] calls this so a reused engine is
    /// bit-identical to a freshly built one.
    pub fn reset(&mut self) {
        if let SourceKind::OnOff { on, .. } = &mut self.kind {
            on.iter_mut().for_each(|state| *state = true);
        }
    }

    /// Decides whether terminal `terminal` of first-stage cell `cell`
    /// offers a packet this cycle at the configured `load`.
    ///
    /// Stateless patterns draw the classic Bernoulli coin. ON/OFF chains
    /// first advance their state (one draw), then — while ON — draw the
    /// injection coin at `load × on_rate`. Trace replay draws nothing and
    /// ignores `load`: the recorded schedule is the load.
    pub fn offer<R: Rng>(
        &mut self,
        cycle: u64,
        cell: u32,
        terminal: usize,
        load: f64,
        rng: &mut R,
    ) -> Offer {
        match &mut self.kind {
            SourceKind::Bernoulli => {
                if rng.gen_bool(load) {
                    Offer::Packet
                } else {
                    Offer::Idle
                }
            }
            SourceKind::OnOff {
                on,
                exit_on,
                exit_off,
                on_rate,
            } => {
                let state = &mut on[cell as usize * 2 + terminal];
                if *state {
                    if rng.gen_bool(*exit_on) {
                        *state = false;
                    }
                } else if rng.gen_bool(*exit_off) {
                    *state = true;
                }
                if *state && rng.gen_bool(load * *on_rate) {
                    Offer::Packet
                } else {
                    Offer::Idle
                }
            }
            SourceKind::Trace { period, schedule } => {
                let slot = &schedule[(cycle % *period) as usize];
                let want = cell * 2 + terminal as u32;
                match slot.binary_search_by_key(&want, |&(t, _)| t) {
                    Ok(i) => Offer::PacketTo(slot[i].1),
                    Err(_) => Offer::Idle,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_covers_all_destinations() {
        let mut rng = ChaCha8Rng::seed_from_u64(211);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let d = TrafficPattern::Uniform.destination(0, 8, 3, &mut rng);
            seen[d as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hotspot_biases_towards_the_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(223);
        let pattern = TrafficPattern::Hotspot {
            fraction: 0.5,
            target: 3,
        };
        let hits = (0..2_000)
            .filter(|_| pattern.destination(1, 8, 3, &mut rng) == 3)
            .count();
        // 50% direct + 1/8 of the uniform remainder ≈ 56%.
        assert!(hits > 800 && hits < 1500, "hits = {hits}");
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(227);
        let pattern = TrafficPattern::Permutation(vec![3, 2, 1, 0]);
        for s in 0..4u32 {
            assert_eq!(pattern.destination(s, 4, 2, &mut rng), 3 - s);
        }
    }

    #[test]
    fn bit_reversal_reverses() {
        let mut rng = ChaCha8Rng::seed_from_u64(229);
        let pattern = TrafficPattern::BitReversal;
        assert_eq!(pattern.destination(0b001, 8, 3, &mut rng), 0b100);
        assert_eq!(pattern.destination(0b110, 8, 3, &mut rng), 0b011);
    }

    #[test]
    fn labels_cover_the_new_patterns() {
        assert_eq!(TrafficPattern::Zipf { exponent: 1.0 }.label(), "zipf");
        let on_off = TrafficPattern::OnOff {
            on_dwell: 8.0,
            off_dwell: 8.0,
            on_rate: 1.0,
        };
        assert_eq!(on_off.label(), "on-off");
        assert!(on_off.is_stateful());
        let trace = TrafficPattern::Trace(two_record_trace());
        assert_eq!(trace.label(), "trace");
        assert!(trace.is_stateful());
        assert!(!TrafficPattern::Uniform.is_stateful());
        assert!(!TrafficPattern::Zipf { exponent: 1.0 }.is_stateful());
    }

    #[test]
    fn zipf_cdf_is_monotone_and_covers_all_cells() {
        let cdf = ZipfCdf::new(16, 1.0);
        assert!(cdf.thresholds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*cdf.thresholds.last().unwrap(), u64::MAX);
        let mut rng = ChaCha8Rng::seed_from_u64(233);
        let mut seen = [false; 16];
        for _ in 0..5_000 {
            seen[cdf.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "seen {seen:?}");
    }

    #[test]
    fn zipf_rank_frequency_follows_the_exponent() {
        // With exponent s, count(rank d) / count(rank 0) ≈ (d + 1)^-s; check
        // the slope at a few ranks with generous sampling-noise bands.
        let exponent = 1.2;
        let cdf = ZipfCdf::new(32, exponent);
        let mut rng = ChaCha8Rng::seed_from_u64(239);
        let mut counts = [0u64; 32];
        let draws = 200_000;
        for _ in 0..draws {
            counts[cdf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts
            .windows(2)
            .all(|w| w[0] >= w[1].saturating_sub(w[1] / 4)));
        for rank in [1usize, 3, 7] {
            let expected = f64::powf(rank as f64 + 1.0, -exponent);
            let measured = counts[rank] as f64 / counts[0] as f64;
            let rel = (measured - expected).abs() / expected;
            assert!(
                rel < 0.15,
                "rank {rank}: measured {measured:.4} vs expected {expected:.4}"
            );
        }
    }

    #[test]
    fn zipf_exponent_zero_degenerates_to_uniform() {
        let cdf = ZipfCdf::new(8, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(241);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[cdf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let rel = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(rel < 0.1, "counts {counts:?}");
        }
    }

    #[test]
    fn on_off_burst_lengths_match_the_dwell() {
        // At load 1 and on_rate 1, offers directly expose the chain state:
        // mean ON-run and OFF-gap lengths must match the configured dwells
        // (geometric distributions with those means).
        let pattern = TrafficPattern::OnOff {
            on_dwell: 12.0,
            off_dwell: 4.0,
            on_rate: 1.0,
        };
        let mut sources = TrafficSources::new(&pattern, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(251);
        let (mut bursts, mut gaps) = (Vec::new(), Vec::new());
        let mut run = 0u64;
        let mut last_on = true;
        for cycle in 0..200_000u64 {
            let on = sources.offer(cycle, 0, 0, 1.0, &mut rng) == Offer::Packet;
            if on == last_on {
                run += 1;
            } else {
                if last_on {
                    bursts.push(run);
                } else {
                    gaps.push(run);
                }
                run = 1;
                last_on = on;
            }
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        let (mean_burst, mean_gap) = (mean(&bursts), mean(&gaps));
        assert!(
            (mean_burst - 12.0).abs() < 1.5,
            "mean burst {mean_burst} vs dwell 12"
        );
        assert!(
            (mean_gap - 4.0).abs() < 0.8,
            "mean gap {mean_gap} vs dwell 4"
        );
    }

    #[test]
    fn on_off_reset_restores_the_initial_state() {
        let pattern = TrafficPattern::OnOff {
            on_dwell: 3.0,
            off_dwell: 3.0,
            on_rate: 1.0,
        };
        let mut sources = TrafficSources::new(&pattern, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(257);
        let first: Vec<Offer> = (0..50)
            .map(|c| sources.offer(c, c as u32 % 2, 0, 0.8, &mut rng))
            .collect();
        sources.reset();
        let mut rng = ChaCha8Rng::seed_from_u64(257);
        let second: Vec<Offer> = (0..50)
            .map(|c| sources.offer(c, c as u32 % 2, 0, 0.8, &mut rng))
            .collect();
        assert_eq!(first, second);
    }

    fn two_record_trace() -> TraceData {
        TraceData {
            cells: 4,
            period: 3,
            records: vec![
                TraceRecord {
                    cycle: 0,
                    source: 1,
                    dest: 3,
                },
                TraceRecord {
                    cycle: 2,
                    source: 6,
                    dest: 0,
                },
            ],
        }
    }

    #[test]
    fn trace_replay_follows_the_schedule_and_wraps() {
        let pattern = TrafficPattern::Trace(two_record_trace());
        let mut sources = TrafficSources::new(&pattern, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(263);
        for lap in 0..2u64 {
            let base = lap * 3;
            // cycle 0: terminal 1 = (cell 0, terminal 1) sends to cell 3.
            assert_eq!(sources.offer(base, 0, 1, 0.5, &mut rng), Offer::PacketTo(3));
            assert_eq!(sources.offer(base, 0, 0, 0.5, &mut rng), Offer::Idle);
            // cycle 2: terminal 6 = (cell 3, terminal 0) sends to cell 0.
            assert_eq!(
                sources.offer(base + 2, 3, 0, 0.5, &mut rng),
                Offer::PacketTo(0)
            );
            assert_eq!(sources.offer(base + 1, 2, 1, 0.5, &mut rng), Offer::Idle);
        }
        // The trace draws nothing: the RNG is untouched.
        let mut fresh = ChaCha8Rng::seed_from_u64(263);
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn trace_round_trips_through_the_binary_format() {
        let trace = two_record_trace();
        let bytes = trace.to_bytes();
        assert_eq!(&bytes[0..4], &TRACE_MAGIC);
        assert_eq!(TraceData::from_bytes(&bytes).unwrap(), trace);

        let dir = std::env::temp_dir().join("min_sim_trace_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mintrace");
        trace.write_to(&path).unwrap();
        assert_eq!(TraceData::read_from(&path).unwrap(), trace);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_loader_rejects_corrupt_bytes() {
        let good = two_record_trace().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            TraceData::from_bytes(&bad_magic),
            Err(TraceError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            TraceData::from_bytes(&bad_version),
            Err(TraceError::UnsupportedVersion(9))
        ));

        assert!(matches!(
            TraceData::from_bytes(&good[..good.len() - 1]),
            Err(TraceError::Truncated { .. })
        ));
        assert!(matches!(
            TraceData::from_bytes(&good[..10]),
            Err(TraceError::Truncated { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            TraceData::from_bytes(&trailing),
            Err(TraceError::TrailingBytes(1))
        ));

        // Semantic problems surface through the same loader.
        let mut unsorted = two_record_trace();
        unsorted.records.swap(0, 1);
        assert!(matches!(
            TraceData::from_bytes(&unsorted.to_bytes()),
            Err(TraceError::Invalid(TrafficError::TraceUnsorted {
                record: 1
            }))
        ));
    }

    #[test]
    fn validate_rejects_non_finite_and_out_of_range_parameters() {
        for fraction in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                TrafficPattern::Hotspot {
                    fraction,
                    target: 0
                }
                .validate(),
                Err(TrafficError::NonFinite { .. })
            ));
        }
        for fraction in [-0.1, 1.5] {
            assert!(matches!(
                TrafficPattern::Hotspot {
                    fraction,
                    target: 0
                }
                .validate(),
                Err(TrafficError::OutOfRange { .. })
            ));
        }
        assert!(matches!(
            TrafficPattern::Zipf { exponent: f64::NAN }.validate(),
            Err(TrafficError::NonFinite { .. })
        ));
        assert!(matches!(
            TrafficPattern::Zipf { exponent: -1.0 }.validate(),
            Err(TrafficError::OutOfRange { .. })
        ));
        let bad_on_off = [
            (0.5, 4.0, 1.0),
            (4.0, f64::NAN, 1.0),
            (4.0, 4.0, 0.0),
            (4.0, 4.0, 1.5),
        ];
        for (on_dwell, off_dwell, on_rate) in bad_on_off {
            assert!(
                TrafficPattern::OnOff {
                    on_dwell,
                    off_dwell,
                    on_rate
                }
                .validate()
                .is_err(),
                "({on_dwell}, {off_dwell}, {on_rate})"
            );
        }
        assert_eq!(
            TrafficPattern::OnOff {
                on_dwell: 8.0,
                off_dwell: 2.0,
                on_rate: 0.5
            }
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_for_checks_the_fabric_fit() {
        assert_eq!(
            TrafficPattern::Hotspot {
                fraction: 0.5,
                target: 8
            }
            .validate_for(8),
            Err(TrafficError::HotspotTargetOutOfRange {
                target: 8,
                cells: 8
            })
        );
        assert_eq!(
            TrafficPattern::Permutation(vec![0, 1, 2]).validate_for(4),
            Err(TrafficError::PermutationLength { len: 3, cells: 4 })
        );
        assert_eq!(
            TrafficPattern::Permutation(vec![0, 1, 2, 4]).validate_for(4),
            Err(TrafficError::PermutationEntry {
                index: 3,
                entry: 4,
                cells: 4
            })
        );
        assert_eq!(
            TrafficPattern::Permutation(vec![3, 2, 1, 0]).validate_for(4),
            Ok(())
        );
        assert_eq!(
            TrafficPattern::Trace(two_record_trace()).validate_for(8),
            Err(TrafficError::TraceCellsMismatch { trace: 4, cells: 8 })
        );
        assert_eq!(
            TrafficPattern::Trace(two_record_trace()).validate_for(4),
            Ok(())
        );
    }

    #[test]
    fn trace_validation_rejects_out_of_range_records() {
        let mut cycle_high = two_record_trace();
        cycle_high.records[1].cycle = 3;
        assert!(matches!(
            cycle_high.validate(),
            Err(TrafficError::TraceCycleBeyondPeriod { .. })
        ));
        let mut source_high = two_record_trace();
        source_high.records[1].source = 8;
        assert!(matches!(
            source_high.validate(),
            Err(TrafficError::TraceSourceOutOfRange { .. })
        ));
        let mut dest_high = two_record_trace();
        dest_high.records[0].dest = 4;
        assert!(matches!(
            dest_high.validate(),
            Err(TrafficError::TraceDestOutOfRange { .. })
        ));
        let empty = TraceData {
            cells: 4,
            period: 0,
            records: vec![],
        };
        assert_eq!(empty.validate(), Err(TrafficError::TraceEmpty));
        // Duplicate (cycle, source) pairs are unsorted by definition.
        let mut dup = two_record_trace();
        dup.records[1] = dup.records[0];
        assert!(matches!(
            dup.validate(),
            Err(TrafficError::TraceUnsorted { record: 1 })
        ));
    }

    #[test]
    fn sampler_draws_match_destination_draws() {
        // The sampler must consume the RNG exactly like the compat path so
        // engines can migrate to it without moving any stream.
        let patterns = [
            TrafficPattern::Uniform,
            TrafficPattern::Hotspot {
                fraction: 0.3,
                target: 5,
            },
            TrafficPattern::BitReversal,
            TrafficPattern::Zipf { exponent: 0.9 },
        ];
        for pattern in patterns {
            let sampler = pattern.sampler(8, 3);
            let mut a = ChaCha8Rng::seed_from_u64(269);
            let mut b = ChaCha8Rng::seed_from_u64(269);
            for source in 0..8u32 {
                for _ in 0..64 {
                    assert_eq!(
                        sampler.draw(source, &mut a),
                        pattern.destination(source, 8, 3, &mut b),
                        "{pattern:?}"
                    );
                }
            }
            assert_eq!(a.next_u64(), b.next_u64(), "stream alignment {pattern:?}");
        }
    }
}
