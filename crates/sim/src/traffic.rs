//! Traffic patterns (destination distributions).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How injected packets choose their destination cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every destination cell is equally likely.
    Uniform,
    /// With probability `fraction` the packet goes to `target`; otherwise the
    /// destination is uniform (the classic hot-spot model).
    Hotspot {
        /// Probability of addressing the hot cell.
        fraction: f64,
        /// The hot destination cell.
        target: u32,
    },
    /// Source cell `s` always sends to `destinations[s]` (a fixed
    /// cell-level traffic permutation or pattern).
    Permutation(Vec<u32>),
    /// Source cell `s` sends to the bit-reversal of `s`.
    BitReversal,
}

impl TrafficPattern {
    /// Short stable name for tables and benchmark/report identifiers.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Permutation(_) => "permutation",
            TrafficPattern::BitReversal => "bit-reversal",
        }
    }

    /// Draws a destination for a packet injected at `source`, given `cells`
    /// cells per stage and `width_bits = log2(cells)`.
    pub fn destination<R: Rng>(
        &self,
        source: u32,
        cells: u32,
        width_bits: usize,
        rng: &mut R,
    ) -> u32 {
        match self {
            TrafficPattern::Uniform => rng.gen_range(0..cells),
            TrafficPattern::Hotspot { fraction, target } => {
                if rng.gen_bool((*fraction).clamp(0.0, 1.0)) {
                    *target % cells
                } else {
                    rng.gen_range(0..cells)
                }
            }
            TrafficPattern::Permutation(dest) => dest[source as usize % dest.len()] % cells,
            TrafficPattern::BitReversal => {
                let mut r = 0u32;
                for k in 0..width_bits {
                    r |= ((source >> k) & 1) << (width_bits - 1 - k);
                }
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_covers_all_destinations() {
        let mut rng = ChaCha8Rng::seed_from_u64(211);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let d = TrafficPattern::Uniform.destination(0, 8, 3, &mut rng);
            seen[d as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hotspot_biases_towards_the_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(223);
        let pattern = TrafficPattern::Hotspot {
            fraction: 0.5,
            target: 3,
        };
        let hits = (0..2_000)
            .filter(|_| pattern.destination(1, 8, 3, &mut rng) == 3)
            .count();
        // 50% direct + 1/8 of the uniform remainder ≈ 56%.
        assert!(hits > 800 && hits < 1500, "hits = {hits}");
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(227);
        let pattern = TrafficPattern::Permutation(vec![3, 2, 1, 0]);
        for s in 0..4u32 {
            assert_eq!(pattern.destination(s, 4, 2, &mut rng), 3 - s);
        }
    }

    #[test]
    fn bit_reversal_reverses() {
        let mut rng = ChaCha8Rng::seed_from_u64(229);
        let pattern = TrafficPattern::BitReversal;
        assert_eq!(pattern.destination(0b001, 8, 3, &mut rng), 0b100);
        assert_eq!(pattern.destination(0b110, 8, 3, &mut rng), 0b011);
    }
}
