//! Fault plans and the fault-injection runtime.
//!
//! A [`FaultPlan`] is a deterministic, serializable description of the
//! component failures a simulation run injects: dead switches, dead links
//! and degraded (half-bandwidth) links, each with an **onset cycle** so
//! faults can be present from the start or strike mid-simulation. Plans are
//! plain data — two runs with the same plan, seed and configuration produce
//! bit-identical metrics at any thread count, which is what lets the
//! campaign layer put a fault axis on its grid.
//!
//! The runtime half (the compiled fault state behind the [`FaultView`]
//! handed to the switching cores, and the pair-routing table of
//! `FaultRuntime`) turns the plan into O(1) per-link queries and
//! per-(source, destination) routing decisions recomputed only when an
//! onset boundary is crossed. An empty
//! plan short-circuits everything: the engine then runs the exact
//! pre-fault-subsystem code path, byte for byte.

use min_core::ConnectionNetwork;
use min_routing::disjoint::{path_tag, route_all_to, FaultDigest, FaultRoute};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One kind of component failure.
///
/// Switches live at `(stage 0..stages, cell)`; links at
/// `(stage 0..stages-1, cell, port)` — the arc leaving `cell` through
/// out-port `port` (0 = `f`, 1 = `g`) of connection `stage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The whole 2×2 switch is dead: packets inside it are lost, nothing
    /// can enter or leave it, and every (source, destination) pair routed
    /// through it is severed.
    DeadSwitch {
        /// Stage of the dead switch (`0..stages`).
        stage: usize,
        /// Cell index within the stage.
        cell: u32,
    },
    /// One inter-stage link is dead: traffic that must cross it is dropped
    /// in flight, and pairs whose last surviving path used it become
    /// unroutable.
    DeadLink {
        /// Connection index of the link (`0..stages-1`).
        stage: usize,
        /// Source cell of the link.
        cell: u32,
        /// Out-port of the link (0 = `f`, 1 = `g`).
        port: u8,
    },
    /// The link's lanes are degraded to half bandwidth: it carries traffic
    /// only on even cycles. Nothing is severed — buffered cores stall on
    /// the off cycles, the unbuffered core (which has nowhere to hold a
    /// blocked packet) drops.
    DegradedLink {
        /// Connection index of the link (`0..stages-1`).
        stage: usize,
        /// Source cell of the link.
        cell: u32,
        /// Out-port of the link (0 = `f`, 1 = `g`).
        port: u8,
    },
}

impl FaultKind {
    /// Compact stable rendering for table labels (`S1.3`, `L0.2.1`,
    /// `d2.0.0`).
    fn label(&self) -> String {
        match *self {
            FaultKind::DeadSwitch { stage, cell } => format!("S{stage}.{cell}"),
            FaultKind::DeadLink { stage, cell, port } => format!("L{stage}.{cell}.{port}"),
            FaultKind::DegradedLink { stage, cell, port } => format!("d{stage}.{cell}.{port}"),
        }
    }
}

/// One failure with its onset cycle: the component is healthy on cycles
/// `< onset` and faulty from `onset` on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// What fails.
    pub kind: FaultKind,
    /// First cycle on which the failure is active (0 = static fault).
    pub onset: u64,
}

/// Why a fault plan does not fit a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A switch fault names a stage outside `0..stages`.
    StageOutOfRange {
        /// The offending stage.
        stage: usize,
        /// Number of stages in the fabric.
        stages: usize,
    },
    /// A link fault names a connection outside `0..stages-1`.
    LinkStageOutOfRange {
        /// The offending connection index.
        stage: usize,
        /// Number of inter-stage connections in the fabric.
        connections: usize,
    },
    /// A fault names a cell outside `0..cells`.
    CellOutOfRange {
        /// The offending cell.
        cell: u32,
        /// Cells per stage in the fabric.
        cells: usize,
    },
    /// A link fault names a port other than 0 or 1.
    PortOutOfRange {
        /// The offending port.
        port: u8,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::StageOutOfRange { stage, stages } => {
                write!(f, "switch stage {stage} is outside 0..{stages}")
            }
            FaultError::LinkStageOutOfRange { stage, connections } => {
                write!(f, "link stage {stage} is outside 0..{connections}")
            }
            FaultError::CellOutOfRange { cell, cells } => {
                write!(f, "cell {cell} is outside 0..{cells}")
            }
            FaultError::PortOutOfRange { port } => {
                write!(f, "port {port} is not one of the two out-ports")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A deterministic set of failures injected into one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The failures, in declaration order (order is irrelevant to the
    /// semantics but preserved for reporting).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a fully healthy fabric. The engine detects this and
    /// runs the exact fault-free code path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder-style: adds a dead switch at `(stage, cell)` from `onset`.
    pub fn with_dead_switch(mut self, stage: usize, cell: u32, onset: u64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::DeadSwitch { stage, cell },
            onset,
        });
        self
    }

    /// Builder-style: adds a dead link at `(stage, cell, port)` from
    /// `onset`.
    pub fn with_dead_link(mut self, stage: usize, cell: u32, port: u8, onset: u64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::DeadLink { stage, cell, port },
            onset,
        });
        self
    }

    /// Builder-style: adds a degraded (half-bandwidth) link at
    /// `(stage, cell, port)` from `onset`.
    pub fn with_degraded_link(mut self, stage: usize, cell: u32, port: u8, onset: u64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::DegradedLink { stage, cell, port },
            onset,
        });
        self
    }

    /// A seeded plan of `count` distinct dead links with onset 0, drawn
    /// uniformly from the link sites of a `stages × cells` fabric by a
    /// dedicated ChaCha8 stream — the same seed always produces the same
    /// plan.
    pub fn random_links(seed: u64, count: usize, stages: usize, cells: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sites = stages.saturating_sub(1) * cells * 2;
        let count = count.min(sites);
        let mut chosen: Vec<usize> = Vec::with_capacity(count);
        while chosen.len() < count {
            let site = rng.gen_range(0..sites);
            if !chosen.contains(&site) {
                chosen.push(site);
            }
        }
        let faults = chosen
            .into_iter()
            .map(|site| Fault {
                kind: FaultKind::DeadLink {
                    stage: site / (cells * 2),
                    cell: ((site / 2) % cells) as u32,
                    port: (site % 2) as u8,
                },
                onset: 0,
            })
            .collect();
        FaultPlan { faults }
    }

    /// A seeded mixed plan of `count` faults: each is a dead link, a dead
    /// switch or a degraded link (equal weight) at a random site, with a
    /// random onset in `0..=max_onset`. Deterministic for a given seed.
    pub fn random_mixed(
        seed: u64,
        count: usize,
        stages: usize,
        cells: usize,
        max_onset: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let faults = (0..count)
            .map(|_| {
                let onset = rng.gen_range(0..=max_onset);
                let cell = rng.gen_range(0..cells as u32);
                let kind = match rng.gen_range(0..3u8) {
                    0 => FaultKind::DeadSwitch {
                        stage: rng.gen_range(0..stages),
                        cell,
                    },
                    1 => FaultKind::DeadLink {
                        stage: rng.gen_range(0..stages - 1),
                        cell,
                        port: rng.gen_range(0..2u8),
                    },
                    _ => FaultKind::DegradedLink {
                        stage: rng.gen_range(0..stages - 1),
                        cell,
                        port: rng.gen_range(0..2u8),
                    },
                };
                Fault { kind, onset }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Checks every fault site against a `stages × cells` fabric.
    pub fn validate(&self, stages: usize, cells: usize) -> Result<(), FaultError> {
        for fault in &self.faults {
            let cell = match fault.kind {
                FaultKind::DeadSwitch { stage, cell } => {
                    if stage >= stages {
                        return Err(FaultError::StageOutOfRange { stage, stages });
                    }
                    cell
                }
                FaultKind::DeadLink { stage, cell, port }
                | FaultKind::DegradedLink { stage, cell, port } => {
                    if stage + 1 >= stages {
                        return Err(FaultError::LinkStageOutOfRange {
                            stage,
                            connections: stages.saturating_sub(1),
                        });
                    }
                    if port >= 2 {
                        return Err(FaultError::PortOutOfRange { port });
                    }
                    cell
                }
            };
            if cell as usize >= cells {
                return Err(FaultError::CellOutOfRange { cell, cells });
            }
        }
        Ok(())
    }

    /// Short stable label for tables: `none`, or up to three fault labels
    /// (`L0.2.1@40+S1.0`) followed by `+k more` for the rest. An `@onset`
    /// suffix marks mid-simulation faults.
    pub fn label(&self) -> String {
        if self.faults.is_empty() {
            return "none".to_string();
        }
        let shown: Vec<String> = self
            .faults
            .iter()
            .take(3)
            .map(|f| {
                if f.onset == 0 {
                    f.kind.label()
                } else {
                    format!("{}@{}", f.kind.label(), f.onset)
                }
            })
            .collect();
        let mut label = shown.join("+");
        if self.faults.len() > 3 {
            label.push_str(&format!("+{} more", self.faults.len() - 3));
        }
        label
    }
}

/// Whether a link can carry traffic this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkStatus {
    /// Healthy: the link behaves normally.
    Up,
    /// Degraded and on an off cycle: traffic must wait (or, in the
    /// unbuffered core, is lost).
    Throttled,
    /// Dead: traffic that must cross it is lost.
    Down,
}

/// Onset value meaning "never fails".
const NEVER: u64 = u64::MAX;

/// Per-component onset tables compiled from a [`FaultPlan`] for a concrete
/// fabric. All queries are O(1).
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    cells: usize,
    /// Earliest dead-onset per link, indexed `(stage*cells + cell)*2 + port`.
    link_dead: Vec<u64>,
    /// Earliest degraded-onset per link, same indexing.
    link_degraded: Vec<u64>,
    /// Earliest dead-onset per switch, indexed `stage*cells + cell`.
    cell_dead: Vec<u64>,
    /// Earliest onset of any fault (for `any_active`).
    first_onset: u64,
    /// Sorted distinct onsets of *severing* faults (dead links/switches) —
    /// the router's recomputation epochs.
    severing_onsets: Vec<u64>,
}

impl FaultState {
    /// Compiles `plan` (already validated) for a `stages × cells` fabric.
    pub(crate) fn new(plan: &FaultPlan, stages: usize, cells: usize) -> Self {
        let mut state = FaultState {
            cells,
            link_dead: vec![NEVER; stages.saturating_sub(1) * cells * 2],
            link_degraded: vec![NEVER; stages.saturating_sub(1) * cells * 2],
            cell_dead: vec![NEVER; stages * cells],
            first_onset: NEVER,
            severing_onsets: Vec::new(),
        };
        for fault in &plan.faults {
            state.first_onset = state.first_onset.min(fault.onset);
            match fault.kind {
                FaultKind::DeadSwitch { stage, cell } => {
                    let idx = stage * cells + cell as usize;
                    state.cell_dead[idx] = state.cell_dead[idx].min(fault.onset);
                    state.severing_onsets.push(fault.onset);
                }
                FaultKind::DeadLink { stage, cell, port } => {
                    let idx = (stage * cells + cell as usize) * 2 + port as usize;
                    state.link_dead[idx] = state.link_dead[idx].min(fault.onset);
                    state.severing_onsets.push(fault.onset);
                }
                FaultKind::DegradedLink { stage, cell, port } => {
                    let idx = (stage * cells + cell as usize) * 2 + port as usize;
                    state.link_degraded[idx] = state.link_degraded[idx].min(fault.onset);
                }
            }
        }
        state.severing_onsets.sort_unstable();
        state.severing_onsets.dedup();
        state
    }

    #[inline]
    fn link_idx(&self, stage: usize, cell: usize, port: usize) -> usize {
        (stage * self.cells + cell) * 2 + port
    }

    /// The dead links and switches active at `cycle`, as a routing digest.
    fn digest_at(&self, stages: usize, cycle: u64) -> FaultDigest {
        let mut digest = FaultDigest::new(stages, self.cells);
        for s in 0..stages.saturating_sub(1) {
            for cell in 0..self.cells {
                for port in 0..2 {
                    if self.link_dead[self.link_idx(s, cell, port)] <= cycle {
                        digest.kill_link(s, cell as u32, port as u8);
                    }
                }
            }
        }
        for s in 0..stages {
            for cell in 0..self.cells {
                if self.cell_dead[s * self.cells + cell] <= cycle {
                    digest.kill_cell(s, cell as u32);
                }
            }
        }
        digest
    }
}

/// The per-cycle fault queries handed to the switching cores. With no fault
/// state attached (the empty plan) every query returns "healthy" without
/// touching memory, so the fault-free hot path is unchanged.
#[derive(Debug, Clone, Copy)]
pub struct FaultView<'a> {
    state: Option<&'a FaultState>,
    cycle: u64,
}

impl<'a> FaultView<'a> {
    /// A view with no faults (the empty plan).
    pub(crate) fn healthy(cycle: u64) -> Self {
        FaultView { state: None, cycle }
    }

    /// A view of `state` at `cycle`.
    pub(crate) fn at(state: &'a FaultState, cycle: u64) -> Self {
        FaultView {
            state: Some(state),
            cycle,
        }
    }

    /// Whether any fault (of any kind) is active this cycle.
    #[inline]
    pub fn any_active(&self) -> bool {
        self.state.is_some_and(|s| s.first_onset <= self.cycle)
    }

    /// Whether the switch at `(stage, cell)` is dead this cycle.
    #[inline]
    pub fn cell_dead(&self, stage: usize, cell: usize) -> bool {
        self.state
            .is_some_and(|s| s.cell_dead[stage * s.cells + cell] <= self.cycle)
    }

    /// Status of the link leaving `cell` through `port` of connection
    /// `stage` this cycle. Degraded links are usable on even cycles only.
    #[inline]
    pub fn link_status(&self, stage: usize, cell: usize, port: usize) -> LinkStatus {
        let Some(s) = self.state else {
            return LinkStatus::Up;
        };
        let idx = s.link_idx(stage, cell, port);
        if s.link_dead[idx] <= self.cycle {
            LinkStatus::Down
        } else if s.link_degraded[idx] <= self.cycle && self.cycle % 2 == 1 {
            LinkStatus::Throttled
        } else {
            LinkStatus::Up
        }
    }
}

/// One cached routing epoch: the pair table and severed count computed from
/// the fault digest active between two severing onsets.
#[derive(Debug, Clone)]
struct EpochTable {
    /// `pair_tags[src*cells + dst]`: the routing tag of the chosen surviving
    /// path, or `None` when the pair is severed.
    pair_tags: Vec<Option<u32>>,
    /// Number of severed (unroutable) pairs in this epoch.
    severed_pairs: u64,
}

/// The engine-side fault machinery: the compiled [`FaultState`] plus the
/// per-(source, destination) routing tables, computed lazily once per
/// severing epoch and cached for the runtime's lifetime — a replication
/// rerun through [`FaultRuntime::rewind`] replays the onset schedule while
/// reusing every table the disjoint-path router already produced.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    pub(crate) state: FaultState,
    stages: usize,
    cells: usize,
    /// One slot per epoch: before the first severing onset plus one per
    /// boundary in `state.severing_onsets`. Filled on first entry.
    epochs: Vec<Option<EpochTable>>,
    /// Epoch the simulation currently sits in (valid once `initialized`).
    current: usize,
    /// Index into `state.severing_onsets` of the next epoch boundary.
    next_epoch: usize,
    initialized: bool,
}

impl FaultRuntime {
    pub(crate) fn new(plan: &FaultPlan, stages: usize, cells: usize) -> Self {
        let state = FaultState::new(plan, stages, cells);
        let epochs = vec![None; state.severing_onsets.len() + 1];
        FaultRuntime {
            state,
            stages,
            cells,
            epochs,
            current: 0,
            next_epoch: 0,
            initialized: false,
        }
    }

    /// Enters the epoch containing `cycle`, computing its pair table if this
    /// is the first time any run has entered it. Cheap no-op when no
    /// severing onset was crossed.
    pub(crate) fn advance(&mut self, net: &ConnectionNetwork, cycle: u64) {
        let mut dirty = !self.initialized;
        while self.next_epoch < self.state.severing_onsets.len()
            && self.state.severing_onsets[self.next_epoch] <= cycle
        {
            self.next_epoch += 1;
            dirty = true;
        }
        if !dirty {
            return;
        }
        self.initialized = true;
        self.current = self.next_epoch;
        if self.epochs[self.current].is_some() {
            return;
        }
        let digest = self.state.digest_at(self.stages, cycle);
        let mut pair_tags = vec![None; self.cells * self.cells];
        let mut severed_pairs = 0;
        // Per-destination batch: the routing layer shares the two
        // reachability tables across all sources of each destination.
        for dst in 0..self.cells as u64 {
            for (src, route) in route_all_to(net, dst, &digest).into_iter().enumerate() {
                match route {
                    FaultRoute::Routed(path) => {
                        pair_tags[src * self.cells + dst as usize] = Some(path_tag(&path));
                    }
                    FaultRoute::Unroutable => severed_pairs += 1,
                }
            }
        }
        self.epochs[self.current] = Some(EpochTable {
            pair_tags,
            severed_pairs,
        });
    }

    /// Routing tag for `(src, dst)` under the current epoch's faults;
    /// `None` when the pair is severed.
    #[inline]
    pub(crate) fn pair_tag(&self, src: usize, dst: usize) -> Option<u32> {
        let epoch = self.epochs[self.current]
            .as_ref()
            .expect("advance enters an epoch before any pair query");
        epoch.pair_tags[src * self.cells + dst]
    }

    /// Number of severed pairs in the current epoch.
    pub(crate) fn severed_pairs(&self) -> u64 {
        if !self.initialized {
            return 0;
        }
        self.epochs[self.current]
            .as_ref()
            .map_or(0, |e| e.severed_pairs)
    }

    /// Rewinds to the pre-run state so the next [`FaultRuntime::advance`]
    /// replays the onset schedule from cycle 0 — reusing every cached epoch
    /// table instead of re-running the disjoint-path router.
    pub(crate) fn rewind(&mut self) {
        self.current = 0;
        self.next_epoch = 0;
        self.initialized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::omega;

    #[test]
    fn plans_build_validate_and_label() {
        let plan = FaultPlan::none()
            .with_dead_link(1, 2, 1, 0)
            .with_dead_switch(2, 0, 40)
            .with_degraded_link(0, 3, 0, 10);
        assert!(!plan.is_empty());
        assert_eq!(plan.validate(4, 8), Ok(()));
        assert_eq!(plan.label(), "L1.2.1+S2.0@40+d0.3.0@10");
        assert_eq!(FaultPlan::none().label(), "none");
        let long = FaultPlan::random_links(1, 5, 4, 8);
        assert!(long.label().ends_with("+2 more"), "{}", long.label());
        assert!(!long.label().contains("++"), "{}", long.label());
    }

    #[test]
    fn out_of_range_sites_are_typed_errors() {
        assert_eq!(
            FaultPlan::none().with_dead_switch(4, 0, 0).validate(4, 8),
            Err(FaultError::StageOutOfRange {
                stage: 4,
                stages: 4
            })
        );
        assert_eq!(
            FaultPlan::none().with_dead_link(3, 0, 0, 0).validate(4, 8),
            Err(FaultError::LinkStageOutOfRange {
                stage: 3,
                connections: 3
            })
        );
        assert_eq!(
            FaultPlan::none().with_dead_link(0, 9, 0, 0).validate(4, 8),
            Err(FaultError::CellOutOfRange { cell: 9, cells: 8 })
        );
        assert_eq!(
            FaultPlan::none().with_dead_link(0, 0, 7, 0).validate(4, 8),
            Err(FaultError::PortOutOfRange { port: 7 })
        );
        assert_eq!(FaultPlan::none().validate(4, 8), Ok(()));
    }

    #[test]
    fn random_plans_are_deterministic_and_distinct_by_seed() {
        let a = FaultPlan::random_links(7, 3, 4, 8);
        let b = FaultPlan::random_links(7, 3, 4, 8);
        let c = FaultPlan::random_links(8, 3, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.faults.len(), 3);
        assert_eq!(a.validate(4, 8), Ok(()));
        // Sites are distinct.
        let sites: std::collections::HashSet<_> =
            a.faults.iter().map(|f| format!("{:?}", f.kind)).collect();
        assert_eq!(sites.len(), 3);
        // Mixed plans validate and respect the onset bound.
        let mixed = FaultPlan::random_mixed(5, 6, 4, 8, 100);
        assert_eq!(mixed.validate(4, 8), Ok(()));
        assert!(mixed.faults.iter().all(|f| f.onset <= 100));
        assert_eq!(mixed, FaultPlan::random_mixed(5, 6, 4, 8, 100));
    }

    #[test]
    fn views_respect_onsets_and_parity() {
        let plan = FaultPlan::none()
            .with_dead_link(0, 1, 0, 5)
            .with_degraded_link(1, 0, 1, 0);
        let state = FaultState::new(&plan, 4, 8);
        let before = FaultView::at(&state, 4);
        assert_eq!(before.link_status(0, 1, 0), LinkStatus::Up);
        assert!(before.any_active(), "the degraded link is active from 0");
        let after = FaultView::at(&state, 5);
        assert_eq!(after.link_status(0, 1, 0), LinkStatus::Down);
        // Degraded: throttled on odd cycles only.
        assert_eq!(
            FaultView::at(&state, 3).link_status(1, 0, 1),
            LinkStatus::Throttled
        );
        assert_eq!(
            FaultView::at(&state, 4).link_status(1, 0, 1),
            LinkStatus::Up
        );
        // Healthy view reports nothing.
        let healthy = FaultView::healthy(100);
        assert!(!healthy.any_active());
        assert_eq!(healthy.link_status(0, 1, 0), LinkStatus::Up);
        assert!(!healthy.cell_dead(0, 1));
    }

    #[test]
    fn runtime_reroutes_at_epoch_boundaries() {
        let net = omega(4);
        let cells = net.cells_per_stage();
        let plan = FaultPlan::none().with_dead_link(1, 0, 1, 50);
        let mut rt = FaultRuntime::new(&plan, net.stages(), cells);
        rt.advance(&net, 0);
        assert_eq!(rt.severed_pairs(), 0);
        for src in 0..cells {
            for dst in 0..cells {
                assert!(rt.pair_tag(src, dst).is_some());
            }
        }
        // Crossing the onset severs exactly cells/2 pairs (one link of a
        // Banyan fabric always carries cells/2 pairs).
        rt.advance(&net, 50);
        assert_eq!(rt.severed_pairs(), cells as u64 / 2);
        let severed = (0..cells)
            .flat_map(|s| (0..cells).map(move |d| (s, d)))
            .filter(|&(s, d)| rt.pair_tag(s, d).is_none())
            .count() as u64;
        assert_eq!(severed, rt.severed_pairs());
    }

    #[test]
    fn rewind_replays_the_onset_schedule_from_cached_epochs() {
        let net = omega(4);
        let cells = net.cells_per_stage();
        let plan = FaultPlan::none().with_dead_link(1, 0, 1, 50);
        let mut rt = FaultRuntime::new(&plan, net.stages(), cells);
        rt.advance(&net, 0);
        rt.advance(&net, 50);
        let severed = rt.severed_pairs();
        assert_eq!(severed, cells as u64 / 2);
        let tags_after: Vec<_> = (0..cells)
            .flat_map(|s| (0..cells).map(move |d| (s, d)))
            .map(|(s, d)| rt.pair_tag(s, d))
            .collect();
        rt.rewind();
        assert_eq!(rt.severed_pairs(), 0, "pre-run state severs nothing");
        rt.advance(&net, 0);
        assert_eq!(rt.severed_pairs(), 0);
        assert!((0..cells).all(|s| (0..cells).all(|d| rt.pair_tag(s, d).is_some())));
        rt.advance(&net, 50);
        assert_eq!(rt.severed_pairs(), severed);
        let replayed: Vec<_> = (0..cells)
            .flat_map(|s| (0..cells).map(move |d| (s, d)))
            .map(|(s, d)| rt.pair_tag(s, d))
            .collect();
        assert_eq!(replayed, tags_after, "cached epochs replay identically");
    }

    #[test]
    fn dead_switches_sever_their_whole_row_and_column() {
        let net = omega(3);
        let cells = net.cells_per_stage();
        let plan = FaultPlan::none().with_dead_switch(0, 1, 0);
        let mut rt = FaultRuntime::new(&plan, net.stages(), cells);
        rt.advance(&net, 0);
        for dst in 0..cells {
            assert!(rt.pair_tag(1, dst).is_none(), "dead source cell");
        }
        for dst in 0..cells {
            assert!(rt.pair_tag(0, dst).is_some(), "healthy source survives");
        }
        assert_eq!(rt.severed_pairs(), cells as u64);
    }
}
