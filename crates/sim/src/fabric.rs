//! The switching fabric: a connection network plus the router that steers
//! its packets.
//!
//! Since the `Router` redesign the fabric holds an
//! [`min_routing::router::Router`] trait object selected at construction
//! time, so the engine asks one uniform question — *which tag does the
//! packet at `(source, terminal)` use for `destination`?* — and delta,
//! multi-path and permutation-configured (looping) fabrics all plug in
//! without engine-side branching:
//!
//! * [`Fabric::new`] keeps the historical contract: destination-tag
//!   routing only, with [`FabricError::NotDelta`] for anything else (the
//!   bit-parallel lane engine and existing callers rely on this);
//! * [`Fabric::for_traffic`] picks the router for a scenario — the delta
//!   table when one exists, the looping algorithm for a full-permutation
//!   traffic pattern on a rearrangeable fabric (a structural failure is the
//!   typed [`FabricError::NotRearrangeable`]), and per-pair multi-path
//!   routing otherwise.

use crate::traffic::TrafficPattern;
use min_core::ConnectionNetwork;
use min_routing::looping::LoopingError;
use min_routing::router::{DeltaRouter, LoopingRouter, MultiPathRouter, Router};
use min_routing::tag::{destination_tags, SelfRoutingTable};
use std::sync::Arc;

/// A simulatable fabric: the network topology together with the router the
/// cells use to steer packets.
#[derive(Clone)]
pub struct Fabric {
    net: ConnectionNetwork,
    /// The destination-tag table, present exactly when the network is delta
    /// (kept alongside the router for the lane engine's word-packed path).
    routing: Option<SelfRoutingTable>,
    router: Arc<dyn Router>,
}

impl Fabric {
    /// Builds a destination-tag-routed fabric, verifying delta routability —
    /// the pre-redesign contract, unchanged.
    pub fn new(net: ConnectionNetwork) -> Result<Self, FabricError> {
        if !net.is_proper() {
            return Err(FabricError::NotTwoRegular);
        }
        let routing = destination_tags(&net).ok_or(FabricError::NotDelta)?;
        let router: Arc<dyn Router> = Arc::new(DeltaRouter::from_table(routing.clone()));
        Ok(Fabric {
            net,
            routing: Some(routing),
            router,
        })
    }

    /// Builds a fabric with the router selected for `traffic`:
    ///
    /// * a delta network gets its destination-tag table (bit-identical to
    ///   [`Fabric::new`]);
    /// * a non-delta network under [`TrafficPattern::Permutation`] traffic
    ///   that is a full cell permutation is configured by the looping
    ///   algorithm — every packet follows its conflict-free circuit;
    /// * any other non-delta combination falls back to per-pair
    ///   link-disjoint multi-path routing.
    pub fn for_traffic(
        net: ConnectionNetwork,
        traffic: &TrafficPattern,
    ) -> Result<Self, FabricError> {
        if !net.is_proper() {
            return Err(FabricError::NotTwoRegular);
        }
        if let Some(routing) = destination_tags(&net) {
            let router: Arc<dyn Router> = Arc::new(DeltaRouter::from_table(routing.clone()));
            return Ok(Fabric {
                net,
                routing: Some(routing),
                router,
            });
        }
        let cells = net.cells_per_stage();
        let router: Arc<dyn Router> = match traffic {
            TrafficPattern::Permutation(dest) if is_cell_permutation(dest, cells) => {
                // Lift the cell permutation to terminals: terminal `2c + k`
                // goes to terminal `2·perm[c] + k`, which keeps the two
                // packets of a source cell on link-disjoint circuits.
                let permutation: Vec<u32> = (0..2 * cells as u32)
                    .map(|t| 2 * dest[(t >> 1) as usize] + (t & 1))
                    .collect();
                Arc::new(
                    LoopingRouter::new(&net, &permutation)
                        .map_err(FabricError::NotRearrangeable)?,
                )
            }
            _ => Arc::new(MultiPathRouter::new(&net)),
        };
        Ok(Fabric {
            net,
            routing: None,
            router,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &ConnectionNetwork {
        &self.net
    }

    /// The self-routing table. Panics for a non-delta fabric — use
    /// [`Fabric::delta_routing`] when the fabric may be rearrangeable.
    pub fn routing(&self) -> &SelfRoutingTable {
        self.routing
            .as_ref()
            .expect("routing() requires a delta fabric; use delta_routing()")
    }

    /// The destination-tag table when the network is delta.
    pub fn delta_routing(&self) -> Option<&SelfRoutingTable> {
        self.routing.as_ref()
    }

    /// The router steering this fabric's packets.
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// Cells per stage.
    pub fn cells(&self) -> usize {
        self.net.cells_per_stage()
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.net.stages()
    }

    /// Routing tag for a packet entering at `(source, terminal)` bound for
    /// `destination`, or `None` when the router cannot reach it (counted as
    /// an unroutable drop by the engine).
    pub fn route(&self, source: u32, terminal: usize, destination: u32) -> Option<u32> {
        self.router
            .tag(u64::from(source), terminal, u64::from(destination))
    }

    /// Routing tag for a destination cell. Panics for a non-delta fabric —
    /// the source-aware entry point is [`Fabric::route`].
    pub fn tag_for(&self, destination: u32) -> u32 {
        self.routing().tag_of_destination[destination as usize]
    }

    /// Next-stage cell reached from `cell` through out-port `port` of
    /// connection `stage`.
    #[inline]
    pub fn next_cell(&self, stage: usize, cell: u32, port: u8) -> u32 {
        let conn = self.net.connection(stage);
        if port == 0 {
            conn.f(u64::from(cell)) as u32
        } else {
            conn.g(u64::from(cell)) as u32
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("stages", &self.stages())
            .field("cells", &self.cells())
            .field("router", &self.router.label())
            .finish()
    }
}

/// `true` when `dest` is a permutation of the cell labels `0..cells`.
fn is_cell_permutation(dest: &[u32], cells: usize) -> bool {
    if dest.len() != cells {
        return false;
    }
    let mut seen = vec![false; cells];
    for &d in dest {
        let Some(slot) = seen.get_mut(d as usize) else {
            return false;
        };
        if std::mem::replace(slot, true) {
            return false;
        }
    }
    true
}

/// Why a fabric could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// Some stage is not 2-regular.
    NotTwoRegular,
    /// The network is not destination-tag routable.
    NotDelta,
    /// The looping algorithm could not configure the requested permutation
    /// (the network is not Benes-structured, or the pattern is malformed).
    NotRearrangeable(LoopingError),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::NotTwoRegular => write!(f, "the network is not 2-in/2-out regular"),
            FabricError::NotDelta => {
                write!(f, "the network is not destination-tag routable (not delta)")
            }
            FabricError::NotRearrangeable(e) => {
                write!(f, "the looping algorithm cannot configure the fabric: {e}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::rearrangeable::benes;
    use min_networks::{baseline, omega};

    #[test]
    fn classical_networks_build_fabrics() {
        for n in 2..=6 {
            let fabric = Fabric::new(omega(n)).expect("omega is delta");
            assert_eq!(fabric.stages(), n);
            assert_eq!(fabric.cells(), 1 << (n - 1));
            assert_eq!(fabric.router().label(), "delta");
            let fabric = Fabric::new(baseline(n)).expect("baseline is delta");
            assert_eq!(fabric.cells(), 1 << (n - 1));
        }
    }

    #[test]
    fn tags_route_to_their_destination() {
        let fabric = Fabric::new(omega(4)).unwrap();
        for dst in 0..8u32 {
            let tag = fabric.tag_for(dst);
            for src in 0..8u32 {
                let mut cell = src;
                for s in 0..3 {
                    cell = fabric.next_cell(s, cell, ((tag >> s) & 1) as u8);
                }
                assert_eq!(cell, dst);
                // The router interface agrees with the table.
                for terminal in 0..2 {
                    assert_eq!(fabric.route(src, terminal, dst), Some(tag));
                }
            }
        }
    }

    #[test]
    fn non_delta_networks_are_rejected() {
        let table: [u64; 4] = [0, 1, 3, 2];
        let weird = min_core::Connection::from_fn(
            2,
            move |x| table[x as usize],
            move |x| table[x as usize] ^ 2,
        );
        let second = min_core::Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 2);
        let net = min_core::ConnectionNetwork::new(2, vec![weird, second]);
        assert_eq!(Fabric::new(net).unwrap_err(), FabricError::NotDelta);
    }

    #[test]
    fn irregular_networks_are_rejected() {
        let skew = min_core::Connection::from_fn(2, |_| 0, |x| x);
        let second = min_core::Connection::from_fn(2, |x| x, |x| x ^ 1);
        let net = min_core::ConnectionNetwork::new(2, vec![skew, second]);
        assert_eq!(Fabric::new(net).unwrap_err(), FabricError::NotTwoRegular);
        assert_eq!(
            Fabric::for_traffic(net_irregular(), &TrafficPattern::Uniform).unwrap_err(),
            FabricError::NotTwoRegular
        );
    }

    fn net_irregular() -> min_core::ConnectionNetwork {
        let skew = min_core::Connection::from_fn(2, |_| 0, |x| x);
        let second = min_core::Connection::from_fn(2, |x| x, |x| x ^ 1);
        min_core::ConnectionNetwork::new(2, vec![skew, second])
    }

    #[test]
    fn for_traffic_matches_new_on_delta_networks() {
        let a = Fabric::new(omega(4)).unwrap();
        let b = Fabric::for_traffic(omega(4), &TrafficPattern::Uniform).unwrap();
        assert_eq!(
            a.routing().tag_of_destination,
            b.routing().tag_of_destination
        );
        assert_eq!(b.router().label(), "delta");
    }

    #[test]
    fn permutation_traffic_on_benes_uses_the_looping_router() {
        let net = benes(3);
        let cells = net.cells_per_stage() as u32;
        let perm: Vec<u32> = (0..cells).map(|c| (c + 1) % cells).collect();
        let fabric = Fabric::for_traffic(net, &TrafficPattern::Permutation(perm.clone())).unwrap();
        assert_eq!(fabric.router().label(), "looping");
        assert!(fabric.delta_routing().is_none());
        for src in 0..cells {
            for terminal in 0..2 {
                assert!(fabric.route(src, terminal, perm[src as usize]).is_some());
            }
        }
    }

    #[test]
    fn non_permutation_traffic_on_benes_falls_back_to_multi_path() {
        for traffic in [
            TrafficPattern::Uniform,
            TrafficPattern::BitReversal,
            // A many-to-one pattern is not a permutation.
            TrafficPattern::Permutation(vec![0, 0, 1, 2]),
        ] {
            let fabric = Fabric::for_traffic(benes(3), &traffic).unwrap();
            assert_eq!(fabric.router().label(), "multi-path", "{traffic:?}");
        }
    }

    #[test]
    fn looping_failures_surface_as_not_rearrangeable() {
        // A 4-stage slice of Benes(3) is not delta-tag routable (8 tags for
        // 4 cells) and has an even stage count, so the looping recursion
        // cannot pair its connections — the typed error says which.
        let full = benes(3);
        let net = min_core::ConnectionNetwork::new(full.width(), full.connections()[..3].to_vec());
        assert!(min_routing::tag::destination_tags(&net).is_none());
        let cells = net.cells_per_stage() as u32;
        let perm: Vec<u32> = (0..cells).map(|c| c ^ 1).collect();
        match Fabric::for_traffic(net, &TrafficPattern::Permutation(perm)) {
            Err(FabricError::NotRearrangeable(_)) => {}
            other => panic!("expected NotRearrangeable, got {other:?}"),
        }
    }
}
