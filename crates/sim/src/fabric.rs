//! The switching fabric: a connection network plus its self-routing table.

use min_core::ConnectionNetwork;
use min_routing::tag::{destination_tags, SelfRoutingTable};

/// A simulatable fabric: the network topology together with the
/// destination-tag routing table the cells use to steer packets.
///
/// Construction fails when the network is not destination-tag routable
/// (not a delta network); every PIPID-built network — in particular all six
/// classical networks — qualifies.
#[derive(Debug, Clone)]
pub struct Fabric {
    net: ConnectionNetwork,
    routing: SelfRoutingTable,
}

impl Fabric {
    /// Builds a fabric, verifying destination-tag routability.
    pub fn new(net: ConnectionNetwork) -> Result<Self, FabricError> {
        if !net.is_proper() {
            return Err(FabricError::NotTwoRegular);
        }
        let routing = destination_tags(&net).ok_or(FabricError::NotDelta)?;
        Ok(Fabric { net, routing })
    }

    /// The underlying network.
    pub fn network(&self) -> &ConnectionNetwork {
        &self.net
    }

    /// The self-routing table.
    pub fn routing(&self) -> &SelfRoutingTable {
        &self.routing
    }

    /// Cells per stage.
    pub fn cells(&self) -> usize {
        self.net.cells_per_stage()
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.net.stages()
    }

    /// Routing tag for a destination cell.
    pub fn tag_for(&self, destination: u32) -> u32 {
        self.routing.tag_of_destination[destination as usize]
    }

    /// Next-stage cell reached from `cell` through out-port `port` of
    /// connection `stage`.
    #[inline]
    pub fn next_cell(&self, stage: usize, cell: u32, port: u8) -> u32 {
        let conn = self.net.connection(stage);
        if port == 0 {
            conn.f(u64::from(cell)) as u32
        } else {
            conn.g(u64::from(cell)) as u32
        }
    }
}

/// Why a fabric could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// Some stage is not 2-regular.
    NotTwoRegular,
    /// The network is not destination-tag routable.
    NotDelta,
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::NotTwoRegular => write!(f, "the network is not 2-in/2-out regular"),
            FabricError::NotDelta => {
                write!(f, "the network is not destination-tag routable (not delta)")
            }
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;
    use min_networks::{baseline, omega};

    #[test]
    fn classical_networks_build_fabrics() {
        for n in 2..=6 {
            let fabric = Fabric::new(omega(n)).expect("omega is delta");
            assert_eq!(fabric.stages(), n);
            assert_eq!(fabric.cells(), 1 << (n - 1));
            let fabric = Fabric::new(baseline(n)).expect("baseline is delta");
            assert_eq!(fabric.cells(), 1 << (n - 1));
        }
    }

    #[test]
    fn tags_route_to_their_destination() {
        let fabric = Fabric::new(omega(4)).unwrap();
        for dst in 0..8u32 {
            let tag = fabric.tag_for(dst);
            for src in 0..8u32 {
                let mut cell = src;
                for s in 0..3 {
                    cell = fabric.next_cell(s, cell, ((tag >> s) & 1) as u8);
                }
                assert_eq!(cell, dst);
            }
        }
    }

    #[test]
    fn non_delta_networks_are_rejected() {
        let table: [u64; 4] = [0, 1, 3, 2];
        let weird = min_core::Connection::from_fn(
            2,
            move |x| table[x as usize],
            move |x| table[x as usize] ^ 2,
        );
        let second = min_core::Connection::from_fn(2, |x| x >> 1, |x| (x >> 1) | 2);
        let net = min_core::ConnectionNetwork::new(2, vec![weird, second]);
        assert_eq!(Fabric::new(net).unwrap_err(), FabricError::NotDelta);
    }

    #[test]
    fn irregular_networks_are_rejected() {
        let skew = min_core::Connection::from_fn(2, |_| 0, |x| x);
        let second = min_core::Connection::from_fn(2, |x| x, |x| x ^ 1);
        let net = min_core::ConnectionNetwork::new(2, vec![skew, second]);
        assert_eq!(Fabric::new(net).unwrap_err(), FabricError::NotTwoRegular);
    }
}
