//! Scalar-vs-packed reference-oracle property tests for the bit-parallel
//! replication engine.
//!
//! The batching refactor routes eligible unbuffered workloads through the
//! word-packed [`min_sim::lane::LaneEngine`] (64 replications per `u64`)
//! and everything else through a reseeded scalar [`min_sim::Simulator`];
//! the scalar engine built fresh per seed is the historical behaviour.
//! These proptests pin both routes — per-replication metrics and the merged
//! aggregates — bit-identical to fresh scalar simulators across the
//! classical catalog families at 3–5 stages, random loads, traffic
//! patterns, and fault-free / dormant / active fault plans, so any semantic
//! drift in the packed planes is caught against the reference.

use min_networks::ClassicalNetwork;
use min_sim::batch::{packed_eligible, run_replications, run_replications_merged, LANE_THRESHOLD};
use min_sim::campaign::scenario_seed;
use min_sim::{BufferMode, FaultPlan, Metrics, SimConfig, Simulator, TrafficPattern};
use proptest::prelude::*;

const CYCLES: u64 = 120;
const WARMUP: u64 = 12;

fn fresh_scalar(family: ClassicalNetwork, stages: usize, config: &SimConfig, seed: u64) -> Metrics {
    Simulator::new(family.build(stages), config.clone().with_seed(seed))
        .expect("catalog networks are delta")
        .run()
}

/// A traffic pattern drawn from uniform, bit-reversal and random hot-spot
/// generators.
fn traffic_strategy() -> impl Strategy<Value = TrafficPattern> {
    (0usize..3, 0.1f64..0.9, 0u32..4).prop_map(|(kind, fraction, target)| match kind {
        0 => TrafficPattern::Uniform,
        1 => TrafficPattern::BitReversal,
        _ => TrafficPattern::Hotspot { fraction, target },
    })
}

/// Fault-free, dormant (onset beyond the cycle budget) or active plans —
/// all of them valid on every 3-stage-or-deeper catalog cell.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (0usize..4).prop_map(|kind| match kind {
        0 => FaultPlan::none(),
        1 => FaultPlan::none().with_dead_switch(1, 0, CYCLES + 50),
        2 => FaultPlan::none().with_dead_link(1, 0, 1, 0),
        _ => FaultPlan::none()
            .with_dead_link(0, 1, 0, CYCLES / 3)
            .with_degraded_link(1, 1, 1, 0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The packed LaneEngine route returns, replication by replication,
    /// exactly the metrics a fresh scalar simulator produces per seed.
    #[test]
    fn packed_replications_match_fresh_scalar_simulators(
        family_index in 0usize..ClassicalNetwork::ALL.len(),
        stages in 3usize..=5,
        load in 0.05f64..=1.0,
        traffic in traffic_strategy(),
        plan in plan_strategy(),
        reps in LANE_THRESHOLD..=LANE_THRESHOLD + 8,
        campaign_seed in any::<u64>(),
    ) {
        let family = ClassicalNetwork::ALL[family_index];
        let config = SimConfig::default()
            .with_load(load)
            .with_traffic(traffic)
            .with_faults(plan)
            .with_cycles(CYCLES, WARMUP);
        prop_assert!(packed_eligible(&config, stages, reps));
        let seeds: Vec<u64> = (0..reps).map(|i| scenario_seed(campaign_seed, i)).collect();
        let batched = run_replications(&family.build(stages), &config, &seeds).unwrap();
        prop_assert_eq!(batched.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            prop_assert_eq!(&batched[i], &fresh_scalar(family, stages, &config, seed));
        }
    }

    /// The merged aggregate equals the fold of fresh scalar runs — same
    /// counters, same histogram, same extremes — through both the packed
    /// and the reseeded-scalar route.
    #[test]
    fn merged_aggregates_match_scalar_folds(
        family_index in 0usize..ClassicalNetwork::ALL.len(),
        stages in 3usize..=4,
        load in 0.1f64..=1.0,
        plan in plan_strategy(),
        campaign_seed in any::<u64>(),
        packed in any::<bool>(),
    ) {
        let family = ClassicalNetwork::ALL[family_index];
        // A FIFO config exercises the reseeded-scalar route; unbuffered the
        // packed one. Both must agree with the fold of fresh simulators.
        let mode = if packed { BufferMode::Unbuffered } else { BufferMode::Fifo(3) };
        let config = SimConfig::default()
            .with_load(load)
            .with_buffer(mode)
            .with_faults(plan)
            .with_cycles(CYCLES, WARMUP);
        let seeds: Vec<u64> =
            (0..LANE_THRESHOLD + 2).map(|i| scenario_seed(campaign_seed, i)).collect();
        let merged = run_replications_merged(&family.build(stages), &config, &seeds).unwrap();
        let mut reference = Metrics::default();
        for &seed in &seeds {
            reference.merge(&fresh_scalar(family, stages, &config, seed));
        }
        prop_assert_eq!(merged, reference);
    }

    /// Conservation holds on the packed path alone: every replication's
    /// injected packets are delivered, dropped or still in flight, and the
    /// latency histogram accounts for every measured delivery.
    #[test]
    fn packed_path_conserves_packets(
        stages in 3usize..=5,
        load in 0.05f64..=1.0,
        plan in plan_strategy(),
        campaign_seed in any::<u64>(),
    ) {
        let config = SimConfig::default()
            .with_load(load)
            .with_faults(plan)
            .with_cycles(CYCLES, WARMUP);
        let seeds: Vec<u64> =
            (0..LANE_THRESHOLD * 2).map(|i| scenario_seed(campaign_seed, i)).collect();
        let net = min_networks::omega(stages);
        for metrics in run_replications(&net, &config, &seeds).unwrap() {
            prop_assert!(metrics.conserved());
            prop_assert!(metrics.offered >= metrics.injected);
            prop_assert_eq!(metrics.dropped_backpressure, 0);
            // Unbuffered packets never wait, so every measured delivery
            // took exactly `stages` cycles.
            let measured: u64 = metrics.latency_histogram.iter().sum();
            prop_assert!(measured <= metrics.delivered);
            prop_assert_eq!(metrics.total_latency, measured * stages as u64);
            prop_assert!(metrics.max_latency == 0 || metrics.max_latency == stages as u64);
        }
    }
}
