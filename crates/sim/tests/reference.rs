//! Bit-for-bit equivalence of the arena-backed packet cores against a
//! straightforward `VecDeque` reference implementation.
//!
//! The engine refactor replaced the original `Vec<Vec<VecDeque<Packet>>>`
//! store with flat ring-buffer arenas behind the [`min_sim::SwitchCore`]
//! trait. The unbuffered and FIFO semantics were promised *unchanged*: same
//! RNG draw sequence, same arbitration, same retention order, same counters.
//! This test keeps the promise honest by re-implementing the original
//! store-and-forward step verbatim on `VecDeque`s and comparing every
//! counter and the full latency histogram across seeds, loads and both
//! packet-atomic buffer modes.

use min_sim::{simulate, BufferMode, Metrics, SimConfig, TrafficPattern};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// The pre-refactor engine, verbatim: nested `VecDeque` queues, one per
/// `(stage, cell)`, with the original three-phase cycle.
struct ReferenceSimulator {
    fabric: min_sim::fabric::Fabric,
    config: SimConfig,
    rng: ChaCha8Rng,
    queues: Vec<Vec<VecDeque<min_sim::Packet>>>,
    cycle: u64,
    next_packet_id: u64,
    metrics: Metrics,
}

impl ReferenceSimulator {
    fn new(net: min_core::ConnectionNetwork, config: SimConfig) -> Self {
        let fabric = min_sim::fabric::Fabric::new(net).expect("delta network");
        let stages = fabric.stages();
        let cells = fabric.cells();
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        ReferenceSimulator {
            fabric,
            config,
            rng,
            queues: vec![vec![VecDeque::new(); cells]; stages],
            cycle: 0,
            next_packet_id: 0,
            metrics: Metrics::default(),
        }
    }

    fn capacity(&self) -> usize {
        match self.config.buffer_mode {
            BufferMode::Unbuffered => 2,
            BufferMode::Fifo(depth) => 2 * depth.max(1),
            BufferMode::Wormhole { .. } => unreachable!("reference model is packet-atomic"),
        }
    }

    fn in_flight(&self) -> u64 {
        self.queues
            .iter()
            .map(|stage| stage.iter().map(|q| q.len() as u64).sum::<u64>())
            .sum()
    }

    fn step(&mut self) {
        let stages = self.fabric.stages();
        let cells = self.fabric.cells();
        let capacity = self.capacity();
        let unbuffered = matches!(self.config.buffer_mode, BufferMode::Unbuffered);

        for cell in 0..cells {
            while let Some(p) = self.queues[stages - 1][cell].pop_front() {
                self.metrics.delivered += 1;
                if p.destination as usize != cell {
                    self.metrics.misrouted += 1;
                }
                if p.injected_at >= self.config.warmup {
                    self.metrics.record_latency(self.cycle - p.injected_at);
                }
            }
        }

        for s in (0..stages - 1).rev() {
            for cell in 0..cells {
                let mut port_used = [false; 2];
                let mut retained: VecDeque<min_sim::Packet> = VecDeque::new();
                let mut candidates: Vec<min_sim::Packet> = Vec::with_capacity(2);
                while candidates.len() < 2 {
                    match self.queues[s][cell].pop_front() {
                        Some(p) => candidates.push(p),
                        None => break,
                    }
                }
                if candidates.len() == 2 {
                    let p0 = candidates[0].port_at(s);
                    let p1 = candidates[1].port_at(s);
                    if p0 == p1 && self.rng.gen_bool(0.5) {
                        candidates.swap(0, 1);
                    }
                }
                for packet in candidates {
                    let port = packet.port_at(s) as usize;
                    if port_used[port] {
                        if unbuffered {
                            self.metrics.dropped_arbitration += 1;
                        } else {
                            retained.push_back(packet);
                        }
                        continue;
                    }
                    let next = self.fabric.next_cell(s, cell as u32, port as u8) as usize;
                    if self.queues[s + 1][next].len() < capacity {
                        port_used[port] = true;
                        self.queues[s + 1][next].push_back(packet);
                    } else if unbuffered {
                        self.metrics.dropped_backpressure += 1;
                    } else {
                        retained.push_back(packet);
                    }
                }
                while let Some(p) = retained.pop_back() {
                    self.queues[s][cell].push_front(p);
                }
                if unbuffered && s > 0 {
                    while self.queues[s][cell].pop_front().is_some() {
                        self.metrics.dropped_backpressure += 1;
                    }
                }
            }
        }

        let width_bits = self.fabric.network().width();
        for cell in 0..cells {
            for _terminal in 0..2 {
                if !self.rng.gen_bool(self.config.offered_load) {
                    continue;
                }
                self.metrics.offered += 1;
                if self.queues[0][cell].len() >= capacity {
                    continue;
                }
                let destination = self.config.traffic.destination(
                    cell as u32,
                    cells as u32,
                    width_bits,
                    &mut self.rng,
                );
                let packet = min_sim::Packet {
                    id: self.next_packet_id,
                    source: cell as u32,
                    destination,
                    tag: self.fabric.tag_for(destination),
                    injected_at: self.cycle,
                };
                self.next_packet_id += 1;
                self.metrics.injected += 1;
                self.queues[0][cell].push_back(packet);
            }
        }

        self.cycle += 1;
        self.metrics.measured_cycles = self.cycle;
        self.metrics.in_flight_at_end = self.in_flight();
    }

    fn run(mut self) -> Metrics {
        for _ in 0..self.config.cycles {
            self.step();
        }
        self.metrics
    }
}

/// Compares the arena engine against the reference on every field the
/// reference tracks (the arena engine additionally accumulates occupancy
/// statistics the old engine never had).
fn assert_matches_reference(cfg: SimConfig, label: &str) {
    for kind in min_networks::ClassicalNetwork::ALL {
        let net = kind.build(4);
        let reference = ReferenceSimulator::new(net.clone(), cfg.clone()).run();
        let arena = simulate(net, cfg.clone()).expect("catalog networks simulate");
        assert_eq!(arena.measured_cycles, reference.measured_cycles, "{label}");
        assert_eq!(arena.offered, reference.offered, "{label} {kind:?}");
        assert_eq!(arena.injected, reference.injected, "{label} {kind:?}");
        assert_eq!(arena.delivered, reference.delivered, "{label} {kind:?}");
        assert_eq!(
            arena.dropped_arbitration, reference.dropped_arbitration,
            "{label} {kind:?}"
        );
        assert_eq!(
            arena.dropped_backpressure, reference.dropped_backpressure,
            "{label} {kind:?}"
        );
        assert_eq!(
            arena.in_flight_at_end, reference.in_flight_at_end,
            "{label} {kind:?}"
        );
        assert_eq!(arena.misrouted, reference.misrouted, "{label} {kind:?}");
        assert_eq!(
            arena.total_latency, reference.total_latency,
            "{label} {kind:?}"
        );
        assert_eq!(arena.max_latency, reference.max_latency, "{label} {kind:?}");
        assert_eq!(
            arena.latency_histogram, reference.latency_histogram,
            "{label} {kind:?}"
        );
    }
}

#[test]
fn unbuffered_core_is_bit_identical_to_the_reference_engine() {
    for (seed, load) in [(1u64, 0.2), (42, 0.8), (0xDEAD, 1.0)] {
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_load(load)
            .with_cycles(300, 30);
        assert_matches_reference(cfg, "unbuffered");
    }
}

#[test]
fn fifo_core_is_bit_identical_to_the_reference_engine() {
    for (seed, load, depth) in [(7u64, 0.5, 1), (99, 0.9, 4), (0xBEEF, 1.0, 8)] {
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_load(load)
            .with_buffer(BufferMode::Fifo(depth))
            .with_cycles(300, 30);
        assert_matches_reference(cfg, "fifo");
    }
}

#[test]
fn equivalence_holds_under_skewed_traffic_too() {
    for mode in [BufferMode::Unbuffered, BufferMode::Fifo(2)] {
        for traffic in [
            TrafficPattern::Hotspot {
                fraction: 0.4,
                target: 2,
            },
            TrafficPattern::BitReversal,
        ] {
            let cfg = SimConfig::default()
                .with_seed(0x1988)
                .with_load(0.9)
                .with_buffer(mode)
                .with_traffic(traffic)
                .with_cycles(250, 25);
            assert_matches_reference(cfg, "skewed");
        }
    }
}
