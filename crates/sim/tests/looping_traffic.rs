//! Property tests for `Permutation` traffic through looping-configured
//! Benes fabrics: at offered load 1.0 in unbuffered mode — the regime where
//! a delta network drops heavily to output-port arbitration — the
//! conflict-free circuits of the looping setting deliver **every** injected
//! packet with **zero** arbitration drops. This is the simulation-level
//! face of rearrangeability: the setting gives each circuit exclusive use
//! of its links, so full-load permutation traffic never collides.

use min_networks::rearrangeable::benes;
use min_sim::{BufferMode, SimConfig, Simulator, TrafficPattern};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A uniformly random permutation of the `cells` cell labels.
fn random_cell_permutation(cells: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..cells as u32).collect();
    perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-load permutation traffic through Benes(n): every packet is
    /// injected (nothing refused at the sources) and every injected packet
    /// is delivered or still in the pipeline — no drops of any kind.
    #[test]
    fn benes_delivers_every_packet_at_full_load(n in 2usize..=5, seed in any::<u64>(), sim_seed in any::<u64>()) {
        let net = benes(n);
        let perm = random_cell_permutation(net.cells_per_stage(), seed);
        let config = SimConfig::default()
            .with_traffic(TrafficPattern::Permutation(perm.clone()))
            .with_load(1.0)
            .with_buffer(BufferMode::Unbuffered)
            .with_cycles(120, 20)
            .with_seed(sim_seed);
        let mut sim = Simulator::new(net, config).expect("Benes + permutation is simulatable");
        let metrics = sim.run();
        prop_assert!(metrics.offered > 0);
        // Load 1.0 and conflict-free circuits: every offered packet enters.
        prop_assert_eq!(metrics.injected, metrics.offered);
        prop_assert_eq!(metrics.dropped_arbitration, 0);
        prop_assert_eq!(metrics.dropped_backpressure, 0);
        prop_assert_eq!(metrics.unroutable_drops, 0);
        prop_assert!(metrics.delivered > 0);
        // Conservation: nothing vanished — in flight is just the pipeline.
        prop_assert_eq!(
            metrics.injected,
            metrics.delivered + metrics.in_flight_at_end
        );
    }

    /// The same full-load permutation through the delta-routed Omega drops
    /// to arbitration for any permutation that is not congestion-free — the
    /// contrast that makes the Benes guarantee non-vacuous. (A lucky
    /// congestion-free sample simply skips the assertion.)
    #[test]
    fn omega_under_the_same_load_can_drop(seed in any::<u64>(), sim_seed in any::<u64>()) {
        let net = min_networks::omega(4);
        let perm = random_cell_permutation(net.cells_per_stage(), seed);
        // Lift the cell permutation to terminals to count link conflicts.
        let terminal_perm: Vec<u64> = (0..2 * net.cells_per_stage() as u64)
            .map(|t| 2 * u64::from(perm[(t >> 1) as usize]) + (t & 1))
            .collect();
        let admissible = min_routing::permutation_conflicts(&net, &terminal_perm).admissible;
        let config = SimConfig::default()
            .with_traffic(TrafficPattern::Permutation(perm))
            .with_load(1.0)
            .with_buffer(BufferMode::Unbuffered)
            .with_cycles(120, 20)
            .with_seed(sim_seed);
        let metrics = Simulator::new(net, config).expect("Omega is delta").run();
        if !admissible {
            prop_assert!(metrics.dropped_arbitration > 0);
        }
    }
}
