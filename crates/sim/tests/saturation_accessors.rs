//! Property tests for the saturation-curve accessors.
//!
//! The stability campaigns locate saturation points by comparing
//! `offered_rate` against `normalized_throughput`, so those accessors (and
//! their flit/acceptance/occupancy siblings) must be trustworthy across
//! every switching core and traffic pattern: finite, non-negative, and
//! correctly ordered — throughput never exceeds the offered rate, the
//! acceptance rate is a probability, the occupancy is a fraction. These
//! proptests drive random runs of all three cores (unbuffered, FIFO,
//! wormhole) under the full traffic suite and pin the invariants.

use min_networks::ClassicalNetwork;
use min_sim::{simulate, BufferMode, SimConfig, TraceData, TraceRecord, TrafficPattern};
use proptest::prelude::*;

const CYCLES: u64 = 150;
const WARMUP: u64 = 15;

/// Builds one of the six patterns for a fabric of `cells` cells per stage
/// (the pattern axes are cell-count-dependent, so construction happens
/// inside the test body once the network geometry is drawn).
fn make_traffic(kind: usize, p: f64, exponent: f64, cells: u32) -> TrafficPattern {
    match kind {
        0 => TrafficPattern::Uniform,
        1 => TrafficPattern::BitReversal,
        2 => TrafficPattern::Hotspot {
            fraction: p,
            target: cells - 1,
        },
        3 => TrafficPattern::Zipf { exponent },
        4 => TrafficPattern::OnOff {
            on_dwell: 2.0 + exponent * 10.0,
            off_dwell: 2.0 + p * 10.0,
            on_rate: p,
        },
        _ => TrafficPattern::Trace(TraceData {
            cells,
            period: 3,
            records: vec![
                TraceRecord {
                    cycle: 0,
                    source: 0,
                    dest: cells - 1,
                },
                TraceRecord {
                    cycle: 1,
                    source: 2 * cells - 1,
                    dest: 0,
                },
            ],
        }),
    }
}

fn mode_strategy() -> impl Strategy<Value = BufferMode> {
    (0usize..3, 1usize..4, 1usize..4).prop_map(|(kind, a, b)| match kind {
        0 => BufferMode::Unbuffered,
        1 => BufferMode::Fifo(a + 1),
        _ => BufferMode::Wormhole {
            lanes: a,
            lane_depth: b + 1,
            flits_per_packet: a + b,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every rate accessor is finite, non-negative and correctly ordered:
    /// delivered throughput cannot exceed the offered rate, acceptance and
    /// occupancy are fractions in `[0, 1]`, and the flit throughput is at
    /// least the packet throughput (a packet is one or more flits).
    #[test]
    fn rate_accessors_are_finite_and_ordered(
        family_index in 0usize..ClassicalNetwork::ALL.len(),
        stages in 3usize..=5,
        load in 0.0f64..=1.0,
        mode in mode_strategy(),
        seed in any::<u64>(),
        kind in 0usize..6,
        p in 0.1f64..0.9,
        exponent in 0.2f64..1.6,
    ) {
        let family = ClassicalNetwork::ALL[family_index];
        let net = family.build(stages);
        let cells = net.cells_per_stage() as u32;
        let ports = 2 * cells as usize;
        let m_mode = mode;
        let config = SimConfig::default()
            .with_load(load)
            .with_buffer(mode)
            .with_traffic(make_traffic(kind, p, exponent, cells))
            .with_seed(seed)
            .with_cycles(CYCLES, WARMUP);
        let m = simulate(net, config).unwrap();

        let offered = m.offered_rate(ports);
        let throughput = m.normalized_throughput(ports);
        let flits = m.flit_throughput(ports);
        let acceptance = m.acceptance_rate();
        let occupancy = m.mean_lane_occupancy();
        for (name, value) in [
            ("offered_rate", offered),
            ("normalized_throughput", throughput),
            ("flit_throughput", flits),
            ("acceptance_rate", acceptance),
            ("mean_lane_occupancy", occupancy),
        ] {
            prop_assert!(value.is_finite(), "{} = {}", name, value);
            prop_assert!(value >= 0.0, "{} = {}", name, value);
        }
        prop_assert!(throughput <= offered + 1e-12,
            "throughput {} exceeds offered {}", throughput, offered);
        prop_assert!(acceptance <= 1.0, "acceptance {}", acceptance);
        prop_assert!(occupancy <= 1.0, "occupancy {}", occupancy);
        // Flit accounting is a wormhole concept: there every delivered
        // packet ejected all its flits, so the flit rate dominates the
        // packet rate; the packet-atomic cores count no flits at all.
        if matches!(m_mode, BufferMode::Wormhole { .. }) {
            prop_assert!(flits + 1e-12 >= throughput,
                "flit throughput {} below packet throughput {}", flits, throughput);
        } else {
            prop_assert_eq!(m.flits_delivered, 0);
        }
        prop_assert!(m.offered >= m.injected);
    }
}
