//! Vendored, offline subset of the `proptest` API used by this workspace.
//!
//! Provides [`Strategy`] (with `prop_map`), [`any`], range strategies,
//! [`collection::vec`], tuple strategies, the [`proptest!`] macro, the
//! `prop_assert*` macros and [`ProptestConfig::with_cases`]. Cases are
//! generated from a ChaCha8 generator seeded deterministically from the test
//! name, so failures are reproducible run to run. Shrinking is not
//! implemented: a failing case panics with the standard assertion message
//! (the deterministic seed makes re-running it trivial).

use rand::{Rng, SeedableRng};

/// The RNG driving every strategy in this subset.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical full-range strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's canonical distribution.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for fixed-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Builds the deterministic per-test RNG (FNV-1a over the test name).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Declares property-based tests (subset of proptest's macro grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

pub mod prelude {
    //! Single-import convenience module, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds and tuples decompose.
        #[test]
        fn ranges_and_tuples(x in 3usize..10, (a, b) in (any::<u64>(), any::<bool>())) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, !b);
        }

        /// Vec strategies honor their length.
        #[test]
        fn vec_lengths(xs in collection::vec(any::<u8>(), 5)) {
            prop_assert_eq!(xs.len(), 5);
        }
    }

    #[test]
    fn prop_map_composes() {
        let s = (0u32..10).prop_map(|v| v * 2);
        let mut rng = crate::rng_for_test("prop_map_composes");
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn deterministic_given_test_name() {
        let mut a = crate::rng_for_test("t");
        let mut b = crate::rng_for_test("t");
        let s = any::<u64>();
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
