//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored serde subset.
//!
//! The offline build environment provides neither `syn` nor `quote`, so the
//! input item is parsed directly from the `proc_macro` token stream. The
//! supported grammar covers what the workspace actually derives on: structs
//! with named fields, tuple structs, and enums whose variants are unit,
//! tuple, or struct-like — plus the `#[serde(skip)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: its name (or tuple position) and whether it is skipped.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading attributes (`#[...]`), reporting whether any of them is
/// `#[serde(skip)]` (or `skip_serializing` / `skip_deserializing`, which this
/// subset treats identically).
fn eat_attrs<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            let text = g.stream().to_string();
            if text.starts_with("serde") && text.contains("skip") {
                skip = true;
            }
        } else {
            panic!("serde_derive: malformed attribute");
        }
    }
    skip
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn eat_vis<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Skips a `<...>` generics list (balanced on angle depth). The workspace
/// derives only on non-generic types; generics in the *input* position are
/// tolerated but rejected, since the generated impl would not compile.
fn reject_generics<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>, name: &str) {
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
}

/// Splits the tokens of a field list group on top-level commas.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|piece| {
            let mut it = piece.into_iter().peekable();
            let skip = eat_attrs(&mut it);
            eat_vis(&mut it);
            match it.next() {
                Some(TokenTree::Ident(name)) => Field {
                    name: name.to_string(),
                    skip,
                },
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .enumerate()
        .map(|(i, piece)| {
            let mut it = piece.into_iter().peekable();
            let skip = eat_attrs(&mut it);
            Field {
                name: i.to_string(),
                skip,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    while it.peek().is_some() {
        eat_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Consume an optional discriminant (`= expr`) and the trailing comma.
        for tt in it.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    eat_attrs(&mut it);
    eat_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    reject_generics(&mut it, &name);
    match kind.as_str() {
        "struct" => {
            let shape = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unsupported struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn ser_fields_named(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("let mut entries = ::std::vec::Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "entries.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("::serde::Value::Map(entries)");
    out
}

/// Constructor arguments for a tuple shape: skipped fields take their
/// `Default`, live fields read consecutive sequence slots.
fn de_fields_tuple(fields: &[Field]) -> (usize, String) {
    let mut slot = 0usize;
    let args: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                "::std::default::Default::default()".to_string()
            } else {
                let a = format!("::serde::Deserialize::from_value(&elems[{slot}])?");
                slot += 1;
                a
            }
        })
        .collect();
    (slot, args.join(", "))
}

fn de_fields_named(ty: &str, fields: &[Field]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default(),\n", f.name)
            } else {
                format!(
                    "{n}: ::serde::Deserialize::from_value(::serde::map_get(entries, \"{n}\")?)?,\n",
                    n = f.name
                )
            }
        })
        .collect();
    format!("{ty} {{ {inits} }}")
}

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, shape } => {
            let expr = match &shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Named(fields) => ser_fields_named(fields, "&self."),
                Shape::Tuple(fields) => {
                    let elems: Vec<String> = fields
                        .iter()
                        .filter(|f| !f.skip)
                        .map(|f| format!("::serde::Serialize::to_value(&self.{})", f.name))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {expr} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                        ),
                        Shape::Tuple(fields) => {
                            let binders: Vec<String> = fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| {
                                    if f.skip {
                                        "_".to_string()
                                    } else {
                                        format!("__f{i}")
                                    }
                                })
                                .collect();
                            let elems: Vec<String> = binders
                                .iter()
                                .filter(|b| *b != "_")
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({bs}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec![{es}]))]),\n",
                                bs = binders.join(", "),
                                es = elems.join(", "),
                            )
                        }
                        Shape::Named(fields) => {
                            let binders: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect();
                            let inner = ser_fields_named(fields, "");
                            format!(
                                "{name}::{vn} {{ {bs} }} => {{\n\
                                 let payload = {{ {inner} }};\n\
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), payload)])\n}},\n",
                                bs = binders.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}"
            )
        }
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, shape } => {
            let expr = match &shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Named(fields) => format!(
                    "let entries = v.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                     Ok({})",
                    de_fields_named(&name, fields)
                ),
                Shape::Tuple(fields) => {
                    let (len, args) = de_fields_tuple(fields);
                    format!(
                        "let elems = v.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                         if elems.len() != {len} {{ return Err(::serde::Error::custom(\
                         \"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({args}))",
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {expr} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Tuple(fields) => {
                            let (len, args) = de_fields_tuple(fields);
                            format!(
                                "\"{vn}\" => {{\n\
                                 let elems = payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence payload\"))?;\n\
                                 if elems.len() != {len} {{ return Err(::serde::Error::custom(\
                                 \"wrong payload arity for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({args}))\n}},\n",
                            )
                        }
                        Shape::Named(fields) => format!(
                            "\"{vn}\" => {{\n\
                             let entries = payload.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map payload\"))?;\n\
                             Ok({})\n}},\n",
                            de_fields_named(&format!("{name}::{vn}"), fields)
                        ),
                        Shape::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {payload_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected string or 1-entry map for {name}\")),\n\
                 }}\n}}\n}}"
            )
        }
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}
